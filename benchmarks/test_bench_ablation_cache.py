"""Ablation benchmark: how much of "file system performance" is the cache policy?

DESIGN.md calls out the page-cache eviction policy as a design choice of the
substrate.  This ablation reruns a compressed Figure-1 sweep (a point below,
at, and above the cache size) under LRU, CLOCK and ARC.  The headline numbers
in the memory-bound and far-I/O-bound regimes barely move, but throughput for
working sets *near* the cache size depends measurably on the policy --
another knob that published single-number results silently bake in.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.results import SweepResult
from repro.core.runner import BenchmarkConfig, BenchmarkRunner, EnvironmentNoise, WarmupMode
from repro.storage.cache import CachePolicy
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload

MiB = 1024 * 1024

#: 1/4-scale machine: the sweep stays cheap while crossing the cache boundary.
TESTBED = scaled_testbed(0.25)
SIZES_MB = (64, 100, 112, 160)


def sweep_with_policy(policy: CachePolicy) -> SweepResult:
    config = BenchmarkConfig(
        duration_s=4.0,
        repetitions=3,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=1.0,
        seed=97,
        noise=EnvironmentNoise(enabled=False),
    )
    testbed = TESTBED.with_cache_policy(policy)
    sweep = SweepResult(parameter_name="file_size", unit="bytes")
    for size_mb in SIZES_MB:
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        sweep.add(size_mb * MiB, runner.run(random_read_workload(size_mb * MiB)))
    return sweep


@pytest.mark.parametrize("policy", [CachePolicy.LRU, CachePolicy.CLOCK, CachePolicy.ARC])
def test_bench_ablation_cache_policy(benchmark, policy):
    sweep = run_once(benchmark, sweep_with_policy, policy)
    means = {int(size // MiB): round(mean) for size, mean in sweep.mean_throughputs()}
    benchmark.extra_info["policy"] = policy.value
    benchmark.extra_info["mean_ops_by_size_mb"] = str(means)
    benchmark.extra_info["fragility"] = round(sweep.fragility(), 2)
    # The cliff must exist under every policy; its exact shape is the ablation.
    assert means[SIZES_MB[0]] > 5 * means[SIZES_MB[-1]]
