"""Benchmark: regenerate Figure 4 (latency histograms over time, Ext2, 256 MB).

Paper reference: the disk-latency peak (around 2^23 ns) fades over the run and
is replaced by a page-cache peak (around 2^11 ns); the distribution is
bi-modal during most of the benchmark's execution.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_figure4
from repro.experiments.config import default_scale


def test_bench_figure4_histogram_timeline(benchmark, record_checks):
    result = run_once(benchmark, run_figure4, fs_type="ext2", scale=default_scale())
    migration = result.peak_migration()
    record_checks(
        result,
        bimodal_fraction=round(result.bimodal_fraction(), 2),
        first_interval_disk_fraction=round(migration[0][1], 2),
        last_interval_disk_fraction=round(migration[-1][1], 2),
    )
    checks = result.checks()
    assert checks["disk_peak_dominates_early"]
    assert checks["memory_peak_dominates_late"]
    assert checks["disk_peak_fades"]
    assert checks["bimodal_for_much_of_run"]
