"""Wall-clock cost of the packed result store (repro.store).

Two costs matter operationally: how fast a populated loose cache packs
into a ``.frpack`` artifact (the end-of-campaign step, timed under
pytest-benchmark), and what a point lookup costs against the pack versus
the loose directory it replaces (timed inline and attached as extra_info).
The qualitative contracts ride along as ``check:`` keys -- the pack
verifies clean, every key is served, and a point read inflates exactly one
block -- so the committed benchmark JSON doubles as a correctness record.
"""

import time

from benchmarks.conftest import run_once

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.parallel import ResultCache
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.storage.config import scaled_testbed
from repro.store.reader import PackReader, verify_pack
from repro.store.writer import iter_cache_entries, pack_result_cache


def populate_cache(cache_dir: str) -> None:
    """Fill a loose cache with a small real campaign (8 measured cells)."""
    Experiment(
        ParameterGrid({"fs": ("ext2", "ext4"), "workload": ("postmark", "varmail")}),
        name="bench-store",
        config=BenchmarkConfig(
            duration_s=0.5,
            repetitions=2,
            warmup_mode=WarmupMode.PREWARM,
            interval_s=0.25,
        ),
        testbed=scaled_testbed(0.0625),
        cache_dir=cache_dir,
    ).run()


def test_bench_pack_build_and_lookup(benchmark, tmp_path):
    """Pack a populated cache, then race point lookups: pack vs loose."""
    cache_dir = str(tmp_path / "cache")
    populate_cache(cache_dir)
    keys = [key for key, _ in iter_cache_entries(cache_dir)]
    pack_path = str(tmp_path / "bench.frpack")

    summary = run_once(
        benchmark, pack_result_cache, cache_dir, pack_path, block_records=2
    )

    report = verify_pack(pack_path)
    loose = ResultCache(cache_dir)
    started = time.perf_counter()
    loose_runs = [loose.get(key) for key in keys]
    loose_s = time.perf_counter() - started

    with PackReader(pack_path) as reader:
        started = time.perf_counter()
        packed_runs = [reader.get_run(key) for key in keys]
        packed_s = time.perf_counter() - started

    with PackReader(pack_path) as fresh:
        fresh.get(keys[0])
        single_block = fresh.blocks_read == 1

    benchmark.extra_info["records"] = summary.records
    benchmark.extra_info["blocks"] = summary.blocks
    benchmark.extra_info["compression_ratio"] = (
        summary.data_bytes / summary.raw_bytes if summary.raw_bytes else 1.0
    )
    benchmark.extra_info["loose_us_per_lookup"] = 1e6 * loose_s / len(keys)
    benchmark.extra_info["packed_us_per_lookup"] = 1e6 * packed_s / len(keys)
    benchmark.extra_info["check:verify_ok"] = report.ok
    benchmark.extra_info["check:all_keys_served"] = all(
        run is not None for run in packed_runs
    ) and all(run is not None for run in loose_runs)
    benchmark.extra_info["check:single_block_point_read"] = single_block

    assert summary.records == len(keys) == 8
    assert summary.skipped == 0
    assert report.ok
    assert all(run is not None for run in packed_runs)
    assert single_block
