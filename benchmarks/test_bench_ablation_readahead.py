"""Ablation benchmark: prefetching policy vs "on-disk" benchmark results.

Section 2 of the paper: "applications can rarely control how a file system
caches and prefetches data or meta-data, yet such behavior will affect
results dramatically".  This ablation measures the same cold-cache sequential
read workload with readahead disabled, at the Linux-like default, and with an
aggressive server profile, and the same cache-warm-up (Figure 2 style) run
with different per-miss cluster sizes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.runner import BenchmarkConfig, BenchmarkRunner, EnvironmentNoise, WarmupMode
from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.storage.readahead import AGGRESSIVE_READAHEAD, DEFAULT_READAHEAD, NO_READAHEAD
from repro.workloads.micro import random_read_workload, sequential_read_workload

MiB = 1024 * 1024
TESTBED = scaled_testbed(0.25)

READAHEAD_POLICIES = {
    "none": NO_READAHEAD,
    "default": DEFAULT_READAHEAD,
    "aggressive": AGGRESSIVE_READAHEAD,
}


def sequential_read_throughput(policy_name: str) -> float:
    policy = READAHEAD_POLICIES[policy_name]

    def factory(fs_type, testbed, seed, cpu_speed_factor):
        return build_stack(
            fs_type=fs_type,
            testbed=testbed,
            seed=seed,
            cpu_speed_factor=cpu_speed_factor,
            readahead_policy=policy,
        )

    config = BenchmarkConfig(
        duration_s=6.0,
        repetitions=3,
        warmup_mode=WarmupMode.NONE,
        interval_s=2.0,
        seed=31,
        noise=EnvironmentNoise(enabled=False),
    )
    runner = BenchmarkRunner("ext2", testbed=TESTBED, config=config, stack_factory=factory)
    spec = sequential_read_workload(int(TESTBED.page_cache_bytes * 2), op_overhead_ns=20_000.0)
    return runner.run(spec).throughput_summary().mean


@pytest.mark.parametrize("policy_name", list(READAHEAD_POLICIES))
def test_bench_ablation_sequential_readahead(benchmark, policy_name):
    throughput = run_once(benchmark, sequential_read_throughput, policy_name)
    benchmark.extra_info["readahead"] = policy_name
    benchmark.extra_info["sequential_read_ops_s"] = round(throughput)
    assert throughput > 0


def warmup_half_time(fs_type: str) -> float:
    """Simulated seconds until the cache hit ratio first exceeds 50%.

    The per-miss cluster size (8 KiB for the ext2 model, 16 KiB ext3,
    32 KiB xfs) is the knob; this is the mechanism behind the Figure 2
    separation.
    """
    stack = build_stack(fs_type, testbed=TESTBED, seed=77)
    from repro.workloads.spec import WorkloadEngine

    engine = WorkloadEngine(stack, random_read_workload(TESTBED.page_cache_bytes), seed=77)
    engine.setup()
    while stack.cache.stats.hit_ratio < 0.5 and stack.clock.now_s < 2000:
        engine.run(duration_s=5.0)
    return stack.clock.now_s


@pytest.mark.parametrize("fs_type", ["ext2", "ext3", "xfs"])
def test_bench_ablation_cluster_size_warmup(benchmark, fs_type):
    half_time = run_once(benchmark, warmup_half_time, fs_type)
    benchmark.extra_info["fs"] = fs_type
    benchmark.extra_info["seconds_to_50pct_hit_ratio"] = round(half_time, 1)
    assert half_time < 2000
