"""Benchmark: the aging subsystem and aged-state runs.

Tracks the wall-clock cost of the new scenario axis so the performance
trajectory covers aged-state measurement from day one:

* how long the churn ager takes to manufacture an aged state,
* how long a snapshot save -> load -> restore cycle takes (the per-repetition
  overhead every aged measurement pays), and
* the full quick aged-vs-fresh experiment, with the measured slowdown
  factors attached as extra_info.
"""

import os
import tempfile

from benchmarks.conftest import run_once
from repro.aging import (
    ChurnAger,
    load_snapshot,
    quick_aging_config,
    restore_stack,
    run_aged_vs_fresh,
    save_snapshot,
    snapshot_stack,
)
from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed

TESTBED = scaled_testbed(0.0625)


def test_bench_churn_ager(benchmark):
    """Manufacturing one aged ext2 state with the quick profile."""

    def age():
        stack = build_stack("ext2", testbed=TESTBED, seed=777)
        return ChurnAger(quick_aging_config()).age(stack)

    result = run_once(benchmark, age)
    frag = result.fragmentation
    benchmark.extra_info["files_created"] = result.files_created
    benchmark.extra_info["free_extents"] = frag.free_space.extent_count
    assert frag.free_space.fragmentation_score > 0.5


def test_bench_snapshot_roundtrip(benchmark):
    """Save + load + restore of an aged state (the per-repetition overhead)."""
    stack = build_stack("ext2", testbed=TESTBED, seed=777)
    ChurnAger(quick_aging_config()).age(stack)
    snapshot = snapshot_stack(stack)
    handle, path = tempfile.mkstemp(suffix=".snapshot.json")
    os.close(handle)
    try:

        def roundtrip():
            save_snapshot(snapshot, path)
            return restore_stack(load_snapshot(path))

        restored = benchmark.pedantic(roundtrip, rounds=3, iterations=1, warmup_rounds=0)
        benchmark.extra_info["snapshot_kib"] = os.path.getsize(path) // 1024
        assert restored.fs.free_blocks() == stack.fs.free_blocks()
    finally:
        os.unlink(path)


def test_bench_aged_vs_fresh_experiment(benchmark):
    """The full quick aged-vs-fresh comparison on ext2 and xfs."""

    with tempfile.TemporaryDirectory(prefix="fsbench-aged-bench-") as scratch:

        def experiment():
            return run_aged_vs_fresh(
                fs_types=("ext2", "xfs"),
                testbed=TESTBED,
                quick=True,
                snapshot_dir=scratch,
            )

        result = run_once(benchmark, experiment)
        for fs_type, cell in result.cells.items():
            benchmark.extra_info[f"slowdown_{fs_type}"] = round(cell.slowdown_factor, 3)
            assert cell.slowdown_factor > 1.05
