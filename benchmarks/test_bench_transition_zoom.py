"""Benchmark: the Section 3.1 zoom into the Figure 1 transition region.

Paper reference: zooming into the 384-448 MB region shows the performance
drop happens within less than 6 MB, and the relative standard deviation
"skyrockets by up to 35%" inside the transition region.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_transition_zoom
from repro.experiments.config import default_scale


def test_bench_transition_zoom(benchmark, record_checks):
    result = run_once(
        benchmark,
        run_transition_zoom,
        fs_type="ext2",
        scale=default_scale(),
        fine_step_mb=4,
        target_width_mb=8.0,
    )
    record_checks(
        result,
        refined_width_mb=result.refined_width_mb(),
        peak_rsd_percent=round(result.peak_rsd_percent(), 1),
        extra_measurements=result.extra_measurements,
    )
    checks = result.checks()
    assert checks["transition_found"]
    assert checks["transition_narrower_than_coarse_step"]
    assert checks["rsd_spikes_in_transition"]
