"""Benchmark: multi-client contention across fresh, aged and steady-SSD stacks.

The survey found published evaluations measure one benchmark process on an
idle machine; this harness sweeps concurrent clients over the three stack
states and records whether contention shows up the way the storage models
say it must: sublinear aggregate scaling, degrading per-client tails, a
seek-bound fresh disk, a fragmentation-slowed aged baseline and FTL
garbage collection that grows with the writer count.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_scalability
from repro.storage.config import scaled_testbed


def test_bench_scalability(benchmark, record_checks, tmp_path):
    result = run_once(
        benchmark,
        run_scalability,
        quick=True,
        testbed=scaled_testbed(0.0625),
        snapshot_dir=str(tmp_path),
    )
    fresh = result.series["fresh/hdd"]
    aged = result.series["aged/hdd"]
    ssd = result.series["steady/ssd-ftl"]
    top = result.max_clients
    record_checks(
        result,
        clients=list(result.clients),
        fresh_hdd_speedup=round(fresh.speedup(top), 2),
        fresh_hdd_p95_degradation=round(fresh.p95_degradation(top), 2),
        aged_hdd_speedup=round(aged.speedup(top), 2),
        aged_hdd_p95_degradation=round(aged.p95_degradation(top), 2),
        ssd_speedup=round(ssd.speedup(top), 2),
        ssd_gc_growth=round(
            ssd.gc_time_ns[top] / ssd.gc_time_ns[ssd.baseline], 2
        )
        if ssd.gc_time_ns[ssd.baseline] > 0
        else None,
    )
    checks = result.checks()
    assert checks["aggregate_throughput_sublinear"]
    assert checks["per_client_p95_degrades"]
    assert checks["fresh_hdd_seek_bound_under_load"]
    assert checks["aged_baseline_slower_than_fresh"]
    assert checks["ssd_ftl_gc_grows_with_clients"]
