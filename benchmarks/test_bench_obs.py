"""Overhead guard for the observability layer (repro.obs).

Tracing promises to be non-perturbing in *virtual* time; this module bounds
its cost in *wall-clock* time.  The traced run of the golden cell is timed
under pytest-benchmark, the identical untraced run is timed inline, and the
ratio must stay within a modest constant -- if the tracer ever starts
dominating the simulation it should fail loudly here, not silently tax
every ``explain`` invocation.
"""

import time

from benchmarks.conftest import run_once

from repro.core.parallel import WorkUnit
from repro.core.runner import BenchmarkConfig
from repro.obs import payloads_match, run_unit_traced
from repro.storage.config import scaled_testbed
from repro.workloads.registry import postmark_workload

#: Traced wall-clock must stay under this multiple of untraced wall-clock.
#: The hooks are a handful of float adds and a deque append per charge;
#: 3x leaves generous headroom for noisy CI machines.
MAX_OVERHEAD_RATIO = 3.0


def golden_unit() -> WorkUnit:
    """The same cell the golden-hash tests pin (ext4/postmark, 2 s window)."""
    return WorkUnit(
        fs_type="ext4",
        spec=postmark_workload(file_count=120),
        config=BenchmarkConfig(duration_s=2.0, repetitions=1),
        testbed=scaled_testbed(0.0625),
    )


def test_bench_traced_run_overhead(benchmark):
    """One traced repetition of the golden cell, vs its untraced twin."""
    from repro.core.parallel import execute_unit

    # Warm interpreter caches once, then time the untraced baseline inline.
    execute_unit(golden_unit())
    started = time.perf_counter()
    untraced = execute_unit(golden_unit())
    untraced_s = time.perf_counter() - started

    traced = run_once(benchmark, run_unit_traced, golden_unit())

    traced_s = benchmark.stats.stats.mean
    ratio = traced_s / untraced_s if untraced_s > 0 else float("inf")
    benchmark.extra_info["untraced_seconds"] = untraced_s
    benchmark.extra_info["overhead_ratio"] = ratio
    benchmark.extra_info["trace_events"] = len(traced.trace_events)
    benchmark.extra_info["check:payload_identical"] = payloads_match(traced, untraced)
    benchmark.extra_info["check:overhead_bounded"] = ratio < MAX_OVERHEAD_RATIO

    assert payloads_match(traced, untraced)
    assert traced.attribution is not None
    assert ratio < MAX_OVERHEAD_RATIO
