"""Benchmark: regenerate Figure 1 (throughput and rel. std-dev vs file size).

Paper reference (Ext2, random read, 512 MB RAM): ~9,700 ops/s for files that
fit in the page cache, a cliff between 384 MB and 448 MB, and 162-465 ops/s
for files of 512 MB and beyond, with relative standard deviation several
times higher in the I/O-bound range.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_figure1
from repro.experiments.config import default_scale


def test_bench_figure1_ext2(benchmark, record_checks):
    result = run_once(benchmark, run_figure1, fs_type="ext2", scale=default_scale())
    rows = {size: (round(mean), round(rsd, 1)) for size, mean, rsd in result.rows()}
    record_checks(
        result,
        memory_bound_mean_ops=round(result.memory_bound_mean()),
        io_bound_mean_ops=round(result.io_bound_mean()),
        drop_factor=round(result.drop_factor(), 1),
        rows=str(rows),
    )
    checks = result.checks()
    assert checks["memory_bound_plateau_near_10k_ops"]
    assert checks["order_of_magnitude_drop"]
    assert checks["cliff_between_384_and_512_mb"]
    assert checks["io_bound_rsd_exceeds_memory_bound_rsd"]
