"""Timing benchmarks for the flash subsystem's hot paths.

The FTL sits under every device request of an ``ssd-ftl`` experiment cell,
and preconditioning runs once per ``ssd-ftl-steady`` stack, so their
wall-clock cost bounds how fast the fresh-vs-steady scenario family can be
regenerated.
"""

import random

from repro.storage.flash import (
    FlashGeometry,
    FlashTranslationLayer,
    default_flash_geometry,
    precondition_ssd,
)

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def _steady_ftl() -> FlashTranslationLayer:
    geometry = FlashGeometry(
        capacity_bytes=256 * MiB,
        page_bytes=32 * KiB,
        pages_per_block=64,
        gc_low_watermark_blocks=3,
        gc_high_watermark_blocks=6,
    )
    ftl = FlashTranslationLayer(geometry)
    precondition_ssd(ftl, churn_pages_per_round=1024)
    return ftl


def test_bench_ftl_steady_write_path(benchmark):
    """One random page overwrite on a steady-state FTL (GC amortised in)."""
    ftl = _steady_ftl()
    geometry = ftl.geometry
    rng = random.Random(5)
    offsets = [
        rng.randrange(geometry.logical_pages) * geometry.page_bytes for _ in range(4096)
    ]
    index = 0

    def steady_write():
        nonlocal index
        index = (index + 1) % len(offsets)
        return ftl.write(offsets[index], geometry.page_bytes, rng)

    benchmark(steady_write)
    assert ftl.stats.write_amplification > 1.0


def test_bench_ftl_read_path(benchmark):
    """One mapped page read (the FTL's cheapest operation)."""
    ftl = _steady_ftl()
    geometry = ftl.geometry
    rng = random.Random(5)

    def mapped_read():
        return ftl.read(0, geometry.page_bytes, rng)

    benchmark(mapped_read)


def test_bench_precondition_1gib(benchmark):
    """Whole-device preconditioning of the 1 GiB registry geometry.

    This is the per-stack cost every ``ssd-ftl-steady`` cell pays, so it is
    the number to watch as the FTL grows features.
    """

    def precondition():
        ftl = FlashTranslationLayer(default_flash_geometry(1 * GiB))
        return precondition_ssd(ftl)

    report = benchmark.pedantic(precondition, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["reached_steady"] = bool(report.reached_steady)
    benchmark.extra_info["final_write_amplification"] = report.final_write_amplification
    assert report.final_write_amplification > 1.0
