"""Benchmark: regenerate Table 1 (benchmark usage survey).

Paper reference: 19 benchmark rows; ad-hoc benchmarks are by far the most
common choice (237 uses in 1999-2007, 67 in 2009-2010); Postmark is the most
used standard benchmark (30/17); no benchmark isolates every dimension.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_table1


def test_bench_table1_survey(benchmark, record_checks):
    result = run_once(benchmark, run_table1)
    record_checks(
        result,
        rows=result.row_count(),
        most_used_2009_2010=result.most_used("2009_2010"),
        adhoc_fraction=round(result.database.adhoc_fraction("2009_2010"), 2),
    )
    assert all(result.checks().values())


def test_bench_table1_render_speed(benchmark):
    """Rendering the survey table is the one part worth micro-benchmarking."""
    from repro.core.survey import load_paper_survey

    database = load_paper_survey()
    text = benchmark(database.render_table1)
    assert "Ad-hoc" in text
