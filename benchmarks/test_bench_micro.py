"""Micro-benchmarks of the framework's own hot paths.

These are conventional pytest-benchmark timing loops (many rounds of a cheap
operation) for the pieces whose wall-clock cost determines how fast the
figure regenerations run: the VFS cache-hit read path, the page cache, the
latency histogram and the statistics layer.
"""

import random

from repro.core.histogram import LatencyHistogram
from repro.core.stats import summarize
from repro.fs.stack import build_stack
from repro.storage.cache import PageCache
from repro.storage.config import scaled_testbed

MiB = 1024 * 1024


def test_bench_vfs_cached_read_path(benchmark):
    """One 8 KiB read served from the page cache (the memory-bound inner loop)."""
    stack = build_stack("ext2", testbed=scaled_testbed(0.25), seed=1)
    vfs = stack.vfs
    vfs.create("/hot")
    fd = vfs.open("/hot")
    vfs.fallocate(fd, 8 * MiB, charge_time=False)
    for offset in range(0, 8 * MiB, 8192):
        vfs.read(fd, 8192, offset=offset)
    rng = random.Random(3)
    offsets = [rng.randrange(0, 8 * MiB - 8192) // 8192 * 8192 for _ in range(512)]
    index = 0

    def cached_read():
        nonlocal index
        index = (index + 1) % len(offsets)
        return vfs.read(fd, 8192, offset=offsets[index])

    benchmark(cached_read)


def test_bench_page_cache_lookup_insert(benchmark):
    """Page-cache lookup+insert cycle at steady state."""
    cache = PageCache(capacity_pages=4096)
    for page in range(4096):
        cache.insert((1, page))
    rng = random.Random(5)
    pages = [rng.randrange(0, 8192) for _ in range(1024)]
    index = 0

    def cycle():
        nonlocal index
        index = (index + 1) % len(pages)
        key = (1, pages[index])
        if not cache.lookup(key):
            cache.insert(key)

    benchmark(cycle)


def test_bench_histogram_add(benchmark):
    """Recording one latency sample into the log2 histogram."""
    histogram = LatencyHistogram()
    rng = random.Random(7)
    samples = [rng.uniform(1_000.0, 20_000_000.0) for _ in range(1024)]
    index = 0

    def add():
        nonlocal index
        index = (index + 1) % len(samples)
        histogram.add(samples[index])

    benchmark(add)


def test_bench_summarize_repetitions(benchmark):
    """Summary statistics over a typical repetition count."""
    values = [9700.0 + i * 13.0 for i in range(10)]
    benchmark(summarize, values)
