"""Overhead guard for the campaign telemetry layer (repro.obs.telemetry).

The executor event log and the phase profiler promise to be non-perturbing
in *virtual* time (pinned byte-identical in tests/test_telemetry.py); this
module bounds their cost in *wall-clock* time.  A two-cell campaign run
through ``ParallelExecutor`` with a live ``TelemetrySink`` is timed under
pytest-benchmark, the identical untelemetered campaign is timed inline, and
the ratio must stay within a modest constant -- the telemetry hooks are a
few clock reads and a deque append per unit, and should never dominate the
simulation they observe.
"""

import time

from benchmarks.conftest import run_once

from repro.core.parallel import ParallelExecutor, WorkUnit
from repro.core.persistence import canonical_run_payload
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.obs import TelemetrySink
from repro.storage.config import scaled_testbed
from repro.workloads.registry import postmark_workload

#: Telemetered wall-clock must stay under this multiple of the plain run.
#: Per unit the sink adds an event build + deque append per lifecycle stage
#: and the profiler a handful of perf_counter reads; 3x leaves generous
#: headroom for noisy CI machines.
MAX_OVERHEAD_RATIO = 3.0


def campaign_units() -> list[WorkUnit]:
    """A small two-repetition campaign on the golden cell's testbed."""
    spec = postmark_workload(file_count=60)
    config = BenchmarkConfig(duration_s=0.5, repetitions=1, warmup_mode=WarmupMode.NONE)
    testbed = scaled_testbed(0.0625)
    return [
        WorkUnit(fs_type="ext4", spec=spec, config=config, testbed=testbed, repetition=rep, group="postmark@ext4")
        for rep in (0, 1)
    ]


def run_campaign(sink=None):
    """Run the campaign serially, optionally under a telemetry sink."""
    executor = ParallelExecutor(n_workers=1, telemetry=sink)
    return executor.run_units(campaign_units())


def test_bench_telemetry_overhead(benchmark):
    """One telemetered campaign, vs its untelemetered twin."""
    # Warm interpreter caches once, then time the plain baseline inline.
    run_campaign()
    started = time.perf_counter()
    plain = run_campaign()
    plain_s = time.perf_counter() - started

    sink = TelemetrySink()
    telemetered = run_once(benchmark, run_campaign, sink)

    telemetered_s = benchmark.stats.stats.mean
    ratio = telemetered_s / plain_s if plain_s > 0 else float("inf")
    payloads_identical = [canonical_run_payload(r) for r in telemetered] == [
        canonical_run_payload(r) for r in plain
    ]
    benchmark.extra_info["plain_seconds"] = plain_s
    benchmark.extra_info["overhead_ratio"] = ratio
    benchmark.extra_info["telemetry_events"] = sink.total_events
    benchmark.extra_info["check:payload_identical"] = payloads_identical
    benchmark.extra_info["check:overhead_bounded"] = ratio < MAX_OVERHEAD_RATIO

    assert payloads_identical
    # Every unit settles with exactly one queued + one terminal event, and
    # fresh executions add an exec-start: 2 units x 3 events.
    assert sink.counts["queued"] == 2
    assert sink.counts["exec-done"] == 2
    assert ratio < MAX_OVERHEAD_RATIO
