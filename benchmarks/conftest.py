"""Shared helpers for the benchmark harness.

Every figure/table of the paper has one benchmark module here.  The
experiment harnesses run in *simulated* time, so what pytest-benchmark
records is the wall-clock cost of regenerating each figure; the interesting
scientific output (the reproduced curves and their qualitative checks) is
attached to each benchmark's ``extra_info`` and therefore lands in the
pytest-benchmark JSON/summary output.
"""

from __future__ import annotations

import os

import pytest

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Every benchmark is a full experiment simulation: mark them all slow.

    The default local loop (`pytest -q`) skips slow tests via the `-m "not
    slow"` addopts; CI and explicit `-m ""` runs still execute them.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Embed the normalized ``{name -> stats}`` shape into the bench JSON.

    The raw pytest-benchmark layout stays untouched (existing consumers keep
    working); the ``normalized`` section is the stable contract
    ``repro.obs.benchjson`` prefers, so every ``BENCH_*.json`` written from
    now on survives pytest-benchmark version churn and feeds
    ``fsbench-rocket bench-diff`` directly.
    """
    from repro.obs.benchjson import SCHEMA, normalize

    stats = normalize(output_json)
    output_json["normalized"] = {
        "schema": SCHEMA,
        "benchmarks": {name: s.to_dict() for name, s in sorted(stats.items())},
    }


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are full simulations (tens of seconds of wall clock), so
    repeating them for statistical timing would be wasteful; a single round
    is recorded and the scientific results are attached as extra_info.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def record_checks(benchmark):
    """Attach an experiment's qualitative checks to the benchmark record."""

    def _record(result, **extra):
        checks = result.checks() if hasattr(result, "checks") else {}
        benchmark.extra_info.update({f"check:{name}": bool(value) for name, value in checks.items()})
        for key, value in extra.items():
            benchmark.extra_info[key] = value
        return result

    return _record
