"""Benchmark: regenerate Figure 3 (latency histograms for 64 MB / 1 GB / 25 GB).

Paper reference: a single ~4 us peak for the 64 MB file, two roughly equal
peaks for the 1024 MB file (cache hits vs disk reads), a single disk peak for
the 25 GB file, and reported latencies spanning more than three orders of
magnitude across the three working-set sizes.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_figure3
from repro.experiments.config import default_scale


def test_bench_figure3_latency_histograms(benchmark, record_checks):
    result = run_once(benchmark, run_figure3, fs_type="ext2", scale=default_scale())
    record_checks(
        result,
        modes_by_size={size: result.modes_for(size) for size in result.sizes_mb()},
        latency_span_orders=round(result.latency_span_orders(), 1),
    )
    checks = result.checks()
    assert checks["small_file_single_memory_peak"]
    assert checks["medium_file_bimodal"]
    assert checks["large_file_disk_peak_dominates"]
    assert checks["latencies_span_three_orders_of_magnitude"]
