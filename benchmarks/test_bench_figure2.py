"""Benchmark: regenerate Figure 2 (Ext2/Ext3/XFS throughput over time).

Paper reference: with a 410 MB file (the largest fitting in the page cache)
read randomly from a cold cache, all three file systems start at disk speed
and end at memory speed, but differ by up to nearly an order of magnitude
while the cache warms (between roughly 4 and 13 minutes into the run).

The default scale runs the same experiment on a proportionally shrunken
machine (see ``ExperimentScale.figure2_testbed_scale``), which preserves the
curve's shape; pass ``--paper-scale`` through the CLI for the full machine.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_figure2
from repro.experiments.config import default_scale


def test_bench_figure2_warmup_timelines(benchmark, record_checks):
    result = run_once(benchmark, run_figure2, fs_types=("ext2", "ext3", "xfs"), scale=default_scale())
    start_ratio, end_ratio = result.endpoint_agreement()
    record_checks(
        result,
        cold_start_cross_fs_ratio=round(start_ratio, 2),
        warm_cross_fs_ratio=round(end_ratio, 2),
        worst_mid_run_ratio=round(result.mid_run_spread(), 1),
        warmup_intervals={fs: result.warmup_interval_index(fs) for fs in result.filesystems()},
    )
    checks = result.checks()
    assert checks["similar_when_warm"]
    assert checks["large_mid_run_differences"]
    assert checks["filesystems_warm_at_different_times"]
