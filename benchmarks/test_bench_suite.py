"""Benchmark: the multi-dimensional nano-benchmark suite (Section 4).

Runs the paper's proposed minimum suite -- in-memory, disk-layout, cache
warm-up/eviction, meta-data and scaling components -- across the three
simulated file systems on a quarter-scale testbed, and records the
per-dimension winners (or the honest absence of one).
"""

from benchmarks.conftest import run_once
from repro.analysis.comparison import compare_repetition_sets
from repro.core.suite import NanoBenchmarkSuite
from repro.storage.config import scaled_testbed


def run_suite():
    suite = NanoBenchmarkSuite(testbed=scaled_testbed(0.25), quick=True)
    return suite.run(fs_types=("ext2", "ext3", "xfs"))


def test_bench_nano_suite(benchmark):
    result = run_once(benchmark, run_suite)
    verdicts = {}
    for name in result.benchmark_names():
        ext2 = result.result_for(name, "ext2")
        xfs = result.result_for(name, "xfs")
        verdict = compare_repetition_sets("ext2", ext2, "xfs", xfs)
        verdicts[name] = verdict.winner if verdict.significant else "no difference"
    benchmark.extra_info["ext2_vs_xfs_winners"] = str(verdicts)
    benchmark.extra_info["benchmarks"] = len(result.benchmark_names())
    assert len(result.benchmark_names()) >= 6
    assert set(result.filesystems()) == {"ext2", "ext3", "xfs"}
