#!/usr/bin/env python3
"""Regenerate Table 1 and extend the benchmark-usage survey.

Prints the paper's Table 1 (benchmarks, dimension coverage, usage counts for
1999-2007 and 2009-2010), the derived statistics the paper quotes in the
text (ad-hoc benchmarks dominate; almost nothing is shared between papers),
and then shows how a new survey pass would be added: we record a hypothetical
2025 paper that used fio, a custom trace and an ad-hoc generator, and print
the updated counts.

::

    python examples/survey_report.py
"""

from __future__ import annotations

import argparse

from repro.core.dimensions import Dimension
from repro.core.survey import load_paper_survey


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)

    survey = load_paper_survey()
    print(survey.render_table1())
    print()

    print("Derived statistics (2009-2010):")
    print(f"  total recorded benchmark uses: {survey.total_uses('2009_2010')}")
    print(f"  ad-hoc fraction:               {100 * survey.adhoc_fraction('2009_2010'):.0f}%")
    for dimension in Dimension.ordered():
        isolating = survey.isolating_benchmarks(dimension)
        names = ", ".join(isolating) if isolating else "(none)"
        print(f"  benchmarks isolating {dimension.title:<10}: {names}")
    print()

    print("Extending the survey with a hypothetical new paper...")
    survey.record_use("Flexible I/O tester (fio)")
    survey.record_use("Trace-based custom")
    survey.record_use("Ad-hoc")
    print(f"  fio uses are now:              {survey.get('Flexible I/O tester (fio)').uses_2009_2010}")
    print(f"  trace-based custom uses:       {survey.get('Trace-based custom').uses_2009_2010}")
    print(f"  ad-hoc uses:                   {survey.get('Ad-hoc').uses_2009_2010}")
    print(
        "\nThe dataset is plain Python objects; a new survey year is a list of "
        "record_use() calls plus coverage vectors for any new benchmarks."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
