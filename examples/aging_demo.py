#!/usr/bin/env python3
"""Age a file system, snapshot the state, and compare PostMark fresh vs. aged.

Every published PostMark number implicitly assumes a freshly-formatted file
system -- a state variable the paper says evaluations must disclose.  This
example makes the hidden variable explicit:

1. churn an ext2 stack into a realistically aged state (shredded free
   space) and print the fragmentation metrics that describe it;
2. save the state as a deterministic snapshot -- a shareable artifact that
   anyone can restore bit-for-bit;
3. run the identical PostMark configuration on a fresh stack and on a
   restored aged stack, and report both numbers side by side.

::

    python examples/aging_demo.py --quick
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.aging import (
    ChurnAger,
    load_snapshot,
    quick_aging_config,
    restore_stack,
    save_snapshot,
    snapshot_stack,
)
from repro.fs.stack import DEFAULT_FS_TYPES, build_stack
from repro.storage.config import paper_testbed, scaled_testbed
from repro.workloads import PostmarkConfig, run_postmark


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/16-scale machine")
    parser.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.0625) if args.quick else paper_testbed()
    # Files larger than the aged free-space holes and a pool larger than the
    # page cache: the read half of each transaction must touch the (aged,
    # fragmented) disk layout instead of being absorbed by the cache.
    postmark = PostmarkConfig(
        initial_files=60 if args.quick else 400,
        transactions=150 if args.quick else 1000,
        min_size=128 * 1024,
        max_size=(1 if args.quick else 2) * 1024 * 1024,
        iosize=128 * 1024,
        seed=42,
    )

    # 1. Age a stack and describe the damage.
    aged_source = build_stack(args.fs, testbed=testbed, seed=777)
    aging = ChurnAger(quick_aging_config()).age(aged_source)
    print(aging.render())

    # 2. The aged state becomes a reproducible artifact.
    with tempfile.NamedTemporaryFile("w", suffix=".snapshot.json", delete=False) as handle:
        snapshot_path = handle.name
        save_snapshot(snapshot_stack(aged_source), handle)
    size_kib = os.path.getsize(snapshot_path) // 1024
    print(
        f"\nSaved the aged state to {snapshot_path} ({size_kib} KiB; "
        "removed again once restored below)"
    )

    # 3. Identical PostMark runs: fresh format vs. restored aged state.
    fresh_stack = build_stack(args.fs, testbed=testbed, seed=99)
    fresh = run_postmark(fresh_stack, postmark)
    aged_stack = restore_stack(load_snapshot(snapshot_path), seed=99)
    os.unlink(snapshot_path)  # the demo's artifact; don't litter the temp dir
    aged = run_postmark(aged_stack, postmark)

    print(f"\nfresh {args.fs}: {fresh.summary()}")
    print(f"aged  {args.fs}: {aged.summary()}")
    ratio = (
        fresh.transactions_per_second / aged.transactions_per_second
        if aged.transactions_per_second > 0
        else float("inf")
    )
    direction = "slower" if ratio > 1 else "faster"
    magnitude = ratio if ratio > 1 else 1 / ratio
    print(
        f"\nThe same benchmark runs {magnitude:.2f}x {direction} on the aged state "
        "(aging can cut either way: fragmentation slows large reads, while a "
        "nearly-full device forces new files into the few free regions, which "
        "*improves* locality over fresh-format placement). Publishing either "
        "number without the state snapshot -- or at least the fragmentation "
        "metrics above -- makes it irreproducible."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
