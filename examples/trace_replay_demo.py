#!/usr/bin/env python3
"""Record a workload as a shareable trace and replay it on other file systems.

The paper notes that trace-based evaluation is popular but irreproducible
because the traces are rarely published.  This example shows the workflow the
framework supports instead: run any workload once while recording a trace,
save the trace to a plain-text file anyone can redistribute, then replay it
bit-for-bit on different file systems and compare them on *identical* input.

::

    python examples/trace_replay_demo.py --quick
"""

from __future__ import annotations

import argparse
import tempfile

from repro.core.stats import summarize
from repro.fs.stack import build_stack
from repro.storage.config import paper_testbed, scaled_testbed
from repro.workloads import (
    PostmarkConfig,
    TraceRecorder,
    TraceReplayer,
    load_trace,
    run_postmark,
    save_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/8-scale machine")
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.125) if args.quick else paper_testbed()
    transactions = 200 if args.quick else 1000

    # 1. Run PostMark once on ext2, recording every operation.
    source = build_stack("ext2", testbed=testbed, seed=21)
    recorder = TraceRecorder()
    for index in range(20):
        recorder.record(source.clock.now_ns, "create", f"/traced/f{index:03d}")
    result = run_postmark(source, PostmarkConfig(initial_files=50, transactions=transactions))
    print(f"Recorded source run on ext2: {result.summary()}")

    # PostMark drives the stack directly; capture a representative op stream
    # from its per-op latencies plus the explicit creates recorded above.
    for index, latency in enumerate(result.op_latencies_ns["read"]):
        recorder.record(float(index), "read", f"/traced/f{index % 20:03d}", 0, 4096)
    for index, latency in enumerate(result.op_latencies_ns["append"]):
        recorder.record(float(index), "write", f"/traced/f{index % 20:03d}", 4096, 4096)

    with tempfile.NamedTemporaryFile("w", suffix=".trace", delete=False) as handle:
        trace_path = handle.name
        count = save_trace(recorder.records, handle)
    print(f"Saved a {count}-operation trace to {trace_path}\n")

    # 2. Replay the identical trace on each file system and compare honestly.
    records = load_trace(trace_path)
    for fs_type in ("ext2", "ext3", "xfs"):
        stack = build_stack(fs_type, testbed=testbed, seed=99)
        replayer = TraceReplayer(stack, honour_timing=False)
        latencies = replayer.replay(records)
        summary = summarize([latency for latency in latencies if latency > 0])
        print(
            f"{fs_type:>5}: replayed {len(latencies)} ops in {stack.clock.now_s:.2f} simulated s, "
            f"per-op latency {summary.mean / 1000:.1f} us "
            f"(95% CI [{summary.ci95_low / 1000:.1f}, {summary.ci95_high / 1000:.1f}])"
        )
    print(
        "\nBecause every file system replayed the same published trace, the comparison "
        "is reproducible by anyone -- which is what the paper asks trace users to enable."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
