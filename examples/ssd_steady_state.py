#!/usr/bin/env python3
"""PostMark on a fresh-out-of-box SSD vs the same SSD at steady state.

Every SSD benchmarking guide says the same thing the paper says about file
systems: the *state* of the device is part of the experiment.  A fresh SSD
has its whole over-provisioned pool erased, so writes land at raw NAND
program speed; once the device has been filled and churned, garbage
collection runs behind every write and both throughput and tail latency
change.  Publishing either number without saying which state it came from
makes it irreproducible.

This example makes the device state explicit:

1. build one storage stack on a fresh ``ssd-ftl`` device and one whose
   device was deterministically preconditioned to steady state
   (:func:`repro.storage.flash.precondition_ssd`: fill, burn-in, churn until
   write amplification is statistically steady);
2. run the identical PostMark configuration on both;
3. report throughput side by side with the flash telemetry -- write
   amplification, erase counts and garbage-collection pause time -- that
   explains the gap.

::

    python examples/ssd_steady_state.py --quick
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.fs.stack import DEFAULT_FS_TYPES, build_stack
from repro.storage.config import paper_testbed, scaled_testbed
from repro.workloads import PostmarkConfig, run_postmark


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/16-scale machine")
    parser.add_argument("--fs", default="ext4", choices=DEFAULT_FS_TYPES)
    args = parser.parse_args(argv)

    base = scaled_testbed(0.0625) if args.quick else paper_testbed()
    # Write-heavy PostMark: files big enough that the write stream must reach
    # the device instead of idling in the page cache, which is where the two
    # device states diverge.
    postmark = PostmarkConfig(
        initial_files=60 if args.quick else 300,
        transactions=200 if args.quick else 1500,
        min_size=64 * 1024,
        max_size=(512 if args.quick else 1024) * 1024,
        iosize=64 * 1024,
        seed=42,
    )

    results = {}
    for state in ("ssd-ftl-fresh", "ssd-ftl-steady"):
        testbed = replace(base, device_kind=state)
        # Building the stack constructs the device through DEVICE_REGISTRY;
        # the -steady factory runs the deterministic preconditioner, so the
        # "aged device" here is exactly the state every other harness (and
        # every other machine) would manufacture.
        stack = build_stack(args.fs, testbed=testbed, seed=99)
        outcome = run_postmark(stack, postmark)
        results[state] = (outcome, stack.device.model.stats, stack.device.model.wear_summary())
        print(f"{state:>16}: {outcome.summary()}")

    fresh, steady = results["ssd-ftl-fresh"], results["ssd-ftl-steady"]
    print("\nFlash telemetry (measured window):")
    for label, (_, stats, wear) in results.items():
        print(
            f"  {label:>16}: write amplification {stats.write_amplification or 1.0:.2f}, "
            f"{stats.erases} erases, GC {stats.gc_time_ns / 1e6:.1f} ms, "
            f"max wear {wear['max_erases']:.0f} erase cycles"
        )

    fresh_tps = fresh[0].transactions_per_second
    steady_tps = steady[0].transactions_per_second
    ratio = fresh_tps / steady_tps if steady_tps > 0 else float("inf")
    print(
        f"\nThe same PostMark run is {ratio:.2f}x "
        f"{'slower' if ratio > 1 else 'faster'} on the steady-state device. "
        "A fresh-out-of-box SSD number and a preconditioned one are different "
        "experiments; report which state you measured (or snapshot it -- FTL "
        "state round-trips through repro.aging.snapshot_stack bit-identically)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
