#!/usr/bin/env python3
"""Compare Ext2, Ext3 and XFS with the multi-dimensional nano-benchmark suite.

This is the paper's Section 4 prescription in action: instead of asking
"which file system is faster?", run one nano-benchmark per dimension
(in-memory, on-disk layout, cache warm-up, meta-data, scaling), report every
cell with its spread, and only call winners where the confidence intervals
separate.  The output typically shows different winners on different
dimensions -- which is exactly why a single number cannot answer the
original question.

::

    python examples/compare_filesystems.py --quick
"""

from __future__ import annotations

import argparse

from repro.core.report import suite_report
from repro.core.suite import NanoBenchmarkSuite
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.analysis.comparison import compare_repetition_sets
from repro.storage.config import paper_testbed, scaled_testbed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/8-scale machine")
    parser.add_argument(
        "--fs",
        action="append",
        choices=DEFAULT_FS_TYPES,
        help="file systems to compare (repeatable; default: all four)",
    )
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.125) if args.quick else paper_testbed()
    fs_types = tuple(args.fs) if args.fs else DEFAULT_FS_TYPES

    suite = NanoBenchmarkSuite(testbed=testbed, quick=args.quick)
    result = suite.run(fs_types=fs_types)
    print(suite_report(result, title=f"Nano-benchmark suite on {testbed.name}"))

    if len(fs_types) >= 2:
        print("Per-dimension verdicts (first vs last file system):")
        first, last = fs_types[0], fs_types[-1]
        for benchmark_name in result.benchmark_names():
            verdict = compare_repetition_sets(
                first,
                result.result_for(benchmark_name, first),
                last,
                result.result_for(benchmark_name, last),
            )
            print(f"  {benchmark_name}: {verdict.format()}")
        print(
            "\nIf the winner changes from row to row, no single number can rank "
            f"{first} against {last}; that is the paper's point."
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
