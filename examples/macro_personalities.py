#!/usr/bin/env python3
"""Run Filebench-like macro personalities and see what they actually measure.

The survey (Table 1) classifies Filebench and Postmark as benchmarks that
*exercise* many dimensions without isolating any.  This example runs the
webserver and varmail personalities plus a PostMark pass against a simulated
stack and prints, next to every headline number, the evidence of what was
really measured: the cache hit ratio, the device utilisation, the latency
modality, and the dimension-coverage vector of the workload.

::

    python examples/macro_personalities.py --quick
"""

from __future__ import annotations

import argparse

from repro.core.dimensions import DimensionVector
from repro.core.histogram import LatencyHistogram
from repro.core.runner import BenchmarkConfig, BenchmarkRunner, WarmupMode
from repro.storage.config import paper_testbed, scaled_testbed
from repro.workloads import (
    PostmarkConfig,
    run_postmark,
    varmail_personality,
    webserver_personality,
)
from repro.fs.stack import DEFAULT_FS_TYPES, build_stack


def describe_run(name, repetitions, dimensions):
    summary = repetitions.throughput_summary()
    run = repetitions.first()
    histogram = repetitions.merged_histogram()
    modality = "bi-modal" if histogram.is_bimodal() else "uni-modal"
    vector = DimensionVector.from_names(dimensions)
    print(f"--- {name}")
    print(f"  throughput : {summary.format('ops/s')}")
    print(f"  cache hits : {run.cache_hit_ratio * 100:.1f}% of page lookups")
    print(f"  device I/O : {run.device_reads} reads, {run.device_writes} writes")
    print(f"  latency    : mean {histogram.mean_ns() / 1000:.1f} us, {modality}, "
          f"p99 {histogram.percentile(99) / 1000:.1f} us")
    print(f"  dimensions : {vector.describe()} (exercised, not isolated)")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/8-scale machine")
    parser.add_argument("--fs", default="ext3", choices=DEFAULT_FS_TYPES)
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.125) if args.quick else paper_testbed()
    config = BenchmarkConfig(
        duration_s=3.0 if args.quick else 10.0,
        repetitions=2 if args.quick else 3,
        warmup_mode=WarmupMode.NONE,
        interval_s=1.0,
    )
    file_count = 100 if args.quick else 500

    print(f"Macro personalities on {args.fs} ({testbed.describe()})\n")

    web = webserver_personality(file_count=file_count, threads=2)
    runner = BenchmarkRunner(fs_type=args.fs, testbed=testbed, config=config)
    describe_run("Filebench-like webserver", runner.run(web), web.dimensions)

    mail = varmail_personality(file_count=file_count, threads=2)
    runner = BenchmarkRunner(fs_type=args.fs, testbed=testbed, config=config)
    describe_run("Filebench-like varmail", runner.run(mail), mail.dimensions)

    # PostMark is a one-shot transaction benchmark, run directly on a stack.
    stack = build_stack(args.fs, testbed=testbed, seed=11)
    postmark = run_postmark(
        stack,
        PostmarkConfig(
            initial_files=file_count,
            transactions=300 if args.quick else 2000,
        ),
    )
    print("--- PostMark")
    print(f"  {postmark.summary()}")
    merged = LatencyHistogram()
    for latencies in postmark.op_latencies_ns.values():
        merged.add_many(latencies)
    print(f"  latency    : mean {merged.mean_ns() / 1000:.1f} us, "
          f"{'bi-modal' if merged.is_bimodal() else 'uni-modal'}")
    print(f"  cache hits : {stack.cache.stats.hit_ratio * 100:.1f}%")
    print()
    print(
        "None of these numbers says which dimension was measured -- the hit ratios "
        "and modality above are what determine whether you benchmarked RAM, the "
        "allocator, or the disk."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
