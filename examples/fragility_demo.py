#!/usr/bin/env python3
"""Demonstrate benchmark fragility around the page-cache boundary (Figure 1).

Sweeps the random-read working set across the page-cache size, printing the
Figure-1 style table (mean throughput and relative standard deviation per
size), then uses the self-scaling sweep to localise the cliff the way
Section 3.1 does ("performance drops within an even narrower region -- less
than 6 MB in size") and prints the fragility report a careful researcher
should attach to such results.

::

    python examples/fragility_demo.py --quick
"""

from __future__ import annotations

import argparse

from repro.analysis.fragility import assess_sweep
from repro.analysis.regimes import regime_ranges
from repro.core.report import ascii_plot, sweep_table
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.core.selfscaling import SelfScalingBenchmark
from repro.fs.stack import DEFAULT_FS_TYPES
from repro.storage.config import paper_testbed, scaled_testbed
from repro.workloads.micro import random_read_workload

MiB = 1024 * 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/8-scale machine")
    parser.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.125) if args.quick else paper_testbed()
    cache_bytes = testbed.page_cache_bytes

    config = BenchmarkConfig(
        duration_s=2.0 if args.quick else 5.0,
        repetitions=3 if args.quick else 5,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=1.0,
    )
    benchmark = SelfScalingBenchmark(
        workload_for_parameter=lambda size: random_read_workload(int(size)),
        fs_type=args.fs,
        testbed=testbed,
        config=config,
        parameter_name="file_size",
        unit="bytes",
    )
    result = benchmark.run(
        low=cache_bytes * 0.5,
        high=cache_bytes * 1.75,
        coarse_points=6,
        resolution=cache_bytes * 0.02,
    )

    print(f"Self-scaling sweep of {args.fs} random-read throughput vs working-set size")
    print(f"Page cache: {cache_bytes // MiB} MiB\n")
    print(sweep_table(result.sweep))
    print()
    print(ascii_plot(result.sweep.mean_throughputs(), x_label="file size (bytes)", y_label="ops/s"))
    print()
    print("Transition:", result.describe("bytes"))
    print()
    print("Regime ranges:")
    for regime, low, high in regime_ranges(result.sweep):
        print(f"  {regime.value:>14}: {low / MiB:7.1f} .. {high / MiB:7.1f} MiB")
    print()
    print("Fragility report:")
    print(assess_sweep(result.sweep).format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
