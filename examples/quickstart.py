#!/usr/bin/env python3
"""Quickstart: benchmark one file system the way the paper says you should.

Builds the paper's simulated testbed (512 MB RAM, single SATA disk), runs the
random-read nano-benchmark at two working-set sizes -- one inside the page
cache and one beyond it -- and prints a multi-dimensional report: throughput
with confidence intervals, the latency histogram, the regime each
measurement actually exercised, and any fragility warnings.

Run it with ``--quick`` to use a 1/8-scale machine (seconds instead of a
couple of minutes)::

    python examples/quickstart.py --quick
"""

from __future__ import annotations

import argparse

from repro import BenchmarkConfig, BenchmarkRunner, WarmupMode, random_read_workload
from repro.fs import DEFAULT_FS_TYPES
from repro.analysis.fragility import assess_repetitions
from repro.analysis.regimes import classify_repetitions
from repro.core.report import ReportBuilder, histogram_report
from repro.storage.config import paper_testbed, scaled_testbed

MiB = 1024 * 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run on a 1/8-scale machine")
    parser.add_argument("--fs", default="ext2", choices=DEFAULT_FS_TYPES)
    args = parser.parse_args(argv)

    testbed = scaled_testbed(0.125) if args.quick else paper_testbed()
    cache_mb = testbed.page_cache_bytes // MiB
    small_file = int(testbed.page_cache_bytes * 0.5)
    large_file = int(testbed.page_cache_bytes * 2.0)

    config = BenchmarkConfig(
        duration_s=5.0 if args.quick else 20.0,
        repetitions=3 if args.quick else 5,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=1.0,
    )
    runner = BenchmarkRunner(fs_type=args.fs, testbed=testbed, config=config)

    report = ReportBuilder(title=f"Quickstart: {args.fs} on {testbed.describe()}")
    for label, size in (("fits in cache", small_file), ("twice the cache", large_file)):
        repetitions = runner.run(random_read_workload(size))
        summary = repetitions.throughput_summary()
        regime = classify_repetitions(repetitions)
        warnings = assess_repetitions(repetitions)
        body = [
            f"Working set: {size // MiB} MiB (page cache: {cache_mb} MiB)",
            f"Throughput: {summary.format('ops/s')}",
            f"Regime: {regime.value} -- {regime.description}",
        ]
        if warnings:
            body.append("Fragility warnings:")
            body.extend("  " + warning.format() for warning in warnings)
        else:
            body.append("Fragility warnings: none")
        body.append("")
        body.append(histogram_report(repetitions.merged_histogram(), "read latency"))
        report.add_section(f"Random read, {label}", "\n".join(body))

    print(report.render())
    print(
        "Take-away: the same benchmark measures completely different subsystems "
        "depending on the working-set size -- report both, never a single number."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
