"""Packaging for the fsbench-rocket reproduction.

``pip install -e .`` makes the ``repro`` package importable without
``PYTHONPATH=src`` and installs the ``fsbench-rocket`` console command.
"""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.dirname(os.path.abspath(__file__))


def _version() -> str:
    """Single-source the version from ``repro.__version__`` (no import needed)."""
    path = os.path.join(HERE, "src", "repro", "__init__.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r"^__version__\s*=\s*[\"']([^\"']+)[\"']", handle.read(), re.M)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


def _long_description() -> str:
    path = os.path.join(HERE, "README.md")
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    return ""


setup(
    name="fsbench-rocket",
    version=_version(),
    description=(
        "Reproduction of 'Benchmarking File System Benchmarking: It *IS* Rocket Science' "
        "(HotOS XIII): a simulated storage stack, the paper's measurement protocol, "
        "and a parallel multi-dimensional benchmark survey engine."
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "fsbench-rocket = repro.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Benchmark",
        "Topic :: System :: Filesystems",
    ],
)
