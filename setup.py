"""Setup shim for environments that install via the legacy setuptools path."""
from setuptools import setup

setup()
