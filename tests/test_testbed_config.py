"""Tests for testbed configuration."""

import pytest

from repro.storage.cache import CachePolicy
from repro.storage.config import (
    CpuCosts,
    TestbedConfig,
    paper_testbed,
    scaled_testbed,
    ssd_testbed,
)
from repro.storage.disk import MechanicalDisk, RamDisk, SolidStateDisk

MiB = 1024 * 1024


class TestPaperTestbed:
    def test_matches_paper_parameters(self):
        testbed = paper_testbed()
        assert testbed.ram_bytes == 512 * MiB
        assert testbed.device_kind == "hdd"
        assert testbed.cache_policy == CachePolicy.LRU

    def test_page_cache_is_about_410_mb(self):
        """The paper: a 410 MB file was the largest that fit in the page cache."""
        cache_mb = paper_testbed().page_cache_bytes / MiB
        assert 400 <= cache_mb <= 420

    def test_validates(self):
        paper_testbed().validate()

    def test_describe_mentions_ram_and_device(self):
        text = paper_testbed().describe()
        assert "512" in text and "hdd" in text


class TestScaledTestbed:
    def test_scaling_preserves_cache_fraction(self):
        full = paper_testbed()
        scaled = scaled_testbed(0.25)
        full_fraction = full.page_cache_bytes / full.ram_bytes
        scaled_fraction = scaled.page_cache_bytes / scaled.ram_bytes
        assert scaled_fraction == pytest.approx(full_fraction, rel=0.05)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_testbed(0.0)
        with pytest.raises(ValueError):
            scaled_testbed(1.5)

    def test_scale_one_is_paper_size(self):
        assert scaled_testbed(1.0).ram_bytes == paper_testbed().ram_bytes


class TestValidation:
    def test_os_reservation_must_fit_in_ram(self):
        config = TestbedConfig(ram_bytes=100 * MiB, os_reserved_bytes=200 * MiB)
        with pytest.raises(ValueError):
            config.validate()

    def test_page_size_must_be_power_of_two(self):
        config = TestbedConfig(page_size=3000)
        with pytest.raises(ValueError):
            config.validate()

    def test_unknown_device_kind_rejected(self):
        config = TestbedConfig(device_kind="tape")
        with pytest.raises(ValueError):
            config.validate()

    def test_cpu_costs_must_be_non_negative(self):
        with pytest.raises(ValueError):
            CpuCosts(syscall_overhead_ns=-1).validate()


class TestBuilders:
    def test_build_device_models(self):
        assert isinstance(paper_testbed().build_device_model(), MechanicalDisk)
        assert isinstance(ssd_testbed().build_device_model(), SolidStateDisk)
        ram_config = TestbedConfig(device_kind="ramdisk")
        assert isinstance(ram_config.build_device_model(), RamDisk)

    def test_build_page_cache_sized_from_memory(self):
        testbed = paper_testbed()
        cache = testbed.build_page_cache()
        assert cache.capacity_pages == testbed.page_cache_pages

    def test_with_ram_and_policy_return_copies(self):
        base = paper_testbed()
        modified = base.with_ram(256 * MiB).with_cache_policy(CachePolicy.ARC)
        assert modified.ram_bytes == 256 * MiB
        assert modified.cache_policy == CachePolicy.ARC
        assert base.ram_bytes == 512 * MiB
        assert base.cache_policy == CachePolicy.LRU
