"""Campaign telemetry: event log, phase profiler, progress, bench gate.

The heart of this file is the non-perturbation suite: wall-clock telemetry
and profiling observe the harness, never the simulation, so the golden
payload hash and the golden cache key -- pinned before telemetry existed --
must survive with a sink attached and the profiler armed.
"""

from __future__ import annotations

import hashlib
import io
import json
import os

import pytest

from repro.cli import main
from repro.core.parallel import ParallelExecutor, ResultCache, WorkUnit
from repro.core.persistence import run_result_to_dict, save_run_result
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.obs import (
    EVENT_KINDS,
    BenchStats,
    PhaseProfiler,
    ProgressReporter,
    TelemetrySink,
    diff_benchmarks,
    dump_bench_json,
    hotspot_report,
    load_bench_json,
    load_events,
    payloads_match,
    render_report,
    timed_execute,
)
from repro.obs.benchjson import normalize
from repro.obs.profile import top_phases
from repro.obs.telemetry import TelemetryEvent, events_to_dicts
from repro.storage.config import scaled_testbed
from repro.workloads.registry import postmark_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The pins of tests/test_obs.py and tests/test_concurrency.py, repeated here
# because wall-clock telemetry must never move them either.
GOLDEN_KEY_EXT4_POSTMARK = "e84a62e530984408d1f1a1e58160ca91292d5bcd0392fdbf0e652d2c5f14789f"
GOLDEN_RUN_SHA256 = "bfa10d8b6cb1e93e3e6f295f1fd5e3a6510048f5614aa9cce65a71a02f238140"


def golden_unit() -> WorkUnit:
    return WorkUnit(
        fs_type="ext4",
        spec=postmark_workload(file_count=120),
        config=BenchmarkConfig(duration_s=2.0, repetitions=1),
        testbed=scaled_testbed(0.0625),
    )


def quick_units(repetitions: int = 2, fs_type: str = "ext4") -> list:
    testbed = scaled_testbed(0.0625)
    spec = postmark_workload(file_count=60)
    config = BenchmarkConfig(
        duration_s=0.5,
        repetitions=repetitions,
        warmup_mode=WarmupMode.NONE,
    )
    return [
        WorkUnit(
            fs_type=fs_type,
            spec=spec,
            config=config,
            repetition=index,
            testbed=testbed,
            group=f"postmark@{fs_type}",
        )
        for index in range(repetitions)
    ]


def payload_sha256(run) -> str:
    buffer = io.StringIO()
    save_run_result(run, buffer)
    return hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()


# ---------------------------------------------------------- non-perturbation
class TestNonPerturbation:
    def test_timed_execute_preserves_golden_payload_and_key(self):
        """With the profiler armed, payload bytes and cache key are pinned."""
        unit = golden_unit()
        run, timing = timed_execute(unit)
        assert payload_sha256(run) == GOLDEN_RUN_SHA256
        from repro.core.parallel import cache_key

        assert (
            cache_key("ext4", postmark_workload(), BenchmarkConfig(), seed=42)
            == GOLDEN_KEY_EXT4_POSTMARK
        )
        # ...even though the timing side-channel carries the evidence:
        assert timing.wall_s > 0
        assert timing.phases
        assert timing.pid == os.getpid()

    def test_telemetry_fields_never_enter_the_payload(self):
        run, timing = timed_execute(golden_unit())
        payload = run_result_to_dict(run)
        for name in ("wall_s", "phases", "worker", "t_s", "kind"):
            assert name not in payload
        assert set(timing.phases) & {"stack-build", "setup", "measured-run"}

    def test_executor_results_identical_with_and_without_sink(self, tmp_path):
        units = quick_units()
        plain = ParallelExecutor(n_workers=1).run_units(units)
        sink = TelemetrySink(str(tmp_path / "telemetry.jsonl"))
        observed = ParallelExecutor(n_workers=1, telemetry=sink).run_units(units)
        sink.close()
        assert all(payloads_match(a, b) for a, b in zip(plain, observed))

    @pytest.mark.slow
    def test_serial_and_parallel_identical_under_telemetry(self, tmp_path):
        units = quick_units(repetitions=3)
        serial_sink = TelemetrySink(str(tmp_path / "serial.jsonl"))
        pool_sink = TelemetrySink(str(tmp_path / "pool.jsonl"))
        serial = ParallelExecutor(n_workers=1, telemetry=serial_sink).run_units(units)
        parallel = ParallelExecutor(n_workers=2, telemetry=pool_sink).run_units(units)
        serial_sink.close()
        pool_sink.close()
        assert [payload_sha256(run) for run in serial] == [
            payload_sha256(run) for run in parallel
        ]
        # Both sinks saw one queued + exec-start + exec-done per unit.
        for sink in (serial_sink, pool_sink):
            assert sink.counts["queued"] == 3
            assert sink.counts["exec-done"] == 3

    def test_cached_results_identical_with_and_without_sink(self, tmp_path):
        units = quick_units()
        reference_cache = ResultCache(str(tmp_path / "a"))
        reference = ParallelExecutor(n_workers=1, cache=reference_cache).run_units(units)
        sink = TelemetrySink(str(tmp_path / "telemetry.jsonl"))
        cache = ResultCache(str(tmp_path / "b"))
        executor = ParallelExecutor(n_workers=1, cache=cache, telemetry=sink)
        fresh = executor.run_units(units)
        hits = executor.run_units(units)
        sink.close()
        for runs in (fresh, hits):
            assert all(payloads_match(a, b) for a, b in zip(reference, runs))


# ------------------------------------------------------------ event lifecycle
class TestEventLifecycle:
    def test_every_unit_gets_queued_and_one_terminal_event(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = TelemetrySink(path)
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelExecutor(n_workers=1, cache=cache, telemetry=sink)
        units = quick_units()
        executor.run_units(units)
        executor.run_units(units)
        sink.close()

        events = load_events(path)
        assert all(event["kind"] in EVENT_KINDS for event in events)
        kinds = [event["kind"] for event in events]
        assert kinds.count("queued") == 4
        assert kinds.count("exec-start") == 2
        assert kinds.count("exec-done") == 2
        assert kinds.count("cache-hit") == 2
        done = [event for event in events if event["kind"] == "exec-done"]
        for event in done:
            assert event["wall_s"] > 0
            assert event["worker"] == os.getpid()
            assert event["key"] == quick_units()[event["repetition"]].key()
            # The full pipeline is phased, parent-side serialization included.
            assert {"setup", "measured-run", "serialize"} <= set(event["phases"])

    def test_pack_hits_are_distinguished_from_loose_hits(self, tmp_path):
        from repro.store import pack_result_cache

        units = quick_units()
        loose_dir = str(tmp_path / "loose")
        ParallelExecutor(n_workers=1, cache=ResultCache(loose_dir)).run_units(units)
        pack_path = str(tmp_path / "campaign.frpack")
        pack_result_cache(loose_dir, pack_path)

        sink = TelemetrySink()
        cache = ResultCache(cache_dir=None, pack_paths=(pack_path,))
        ParallelExecutor(n_workers=1, cache=cache, telemetry=sink).run_units(units)
        assert sink.counts.get("pack-hit") == 2
        assert "cache-hit" not in sink.counts
        assert cache.stats.pack_hits == 2
        assert cache.stats.blocks_read > 0

    def test_failed_unit_emits_terminal_event_then_raises(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = TelemetrySink(path)
        executor = ParallelExecutor(n_workers=1, telemetry=sink)
        bad = quick_units()[:1]
        bad[0].fs_type = "no-such-fs"
        with pytest.raises(Exception):
            executor.run_units(bad)
        sink.close()
        events = load_events(path)
        assert [event["kind"] for event in events] == ["queued", "failed"]
        assert "no-such-fs" in events[1]["error"]

    def test_event_ring_is_bounded_but_jsonl_and_counts_are_complete(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = TelemetrySink(path, capacity=4)
        for index in range(10):
            sink.emit(TelemetryEvent(kind="queued", repetition=index))
        sink.close()
        assert len(sink.events) == 4
        assert sink.events[0].repetition == 6  # oldest evicted
        assert sink.total_events == 10
        assert sink.counts == {"queued": 10}
        assert len(load_events(path)) == 10

    def test_sink_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TelemetrySink(capacity=0)

    def test_event_to_dict_omits_empty_fields(self):
        event = TelemetryEvent(kind="queued", group="g", fs="ext4")
        out = event.to_dict()
        for absent in ("key", "error", "phases", "wall_s", "worker"):
            assert absent not in out
        full = TelemetryEvent(
            kind="exec-done", key="k", wall_s=1.5, worker=7, phases={"setup": 1.0}
        ).to_dict()
        assert full["key"] == "k" and full["worker"] == 7


# ------------------------------------------------------------- phase profiler
class TestPhaseProfiler:
    def test_disabled_profiler_is_inert(self):
        from repro.obs import profile

        assert profile.active() is None
        with profile.phase("anything"):
            pass
        assert profile.active() is None

    def test_nested_brackets_account_self_time(self):
        from repro.obs import profile

        profiler = profile.enable()
        try:
            with profile.phase("outer"):
                with profile.phase("inner"):
                    sum(range(20000))
        finally:
            profile.disable()
        totals = profiler.totals()
        assert set(totals) == {"outer", "inner"}
        assert profiler.calls() == {"outer": 1, "inner": 1}
        # Self time, not inclusive time: outer excludes inner's elapsed.
        assert totals["outer"] >= 0.0
        assert totals["inner"] > 0.0

    def test_merge_accumulates(self):
        profiler = PhaseProfiler()
        profiler.merge({"setup": 1.0}, calls={"setup": 2})
        profiler.merge({"setup": 0.5, "warmup": 0.25})
        assert profiler.totals() == {"setup": 1.5, "warmup": 0.25}
        # A merge without counts charges one call per phase present.
        assert profiler.calls() == {"setup": 3, "warmup": 1}

    def test_top_phases_orders_by_self_time(self):
        phases = {"a": 1.0, "b": 3.0, "c": 2.0, "d": 0.5}
        assert top_phases(phases, top=3) == [("b", 3.0), ("c", 2.0), ("a", 1.0)]

    def test_hotspot_report_lists_shares(self):
        text = hotspot_report({"setup": 3.0, "measured-run": 1.0}, title="stages")
        assert text.startswith("stages")
        assert "75.0%" in text and "25.0%" in text
        assert "total" in text

    def test_hotspot_names_top3_phases_for_ssd_ftl_steady_cell(self):
        """The acceptance cell: a repetition on the steady-state FTL SSD."""
        from dataclasses import replace

        unit = quick_units()[0]
        unit.testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl-steady")
        run, timing = timed_execute(unit)
        ranked = top_phases(timing.phases, top=3)
        assert len(ranked) == 3
        assert all(name in timing.phases for name, _ in ranked)
        text = hotspot_report(timing.phases, timing.calls, top=3)
        for name, _ in ranked:
            assert name in text


# ------------------------------------------------------------- live progress
class TestProgressReporter:
    def test_cell_lines_compose_with_unit_hook(self, tmp_path):
        from repro.core.experiment import Experiment, ParameterGrid

        lines = []
        sink = TelemetrySink(str(tmp_path / "telemetry.jsonl"))
        experiment = Experiment(
            grid=ParameterGrid.of(fs=("ext2",), workload=("random-read-cached",)),
            config=BenchmarkConfig(
                duration_s=0.5, repetitions=2, warmup_mode=WarmupMode.NONE
            ),
            testbed=scaled_testbed(0.0625),
            telemetry=sink,
        )
        reporter = ProgressReporter(
            total_units=2, total_cells=1, sink=sink, emit=lines.append
        )
        experiment.run(on_unit=reporter.unit_done, on_cell=reporter.cell_done)
        sink.close()
        assert reporter.units_done == 2
        assert len(lines) == 1
        assert lines[0].startswith("[1/1] random-read-cached@ext2:")
        assert "units 2/2" in lines[0]
        # With a sink the utilization/ETA figures come from exec-done events.
        assert sink.exec_wall_s > 0
        assert "util" in lines[0] and "eta" in lines[0]

    def test_status_without_sink_uses_record_wall(self):
        reporter = ProgressReporter(total_units=4, total_cells=2, emit=lambda _: None)
        reporter.unit_done(None, None, cached=True)
        reporter.unit_done(None, None, cached=False)
        reporter.record_wall(0.5)
        status = reporter.status()
        assert "units 2/4" in status
        assert "hits 1 (50%)" in status
        assert "util" in status and "eta" in status


# ---------------------------------------------------- callbacks + telemetry
class TestCallbackOrdering:
    def test_terminal_event_precedes_on_unit_and_on_cell(self, tmp_path):
        from repro.core.experiment import Experiment, ParameterGrid

        sink = TelemetrySink()
        experiment = Experiment(
            grid=ParameterGrid.of(fs=("ext2",), workload=("random-read-cached",)),
            config=BenchmarkConfig(
                duration_s=0.5, repetitions=2, warmup_mode=WarmupMode.NONE
            ),
            testbed=scaled_testbed(0.0625),
            telemetry=sink,
        )
        order = []

        def on_unit(unit, run, cached):
            # By the time the callback fires, this unit's terminal event is
            # already in the sink.
            settled = sink.counts.get("exec-done", 0) + sink.counts.get(
                "cache-hit", 0
            ) + sink.counts.get("pack-hit", 0)
            order.append(("unit", unit.repetition, settled))

        def on_cell(cell, repetitions):
            order.append(("cell", cell.label, len(repetitions)))

        experiment.run(on_unit=on_unit, on_cell=on_cell)
        assert [kind for kind, *_ in order] == ["unit", "unit", "cell"]
        # settled-event count at callback time covers the unit itself:
        assert [entry[2] for entry in order[:2]] == [1, 2]
        assert order[2] == ("cell", "random-read-cached@ext2", 2)

    def test_failed_unit_fires_no_callbacks_but_is_logged(self):
        sink = TelemetrySink()
        executor = ParallelExecutor(n_workers=1, telemetry=sink)
        bad = quick_units()[:1]
        bad[0].fs_type = "no-such-fs"
        seen = []
        with pytest.raises(Exception):
            executor.run_units(bad, on_result=lambda *args: seen.append(args))
        assert seen == []
        assert sink.counts.get("failed") == 1


# ------------------------------------------------------------------ reporting
class TestRenderReport:
    def run_campaign(self, tmp_path) -> str:
        path = str(tmp_path / "telemetry.jsonl")
        sink = TelemetrySink(path)
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelExecutor(n_workers=1, cache=cache, telemetry=sink)
        units = quick_units()
        executor.run_units(units)
        executor.run_units(units)
        sink.close()
        return path

    def test_report_renders_stage_breakdown_and_cache_rate(self, tmp_path):
        path = self.run_campaign(tmp_path)
        text = render_report(load_events(path))
        assert "campaign telemetry report" in text
        assert "4 queued, 2 executed, 2 cache hits, 0 failed" in text
        assert "cache efficiency: 2/4 (50%) -- 2 loose, 0 pack" in text
        assert "stage breakdown (wall-clock self time)" in text
        for phase in ("setup", "measured-run", "serialize"):
            assert phase in text
        assert "slowest cells" in text
        assert "postmark@ext4" in text
        assert "worker utilization" in text

    def test_report_accepts_live_sink_dicts(self):
        sink = TelemetrySink()
        ParallelExecutor(n_workers=1, telemetry=sink).run_units(quick_units(1))
        text = render_report(events_to_dicts(sink))
        assert "1 queued, 1 executed" in text

    def test_report_lists_failures(self):
        events = [
            {"kind": "queued", "group": "g", "t_s": 0.0},
            {"kind": "failed", "group": "g", "repetition": 0, "error": "boom", "t_s": 0.1},
        ]
        text = render_report(events)
        assert "failures" in text
        assert "boom" in text


# ------------------------------------------------------------ bench json/diff
class TestBenchJson:
    def test_normalized_round_trip(self, tmp_path):
        stats = {
            "test_bench_a": BenchStats(
                mean=1.0, min=0.9, max=1.1, stddev=0.05, median=1.0, rounds=3
            )
        }
        path = str(tmp_path / "bench.json")
        dump_bench_json(stats, path)
        assert load_bench_json(path) == stats
        document = json.load(open(path))
        assert document["schema"] == "fsbench-bench/1"
        assert normalize(document) == stats

    def test_loads_committed_raw_baselines(self):
        for name in ("BENCH_PR6.json", "BENCH_PR7.json", "BENCH_PR9.json"):
            stats = load_bench_json(os.path.join(REPO_ROOT, name))
            assert stats, name
            for bench in stats.values():
                assert bench.mean > 0
                assert bench.rounds >= 1

    def test_prefers_embedded_normalized_section(self, tmp_path):
        document = {
            "benchmarks": [
                {"name": "raw_one", "stats": {"mean": 9.0, "min": 9.0, "max": 9.0,
                                             "stddev": 0.0, "median": 9.0, "rounds": 1}}
            ],
            "normalized": {
                "schema": "fsbench-bench/1",
                "benchmarks": {"norm_one": {"mean": 1.0, "min": 1.0, "max": 1.0,
                                            "stddev": 0.0, "median": 1.0, "rounds": 1}},
            },
        }
        path = str(tmp_path / "bench.json")
        json.dump(document, open(path, "w"))
        assert list(load_bench_json(path)) == ["norm_one"]

    def test_rejects_non_bench_documents(self, tmp_path):
        path = str(tmp_path / "bad.json")
        json.dump({"something": 1}, open(path, "w"))
        with pytest.raises(ValueError):
            load_bench_json(path)

    def test_conftest_hook_embeds_normalized_shape(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_conftest", os.path.join(REPO_ROOT, "benchmarks", "conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        output = {
            "benchmarks": [
                {"name": "b", "stats": {"mean": 2.0, "min": 2.0, "max": 2.0,
                                        "stddev": 0.0, "median": 2.0, "rounds": 1}}
            ]
        }
        module.pytest_benchmark_update_json(None, None, output)
        assert output["normalized"]["schema"] == "fsbench-bench/1"
        assert normalize(output["normalized"]) == normalize(output)


def _stats(mean: float) -> BenchStats:
    return BenchStats(mean=mean, min=mean, max=mean, stddev=0.0, median=mean, rounds=1)


class TestBenchDiff:
    def test_verdicts_and_exit_code(self):
        old = {"a": _stats(1.0), "b": _stats(1.0), "c": _stats(1.0), "gone": _stats(1.0)}
        new = {"a": _stats(2.0), "b": _stats(0.4), "c": _stats(1.1), "added": _stats(1.0)}
        diff = diff_benchmarks(old, new, threshold=0.5)
        verdicts = {delta.name: delta.verdict for delta in diff.deltas}
        assert verdicts == {"a": "REGRESSED", "b": "improved", "c": "ok"}
        assert diff.added == ["added"]
        assert diff.removed == ["gone"]
        assert diff.exit_code == 1
        text = diff.render()
        assert "REGRESSED" in text
        assert "+ added (new benchmark, not gated)" in text
        assert "- gone (no longer measured)" in text
        assert "1 regression(s) beyond threshold" in text

    def test_no_shared_benchmarks_is_not_a_regression(self):
        diff = diff_benchmarks({"a": _stats(1.0)}, {"b": _stats(1.0)})
        assert diff.exit_code == 0
        assert "no benchmarks in common" in diff.render()

    def test_zero_baseline_counts_as_regression(self):
        diff = diff_benchmarks({"a": _stats(0.0)}, {"a": _stats(1.0)})
        assert diff.deltas[0].ratio == float("inf")
        assert diff.exit_code == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            diff_benchmarks({}, {}, threshold=-0.1)


# ------------------------------------------------------------------ CLI verbs
class TestCli:
    def test_run_with_telemetry_then_report(self, tmp_path, capsys):
        telemetry = str(tmp_path / "telemetry.jsonl")
        status = main(
            [
                "run",
                "--axis", "fs=ext2",
                "--axis", "workload=random-read-cached",
                "--axis", "duration_s=0.5",
                "--axis", "repetitions=2",
                "--axis", "warmup_mode=none",
                "--scaled-testbed", "0.0625",
                "--telemetry", telemetry,
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "telemetry events ->" in out
        events = load_events(telemetry)
        assert {event["kind"] for event in events} == {
            "queued", "exec-start", "exec-done"
        }

        status = main(["report", telemetry])
        out = capsys.readouterr().out
        assert status == 0
        assert "campaign telemetry report" in out
        assert "stage breakdown" in out

    def test_report_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_diff_on_committed_baselines(self, capsys):
        # PR7 and PR9 measure disjoint benchmarks: reported, never gated.
        status = main(
            [
                "bench-diff",
                os.path.join(REPO_ROOT, "BENCH_PR7.json"),
                os.path.join(REPO_ROOT, "BENCH_PR9.json"),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "no benchmarks in common" in out
        assert "no regressions beyond threshold" in out

    def test_bench_diff_detects_regressions(self, tmp_path, capsys):
        old = str(tmp_path / "old.json")
        new = str(tmp_path / "new.json")
        dump_bench_json({"bench": _stats(1.0)}, old)
        dump_bench_json({"bench": _stats(3.0)}, new)
        assert main(["bench-diff", old, new]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A generous enough threshold passes the same pair.
        assert main(["bench-diff", old, new, "--threshold", "4.0"]) == 0
        capsys.readouterr()
        # --warn-only reports but exits 0.
        assert main(["bench-diff", old, new, "--warn-only"]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_diff_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert main(["bench-diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 2
        assert "error" in capsys.readouterr().err
