"""Tests for readahead policies and cluster reads."""

import pytest

from repro.storage.readahead import (
    AGGRESSIVE_READAHEAD,
    DEFAULT_READAHEAD,
    NO_READAHEAD,
    ReadaheadPolicy,
    ReadaheadState,
    cluster_range,
)


class TestReadaheadPolicy:
    def test_default_policy_valid(self):
        DEFAULT_READAHEAD.validate()
        AGGRESSIVE_READAHEAD.validate()
        NO_READAHEAD.validate()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ReadaheadPolicy(initial_window_pages=0).validate()
        with pytest.raises(ValueError):
            ReadaheadPolicy(initial_window_pages=8, max_window_pages=4).validate()
        with pytest.raises(ValueError):
            ReadaheadPolicy(sequential_threshold=0).validate()


class TestSequentialDetection:
    def test_disabled_policy_never_prefetches(self):
        state = ReadaheadState(NO_READAHEAD)
        for page in range(10):
            assert state.advise(page, 1, 1000) == (0, 0)

    def test_random_access_never_prefetches(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        offsets = [50, 3, 700, 20, 999, 123, 456]
        results = [state.advise(page, 1, 2000) for page in offsets]
        assert all(result == (0, 0) for result in results)

    def test_sequential_stream_triggers_readahead(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        results = [state.advise(page, 1, 10_000) for page in range(10)]
        assert any(count > 0 for _, count in results)

    def test_window_grows_exponentially_up_to_max(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        windows = []
        for page in range(0, 200, 2):
            state.advise(page, 2, 100_000)
            windows.append(state.window_pages)
        assert max(windows) == DEFAULT_READAHEAD.max_window_pages
        assert windows[-1] == DEFAULT_READAHEAD.max_window_pages

    def test_readahead_clamped_at_end_of_file(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        file_pages = 10
        last = (0, 0)
        for page in range(file_pages):
            last = state.advise(page, 1, file_pages)
        start, count = last
        assert start + count <= file_pages

    def test_seek_resets_stream(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        for page in range(8):
            state.advise(page, 1, 10_000)
        assert state.window_pages > 0
        state.advise(5000, 1, 10_000)  # a seek
        assert state.window_pages == 0

    def test_explicit_reset(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        for page in range(8):
            state.advise(page, 1, 10_000)
        state.reset()
        assert state.window_pages == 0
        assert state.sequential_streak == 0

    def test_invalid_page_count_rejected(self):
        state = ReadaheadState(DEFAULT_READAHEAD)
        with pytest.raises(ValueError):
            state.advise(0, 0, 100)

    def test_aggressive_policy_prefetches_sooner(self):
        default_state = ReadaheadState(DEFAULT_READAHEAD)
        aggressive_state = ReadaheadState(AGGRESSIVE_READAHEAD)
        default_first = next(
            (i for i in range(10) if default_state.advise(i, 1, 10_000)[1] > 0), None
        )
        aggressive_first = next(
            (i for i in range(10) if aggressive_state.advise(i, 1, 10_000)[1] > 0), None
        )
        assert aggressive_first is not None
        assert default_first is None or aggressive_first <= default_first


class TestClusterRange:
    def test_cluster_aligned(self):
        assert cluster_range(5, 4, 100) == (4, 4)
        assert cluster_range(0, 4, 100) == (0, 4)
        assert cluster_range(7, 4, 100) == (4, 4)

    def test_cluster_clamped_at_eof(self):
        assert cluster_range(9, 4, 10) == (8, 2)

    def test_cluster_of_one_page(self):
        assert cluster_range(3, 1, 10) == (3, 1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            cluster_range(0, 0, 10)
        with pytest.raises(ValueError):
            cluster_range(10, 4, 10)
        with pytest.raises(ValueError):
            cluster_range(-1, 4, 10)
