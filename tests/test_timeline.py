"""Tests for the interval throughput series and histogram timelines."""

import pytest

from repro.core.histogram import bucket_of
from repro.core.timeline import HistogramTimeline, IntervalSeries


class TestIntervalSeries:
    def test_records_land_in_the_right_interval(self):
        series = IntervalSeries(interval_s=10.0)
        series.record(5e9, 1000.0, bytes_moved=4096)
        series.record(15e9, 1000.0, bytes_moved=4096)
        series.record(16e9, 1000.0, bytes_moved=4096)
        samples = series.samples()
        assert samples[0].operations == 1
        assert samples[1].operations == 2

    def test_throughput_per_interval(self):
        series = IntervalSeries(interval_s=10.0)
        for i in range(100):
            series.record(i * 1e8, 500.0)  # all within the first 10 s
        assert series.throughputs()[0] == pytest.approx(10.0)

    def test_origin_offsets_interval_zero(self):
        series = IntervalSeries(interval_s=10.0, origin_ns=100e9)
        series.record(105e9, 1.0)
        assert len(series) == 1
        assert series.samples()[0].start_s == pytest.approx(100.0)

    def test_gaps_create_empty_intervals(self):
        series = IntervalSeries(interval_s=1.0)
        series.record(0.5e9, 1.0)
        series.record(5.5e9, 1.0)
        assert len(series) == 6
        assert series.throughputs()[2] == 0.0

    def test_bandwidth_and_latency_per_interval(self):
        series = IntervalSeries(interval_s=1.0)
        series.record(0.1e9, 2000.0, bytes_moved=1024 * 1024)
        sample = series.samples()[0]
        assert sample.bandwidth_mb_s == pytest.approx(1.0)
        assert sample.mean_latency_ns == 2000.0

    def test_spread_quantifies_warmup(self):
        series = IntervalSeries(interval_s=1.0)
        # 10 ops in the first second, 100 in the second: spread 10x.
        for i in range(10):
            series.record(0.05e9 * (i + 1), 1.0)
        for i in range(100):
            series.record(1e9 + 0.005e9 * (i + 1), 1.0)
        assert series.spread() == pytest.approx(10.0)

    def test_spread_of_flat_series_is_one(self):
        series = IntervalSeries(interval_s=1.0)
        for second in range(5):
            for i in range(10):
                series.record(second * 1e9 + i * 1e7 + 1, 1.0)
        assert series.spread() == pytest.approx(1.0)

    def test_tail(self):
        series = IntervalSeries(interval_s=1.0)
        for second in range(10):
            series.record(second * 1e9 + 1, 1.0)
        assert len(series.tail(3)) == 3
        with pytest.raises(ValueError):
            series.tail(0)

    def test_total_operations(self):
        series = IntervalSeries(interval_s=1.0)
        for i in range(25):
            series.record(i * 1e8, 1.0)
        assert series.total_operations() == 25

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSeries(interval_s=0)

    def test_throughput_series_pairs(self):
        series = IntervalSeries(interval_s=2.0)
        series.record(1e9, 1.0)
        pairs = series.throughput_series()
        assert pairs[0][0] == pytest.approx(2.0)
        assert pairs[0][1] == pytest.approx(0.5)


class TestHistogramTimeline:
    def test_each_interval_gets_its_own_histogram(self):
        timeline = HistogramTimeline(interval_s=10.0)
        timeline.record(1e9, 4000.0)
        timeline.record(11e9, 8_000_000.0)
        assert len(timeline) == 2
        assert timeline.histogram_at(0).total == 1
        assert timeline.histogram_at(1).total == 1

    def test_surface_rows_are_percentages(self):
        timeline = HistogramTimeline(interval_s=1.0)
        for i in range(9):
            timeline.record(0.1e9 * (i + 1), 4000.0)
        surface = timeline.surface()
        assert len(surface) == 1
        assert sum(surface[0]) == pytest.approx(100.0)

    def test_figure4_style_migration(self):
        """Disk peak early, memory peak late; bi-modal in the middle."""
        timeline = HistogramTimeline(interval_s=10.0)
        # Interval 0: all disk; interval 1: half and half; interval 2: all memory.
        for i in range(100):
            timeline.record(5e9, 8_000_000.0)
        for i in range(50):
            timeline.record(15e9, 8_000_000.0)
            timeline.record(15e9, 4_000.0)
        for i in range(100):
            timeline.record(25e9, 4_000.0)
        modes = timeline.modes_over_time()
        assert bucket_of(8_000_000.0) in modes[0]
        assert len(modes[1]) == 2
        assert modes[2] == [bucket_of(4_000.0)]
        assert 0.0 < timeline.bimodal_fraction() < 1.0

    def test_merged_equals_sum_of_intervals(self):
        timeline = HistogramTimeline(interval_s=1.0)
        for i in range(30):
            timeline.record(i * 2e8, 1000.0 * (i + 1))
        merged = timeline.merged()
        assert merged.total == 30

    def test_interval_times(self):
        timeline = HistogramTimeline(interval_s=10.0)
        timeline.record(25e9, 1.0)
        assert timeline.interval_times_s() == [10.0, 20.0, 30.0]

    def test_empty_timeline_bimodal_fraction_zero(self):
        assert HistogramTimeline().bimodal_fraction() == 0.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            HistogramTimeline(interval_s=-1.0)
