"""Tests for log2-bucket latency histograms."""

import pytest

from repro.core.histogram import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    bucket_label,
    bucket_of,
    from_latencies,
)


class TestBucketing:
    def test_bucket_of_powers_of_two(self):
        assert bucket_of(1) == 0
        assert bucket_of(2) == 1
        assert bucket_of(1024) == 10
        assert bucket_of(1023) == 9

    def test_sub_nanosecond_clamped_to_zero(self):
        assert bucket_of(0.25) == 0

    def test_bucket_labels(self):
        assert bucket_label(4) == "16ns"
        assert bucket_label(12) == "4us"
        assert bucket_label(24) == "17ms"
        assert bucket_label(31).endswith("s")


class TestHistogramFilling:
    def test_add_and_totals(self):
        histogram = LatencyHistogram()
        histogram.add(4_000.0)
        histogram.add(5_000.0)
        assert histogram.total == 2
        assert histogram.mean_ns() == pytest.approx(4_500.0)
        assert histogram.min_ns == 4_000.0
        assert histogram.max_ns == 5_000.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().add(-1.0)

    def test_values_beyond_last_bucket_clamped(self):
        histogram = LatencyHistogram(buckets=8)
        histogram.add(10 ** 12)
        assert histogram.counts[7] == 1

    def test_add_many_and_from_latencies(self):
        histogram = from_latencies([100.0, 200.0, 400.0])
        assert histogram.total == 3

    def test_empty_histogram_properties(self):
        histogram = LatencyHistogram()
        assert histogram.is_empty
        assert histogram.mean_ns() == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.percentages() == [0.0] * DEFAULT_BUCKETS
        assert histogram.modes() == []
        assert histogram.nonzero_range() == (0, 0)


class TestHistogramQueries:
    def test_percentages_sum_to_100(self):
        histogram = from_latencies([2 ** i for i in range(4, 20)])
        assert sum(histogram.percentages()) == pytest.approx(100.0)

    def test_percentile_monotonic(self):
        histogram = from_latencies([100.0] * 50 + [1_000_000.0] * 50)
        p25 = histogram.percentile(25)
        p75 = histogram.percentile(75)
        assert p25 < p75
        assert histogram.median_ns() <= p75

    def test_percentile_bounds_check(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_merge_combines_counts(self):
        a = from_latencies([100.0] * 10)
        b = from_latencies([1_000_000.0] * 30)
        merged = a.merge(b)
        assert merged.total == 40
        assert merged.min_ns == 100.0
        assert merged.max_ns == 1_000_000.0
        # Merging must not mutate the inputs.
        assert a.total == 10 and b.total == 30

    def test_span_orders_of_magnitude(self):
        histogram = from_latencies([1_000.0, 1_000_000.0])
        assert histogram.span_orders_of_magnitude() == pytest.approx(3.0)

    def test_nonzero_range(self):
        histogram = from_latencies([5_000.0, 16_000_000.0])
        first, last = histogram.nonzero_range()
        assert first == bucket_of(5_000.0)
        assert last == bucket_of(16_000_000.0)


class TestModes:
    def test_single_peak(self):
        histogram = from_latencies([4_000.0 + i for i in range(100)])
        assert len(histogram.modes()) == 1
        assert not histogram.is_bimodal()

    def test_two_well_separated_peaks(self):
        # ~4 us cache hits and ~8 ms disk reads, the Figure 3(b) shape.
        latencies = [4_000.0] * 500 + [8_000_000.0] * 500
        histogram = from_latencies(latencies)
        modes = histogram.modes()
        assert len(modes) == 2
        assert histogram.is_bimodal()
        assert bucket_of(4_000.0) in modes
        assert bucket_of(8_000_000.0) in modes

    def test_small_peak_below_threshold_ignored(self):
        latencies = [4_000.0] * 990 + [8_000_000.0] * 10
        histogram = from_latencies(latencies)
        assert len(histogram.modes(min_fraction=0.05)) == 1

    def test_adjacent_buckets_collapsed_to_one_peak(self):
        latencies = [4_000.0] * 500 + [7_000.0] * 400
        histogram = from_latencies(latencies)
        assert len(histogram.modes()) == 1

    def test_invalid_min_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram().modes(min_fraction=0.0)


class TestRendering:
    def test_ascii_contains_bars_and_percentages(self):
        histogram = from_latencies([4_000.0] * 90 + [8_000_000.0] * 10)
        text = histogram.to_ascii(width=20)
        assert "#" in text
        assert "%" in text
        assert "4us" in text

    def test_repr_mentions_sample_count(self):
        assert "n=3" in repr(from_latencies([1.0, 2.0, 3.0]))
