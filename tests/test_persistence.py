"""Tests for result persistence (JSON round-trips)."""

import io
import json

import pytest

from repro.core.persistence import (
    FORMAT_NAME,
    load_repetitions,
    load_sweep,
    repetition_set_from_dict,
    repetition_set_to_dict,
    run_result_from_dict,
    run_result_to_dict,
    save_repetitions,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.core.results import RepetitionSet, SweepResult
from repro.core.runner import BenchmarkConfig, BenchmarkRunner, EnvironmentNoise, WarmupMode
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload
from tests.test_results_and_runner import make_run

MiB = 1024 * 1024


def small_repetitions(n=3) -> RepetitionSet:
    repetitions = RepetitionSet(label="unit")
    for i in range(n):
        repetitions.add(make_run(100.0 + i, repetition=i, latencies=[1000.0 * (i + 1)] * 5))
    return repetitions


def small_sweep() -> SweepResult:
    sweep = SweepResult(parameter_name="file_size", unit="bytes")
    sweep.add(64.0, small_repetitions())
    sweep.add(128.0, small_repetitions())
    return sweep


class TestDictRoundTrips:
    def test_run_result_round_trip_preserves_scalars_and_histogram(self):
        original = make_run(123.0, repetition=2, latencies=[500.0, 900.0, 15_000.0])
        restored = run_result_from_dict(run_result_to_dict(original))
        assert restored.throughput_ops_s == original.throughput_ops_s
        assert restored.repetition == original.repetition
        assert restored.histogram.total == original.histogram.total
        assert restored.histogram.mean_ns() == pytest.approx(original.histogram.mean_ns())
        assert restored.mean_latency_ns == pytest.approx(original.mean_latency_ns)

    def test_repetition_set_round_trip_preserves_summary(self):
        original = small_repetitions()
        restored = repetition_set_from_dict(repetition_set_to_dict(original))
        assert restored.label == original.label
        assert restored.throughputs() == original.throughputs()
        assert restored.throughput_summary().mean == pytest.approx(
            original.throughput_summary().mean
        )

    def test_sweep_round_trip_preserves_analysis_inputs(self):
        original = small_sweep()
        restored = sweep_from_dict(sweep_to_dict(original))
        assert restored.parameters() == original.parameters()
        assert restored.mean_throughputs() == original.mean_throughputs()
        assert restored.fragility() == pytest.approx(original.fragility())


class TestFileRoundTrips:
    def test_save_and_load_repetitions_via_file_object(self):
        buffer = io.StringIO()
        save_repetitions(small_repetitions(), buffer)
        buffer.seek(0)
        document = json.loads(buffer.getvalue())
        assert document["format"] == FORMAT_NAME
        buffer.seek(0)
        restored = load_repetitions(buffer)
        assert len(restored) == 3

    def test_save_and_load_sweep_via_path(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        save_sweep(small_sweep(), path)
        restored = load_sweep(path)
        assert restored.parameters() == [64.0, 128.0]

    def test_wrong_kind_rejected(self):
        buffer = io.StringIO()
        save_sweep(small_sweep(), buffer)
        buffer.seek(0)
        with pytest.raises(ValueError):
            load_repetitions(buffer)

    def test_wrong_format_rejected(self):
        buffer = io.StringIO(json.dumps({"format": "something-else", "data": {}}))
        with pytest.raises(ValueError):
            load_sweep(buffer)

    def test_newer_version_rejected(self):
        buffer = io.StringIO(
            json.dumps({"format": FORMAT_NAME, "version": 999, "kind": "sweep", "data": {}})
        )
        with pytest.raises(ValueError):
            load_sweep(buffer)


class TestEndToEndPersistence:
    def test_real_benchmark_result_survives_a_round_trip(self, tmp_path):
        """A measured repetition set can be archived and re-analysed identically."""
        config = BenchmarkConfig(
            duration_s=0.5,
            repetitions=2,
            warmup_mode=WarmupMode.PREWARM,
            interval_s=0.25,
            histogram_interval_s=0.25,
            collect_raw_latencies=True,
            noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=scaled_testbed(1.0 / 16.0), config=config)
        measured = runner.run(random_read_workload(2 * MiB))

        path = str(tmp_path / "results.json")
        save_repetitions(measured, path)
        restored = load_repetitions(path)

        assert restored.throughputs() == measured.throughputs()
        original_run = measured.first()
        restored_run = restored.first()
        assert restored_run.operations == original_run.operations
        assert restored_run.timeline.throughputs() == original_run.timeline.throughputs()
        assert restored_run.histogram_timeline is not None
        assert len(restored_run.histogram_timeline) == len(original_run.histogram_timeline)
        assert restored_run.raw_latencies_ns == original_run.raw_latencies_ns
        assert restored_run.environment == original_run.environment
