"""End-to-end integration tests: the paper's phenomena on a shrunken machine.

Each test reproduces one of the case-study observations on a 1/16-scale
testbed, exercising the whole stack (workload engine -> VFS -> cache ->
file system -> device -> statistics) rather than any single module.
"""

import pytest

from repro.analysis.fragility import assess_sweep
from repro.analysis.regimes import Regime, classify_repetitions
from repro.analysis.transition import find_transition
from repro.core.results import SweepResult
from repro.core.runner import BenchmarkConfig, BenchmarkRunner, EnvironmentNoise, WarmupMode
from repro.fs.stack import build_stack
from repro.storage.cache import CachePolicy
from repro.storage.config import scaled_testbed
from repro.workloads.micro import create_delete_workload, random_read_workload
from repro.workloads.spec import WorkloadEngine

MiB = 1024 * 1024


@pytest.fixture(scope="module")
def testbed():
    return scaled_testbed(1.0 / 16.0)  # ~25.6 MiB page cache


def protocol(**overrides):
    values = dict(
        duration_s=1.0,
        repetitions=3,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.5,
        seed=17,
        noise=EnvironmentNoise(cache_noise_bytes=512 * 1024, cpu_noise_sigma=0.01),
    )
    values.update(overrides)
    return BenchmarkConfig(**values)


class TestFigure1Phenomenon:
    """The throughput cliff at the page-cache boundary (scaled down 16x)."""

    @pytest.fixture(scope="class")
    def sweep(self, testbed):
        sweep = SweepResult(parameter_name="file_size", unit="bytes")
        for size_mb in (8, 16, 24, 32, 64):
            runner = BenchmarkRunner("ext2", testbed=testbed, config=protocol())
            sweep.add(size_mb * MiB, runner.run(random_read_workload(size_mb * MiB)))
        return sweep

    def test_order_of_magnitude_cliff(self, sweep):
        means = dict(sweep.mean_throughputs())
        assert means[8 * MiB] > 10 * means[64 * MiB]

    def test_cliff_located_at_cache_size(self, sweep, testbed):
        transition = find_transition(sweep)
        assert transition is not None
        assert transition.parameter_low >= 16 * MiB
        assert transition.parameter_high <= 32 * MiB
        assert testbed.page_cache_bytes <= 32 * MiB

    def test_io_bound_runs_have_higher_relative_spread(self, sweep):
        rsd = dict(sweep.relative_stddevs())
        assert rsd[64 * MiB] >= rsd[8 * MiB]

    def test_fragility_report_flags_the_cliff(self, sweep):
        report = assess_sweep(sweep)
        assert any(w.kind == "performance cliff" for w in report.warnings)

    def test_regimes_labelled_correctly(self, sweep):
        assert classify_repetitions(sweep.repetitions_at(8 * MiB)) is Regime.MEMORY_BOUND
        assert classify_repetitions(sweep.repetitions_at(64 * MiB)) is Regime.IO_BOUND


class TestFigure2Phenomenon:
    """Different file systems warm the cache at different rates."""

    def test_xfs_warms_faster_than_ext2(self, testbed):
        file_size = testbed.page_cache_bytes

        def hit_ratio_after(fs_type, simulated_seconds):
            stack = build_stack(fs_type, testbed=testbed, seed=23)
            engine = WorkloadEngine(stack, random_read_workload(file_size), seed=23)
            engine.setup()
            engine.run(duration_s=simulated_seconds)
            return stack.cache.stats.hit_ratio

        assert hit_ratio_after("xfs", 10.0) > hit_ratio_after("ext2", 10.0)

    @pytest.mark.slow
    def test_all_filesystems_converge_to_memory_speed(self, testbed):
        file_size = int(testbed.page_cache_bytes * 0.9)
        finals = {}
        for fs_type in ("ext2", "ext3", "ext4", "xfs"):
            config = protocol(duration_s=45.0, repetitions=1, warmup_mode=WarmupMode.NONE,
                              interval_s=5.0, noise=EnvironmentNoise(enabled=False))
            runner = BenchmarkRunner(fs_type, testbed=testbed, config=config)
            run = runner.run_once(random_read_workload(file_size))
            finals[fs_type] = run.timeline.throughputs()[-1]
        values = list(finals.values())
        assert max(values) / min(values) < 1.6


class TestFigure3Phenomenon:
    """Latency distributions are uni-modal at the extremes, bi-modal in between."""

    def test_half_cached_file_is_bimodal(self, testbed):
        config = protocol(duration_s=0.0, max_ops=800, repetitions=1,
                          noise=EnvironmentNoise(enabled=False))
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(testbed.page_cache_bytes * 2))
        assert run.histogram.is_bimodal()
        assert run.histogram.span_orders_of_magnitude() >= 2.5

    def test_cached_file_is_unimodal_and_fast(self, testbed):
        config = protocol(duration_s=0.0, max_ops=800, repetitions=1,
                          noise=EnvironmentNoise(enabled=False))
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(4 * MiB))
        assert not run.histogram.is_bimodal()
        assert run.histogram.mean_ns() < 100_000


class TestMetadataAndJournaling:
    def test_ext2_metadata_throughput_exceeds_ext3(self, testbed):
        """Journaling costs ext3 on create/delete churn."""
        results = {}
        for fs_type in ("ext2", "ext3"):
            config = protocol(duration_s=2.0, repetitions=2, warmup_mode=WarmupMode.NONE,
                              noise=EnvironmentNoise(enabled=False))
            runner = BenchmarkRunner(fs_type, testbed=testbed, config=config)
            repetitions = runner.run(create_delete_workload(file_count=100, directories=5))
            results[fs_type] = repetitions.throughput_summary().mean
        assert results["ext2"] > results["ext3"]


class TestCachePolicyMatters:
    def test_eviction_policy_changes_measured_performance(self, testbed):
        """The same 'file system benchmark' number depends on the OS cache policy."""
        file_size = int(testbed.page_cache_bytes * 1.3)
        throughputs = {}
        for policy in (CachePolicy.LRU, CachePolicy.ARC):
            config = protocol(repetitions=2, noise=EnvironmentNoise(enabled=False))
            runner = BenchmarkRunner(
                "ext2", testbed=testbed.with_cache_policy(policy), config=config
            )
            repetitions = runner.run(random_read_workload(file_size))
            throughputs[policy] = repetitions.throughput_summary().mean
        assert len(set(round(v) for v in throughputs.values())) > 1


class TestStatisticalHonesty:
    def test_repetition_spread_is_reported_not_hidden(self, testbed):
        config = protocol(repetitions=4)
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        repetitions = runner.run(random_read_workload(int(testbed.page_cache_bytes * 1.05)))
        summary = repetitions.throughput_summary()
        assert summary.n == 4
        assert summary.ci95_low < summary.mean < summary.ci95_high
        # Near the boundary the spread must be visible in the summary.
        assert summary.relative_stddev_percent > 0
