"""Tests for regime labelling, transition analysis, fragility and comparison."""

import pytest

from repro.analysis.comparison import compare_repetition_sets, compare_sweeps
from repro.analysis.fragility import assess_repetitions, assess_sweep
from repro.analysis.regimes import (
    Regime,
    classify_repetitions,
    classify_run,
    classify_sweep,
    per_regime_summary,
    regime_ranges,
)
from repro.analysis.transition import (
    TransitionRegion,
    expected_transition_bytes,
    find_transition,
    refine_transition,
)
from repro.core.results import RepetitionSet, SweepResult
from tests.test_results_and_runner import make_run


def repetitions_at(throughput, hit_ratio, n=3, spread=0.01, latencies=None):
    repetitions = RepetitionSet(label=str(throughput))
    for i in range(n):
        repetitions.add(
            make_run(
                throughput * (1 + spread * i),
                repetition=i,
                hit_ratio=hit_ratio,
                latencies=latencies,
            )
        )
    return repetitions


def figure1_like_sweep():
    sweep = SweepResult(parameter_name="file_size", unit="MB")
    sweep.add(64, repetitions_at(9700.0, 1.0))
    sweep.add(256, repetitions_at(9650.0, 1.0))
    sweep.add(448, repetitions_at(1000.0, 0.9, spread=0.3))
    sweep.add(1024, repetitions_at(200.0, 0.4))
    return sweep


class TestRegimes:
    def test_classify_run_by_hit_ratio(self):
        assert classify_run(make_run(hit_ratio=1.0)) is Regime.MEMORY_BOUND
        assert classify_run(make_run(hit_ratio=0.8)) is Regime.TRANSITION
        assert classify_run(make_run(hit_ratio=0.3)) is Regime.IO_BOUND

    def test_classify_repetitions_majority(self):
        assert classify_repetitions(repetitions_at(9000.0, 1.0)) is Regime.MEMORY_BOUND

    def test_disagreeing_repetitions_are_transition(self):
        repetitions = RepetitionSet("mixed")
        repetitions.add(make_run(9000.0, repetition=0, hit_ratio=1.0))
        repetitions.add(make_run(300.0, repetition=1, hit_ratio=0.4))
        assert classify_repetitions(repetitions) is Regime.TRANSITION

    def test_classify_sweep_and_ranges(self):
        sweep = figure1_like_sweep()
        labels = classify_sweep(sweep)
        assert labels[64.0] is Regime.MEMORY_BOUND
        assert labels[1024.0] is Regime.IO_BOUND
        ranges = regime_ranges(sweep)
        assert ranges[0][0] is Regime.MEMORY_BOUND
        assert ranges[-1][0] is Regime.IO_BOUND

    def test_per_regime_summary(self):
        summary = per_regime_summary(figure1_like_sweep())
        assert summary[Regime.MEMORY_BOUND]["mean_ops_s"] > summary[Regime.IO_BOUND]["mean_ops_s"]

    def test_empty_repetitions_rejected(self):
        with pytest.raises(ValueError):
            classify_repetitions(RepetitionSet("empty"))

    def test_regime_descriptions(self):
        for regime in Regime:
            assert regime.description


class TestTransition:
    def test_find_transition_locates_the_cliff(self):
        region = find_transition(figure1_like_sweep())
        assert region is not None
        assert region.parameter_low == 256.0
        assert region.parameter_high == 448.0
        assert region.drop_factor > 5

    def test_no_transition_in_flat_sweep(self):
        sweep = SweepResult(parameter_name="x")
        for value in (1, 2, 3):
            sweep.add(value, repetitions_at(100.0, 1.0))
        assert find_transition(sweep) is None

    def test_invalid_min_drop_factor(self):
        with pytest.raises(ValueError):
            find_transition(figure1_like_sweep(), min_drop_factor=1.0)

    def test_refine_transition_narrows_the_region(self):
        # Synthetic step function at parameter 300.
        def measure(parameter):
            throughput = 9000.0 if parameter < 300 else 500.0
            return repetitions_at(throughput, 1.0 if parameter < 300 else 0.4)

        region = TransitionRegion(256.0, 448.0, 9000.0, 500.0)
        refined, measurements = refine_transition(region, measure, target_width=16.0)
        assert refined.width <= 16.0
        assert refined.parameter_low <= 300 <= refined.parameter_high
        assert measurements > 0

    def test_refine_respects_measurement_budget(self):
        def measure(parameter):
            return repetitions_at(9000.0 if parameter < 300 else 500.0, 1.0)

        region = TransitionRegion(0.0, 10000.0, 9000.0, 500.0)
        _, measurements = refine_transition(region, measure, target_width=0.001, max_measurements=5)
        assert measurements == 5

    def test_expected_transition_bytes(self):
        low, high = expected_transition_bytes(410 * 1024 * 1024)
        assert low < 410 * 1024 * 1024 < high
        with pytest.raises(ValueError):
            expected_transition_bytes(0)

    def test_transition_describe(self):
        region = TransitionRegion(100.0, 200.0, 1000.0, 100.0)
        text = region.describe("MB")
        assert "10.0x" in text and "MB" in text


class TestFragility:
    def test_clean_result_has_no_warnings(self):
        warnings = assess_repetitions(repetitions_at(9700.0, 1.0))
        assert warnings == []

    def test_high_rsd_flagged(self):
        repetitions = RepetitionSet("noisy")
        for i, throughput in enumerate([1000.0, 4000.0, 9000.0]):
            repetitions.add(make_run(throughput, repetition=i, hit_ratio=1.0))
        warnings = assess_repetitions(repetitions)
        assert any(w.kind == "run-to-run variation" and w.severity == "severe" for w in warnings)

    def test_regime_instability_flagged(self):
        repetitions = RepetitionSet("straddling")
        repetitions.add(make_run(9000.0, repetition=0, hit_ratio=1.0))
        repetitions.add(make_run(200.0, repetition=1, hit_ratio=0.4))
        warnings = assess_repetitions(repetitions)
        assert any(w.kind == "regime instability" for w in warnings)

    def test_bimodal_latency_flagged(self):
        bimodal = [4000.0] * 50 + [8_000_000.0] * 50
        warnings = assess_repetitions(repetitions_at(500.0, 0.8, latencies=bimodal))
        assert any(w.kind == "bi-modal latency" for w in warnings)

    def test_sweep_report_flags_cliff_and_dynamic_range(self):
        report = assess_sweep(figure1_like_sweep())
        assert not report.is_clean
        kinds = {w.kind for w in report.warnings}
        assert "performance cliff" in kinds
        assert "wide dynamic range" in kinds
        assert report.severe_count >= 1
        assert "SEVERE" in report.format()

    def test_clean_sweep_report(self):
        sweep = SweepResult(parameter_name="x")
        for value in (1, 2):
            sweep.add(value, repetitions_at(100.0, 1.0))
        report = assess_sweep(sweep)
        assert report.is_clean
        assert "No fragility indicators" in report.format()


class TestComparison:
    def test_overlapping_results_are_not_significant(self):
        a = repetitions_at(100.0, 1.0, spread=0.1)
        b = repetitions_at(102.0, 1.0, spread=0.1)
        verdict = compare_repetition_sets("ext2", a, "ext3", b)
        assert not verdict.significant
        assert verdict.winner is None
        assert "no demonstrated difference" in verdict.format()

    def test_clear_winner(self):
        a = repetitions_at(100.0, 1.0)
        b = repetitions_at(900.0, 1.0)
        verdict = compare_repetition_sets("ext2", a, "xfs", b)
        assert verdict.significant
        assert verdict.winner == "xfs"
        assert verdict.speedup > 5
        assert "faster" in verdict.format()

    def test_sweep_comparison_finds_crossover(self):
        sweep_a = SweepResult(parameter_name="size")
        sweep_b = SweepResult(parameter_name="size")
        # A wins at small sizes, B wins at large sizes.
        sweep_a.add(1, repetitions_at(1000.0, 1.0))
        sweep_b.add(1, repetitions_at(500.0, 1.0))
        sweep_a.add(2, repetitions_at(300.0, 0.5))
        sweep_b.add(2, repetitions_at(800.0, 0.5))
        comparison = compare_sweeps("A", sweep_a, "B", sweep_b)
        assert comparison.wins("A") == 1
        assert comparison.wins("B") == 1
        assert comparison.crossover_parameters() == [2.0]
        assert "single-number comparison would hide this" in comparison.summary()

    def test_sweep_comparison_only_common_points(self):
        sweep_a = SweepResult(parameter_name="size")
        sweep_b = SweepResult(parameter_name="size")
        sweep_a.add(1, repetitions_at(1000.0, 1.0))
        sweep_a.add(2, repetitions_at(900.0, 1.0))
        sweep_b.add(2, repetitions_at(700.0, 1.0))
        comparison = compare_sweeps("A", sweep_a, "B", sweep_b)
        assert comparison.parameters() == [2.0]
