"""Tests for the packed result store (repro.store).

Four layers of guarantees:

* the format round-trips bit-identically (fuzzed), dedups identical
  duplicates, and refuses conflicting or out-of-order records;
* integrity is total -- *every* single-byte flip is caught by ``verify``,
  and the read path raises (never returns wrong data) for damage in the
  header, the index, or a block, with block damage staying block-local;
* reads are block-granular: a point lookup on a multi-block pack
  decompresses exactly one block, an index-resolved miss none, and a prefix
  scan only the blocks the index cannot rule out;
* the campaign round-trip: pack a populated cache, shard, merge (byte-
  identical to the direct pack), rebuild the frame (byte-identical JSONL to
  a serial uncached run), and replay an experiment from the pack alone with
  zero executions -- plus the CLI verbs that expose all of it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import random

import pytest

from repro.cli import main
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.parallel import ResultCache
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.store import format as fmt
from repro.store.format import StoreConflictError, StoreCorruptionError, StoreError
from repro.store.merge import merge_packs
from repro.store.reader import PackReader, verify_pack
from repro.store.writer import PackWriter, pack_result_cache, write_pack
from repro.storage.config import scaled_testbed


def key_of(index: int) -> str:
    """A deterministic 64-hex cache-key stand-in, sorted by construction."""
    return f"{index:04x}" + hashlib.sha256(str(index).encode()).hexdigest()[:60]


def make_records(count: int, seed: int = 0, max_payload: int = 120):
    rng = random.Random(seed)
    return [
        (key_of(index), rng.randbytes(rng.randint(0, max_payload)))
        for index in range(count)
    ]


def file_sha(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def flipped(path: str, out: str, position: int, mask: int = 0x01) -> str:
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    data[position] ^= mask
    with open(out, "wb") as handle:
        handle.write(bytes(data))
    return out


# ------------------------------------------------------------------- format
class TestRoundTrip:
    def test_records_round_trip_bit_identically(self, tmp_path):
        records = make_records(40)
        records[7] = (records[7][0], b"")  # empty payloads are legal
        path = str(tmp_path / "a.frpack")
        summary = write_pack(path, records, block_records=6)
        assert summary.records == 40
        assert summary.blocks == 7
        with PackReader(path) as reader:
            assert len(reader) == 40
            assert list(reader) == records
            for key, payload in records:
                assert reader.get(key) == payload
        assert verify_pack(path).ok

    def test_empty_pack(self, tmp_path):
        path = str(tmp_path / "empty.frpack")
        summary = write_pack(path, [])
        assert summary.records == 0
        with PackReader(path) as reader:
            assert len(reader) == 0
            assert list(reader) == []
            assert reader.get(key_of(0)) is None
        assert verify_pack(path).ok

    def test_unsorted_input_is_sorted_by_default(self, tmp_path):
        records = make_records(10)
        path = str(tmp_path / "a.frpack")
        write_pack(path, list(reversed(records)))
        with PackReader(path) as reader:
            assert list(reader) == records

    def test_identical_duplicates_dedup(self, tmp_path):
        records = make_records(6)
        path = str(tmp_path / "a.frpack")
        summary = write_pack(path, records + [records[2]])
        assert summary.records == 6
        assert summary.duplicates == 1
        with PackReader(path) as reader:
            assert list(reader) == records

    def test_conflicting_duplicate_raises(self, tmp_path):
        key = key_of(1)
        with pytest.raises(StoreConflictError, match=key):
            write_pack(
                str(tmp_path / "a.frpack"), [(key, b"one"), (key, b"two")]
            )

    def test_descending_keys_rejected_without_sort(self, tmp_path):
        writer = PackWriter(str(tmp_path / "a.frpack"))
        writer.add(key_of(5), b"x")
        with pytest.raises(ValueError, match="ascending"):
            writer.add(key_of(4), b"y")
        writer.abort()

    def test_same_records_produce_byte_identical_packs(self, tmp_path):
        records = make_records(30, seed=3)
        a = str(tmp_path / "a.frpack")
        b = str(tmp_path / "b.frpack")
        write_pack(a, records, block_records=4)
        write_pack(b, list(reversed(records)), block_records=4)
        assert file_sha(a) == file_sha(b)

    def test_fuzzed_record_sets_round_trip(self, tmp_path):
        for seed in range(5):
            rng = random.Random(seed)
            records = make_records(rng.randint(0, 60), seed=seed, max_payload=400)
            path = str(tmp_path / f"fuzz{seed}.frpack")
            write_pack(
                path,
                records,
                level=rng.randint(0, 9),
                block_bytes=rng.choice([64, 512, 64 * 1024]),
            )
            with PackReader(path) as reader:
                assert list(reader) == records
                if records:
                    key, payload = records[rng.randrange(len(records))]
                    assert reader.get(key) == payload
            assert verify_pack(path).ok

    def test_writer_context_manager_aborts_on_error(self, tmp_path):
        path = str(tmp_path / "a.frpack")
        with pytest.raises(RuntimeError):
            with PackWriter(path) as writer:
                writer.add(key_of(0), b"x")
                raise RuntimeError("boom")
        assert not os.path.exists(path)
        assert os.listdir(str(tmp_path)) == []  # no temp litter either


# ---------------------------------------------------------------- integrity
@pytest.fixture
def small_pack(tmp_path):
    """A 4-block pack with known record placement (3 records per block)."""
    records = make_records(12, seed=7, max_payload=40)
    path = str(tmp_path / "small.frpack")
    write_pack(path, records, block_records=3)
    return path, records


def _layout(path):
    """(data_start, index_offset, index_len, entries) of a pack file."""
    with open(path, "rb") as handle:
        data = handle.read()
    _, data_start = fmt.decode_preamble(data)
    footer = data[len(data) - fmt.FOOTER_SIZE :]
    index_offset, index_len, _, _ = fmt.decode_footer(footer)
    entries, _ = fmt.decode_index(data[index_offset : index_offset + index_len])
    return data_start, index_offset, index_len, entries


class TestIntegrity:
    def test_every_single_byte_flip_is_caught_by_verify(self, small_pack, tmp_path):
        path, _ = small_pack
        with open(path, "rb") as handle:
            size = len(handle.read())
        bad = str(tmp_path / "bad.frpack")
        missed = [
            position
            for position in range(size)
            if verify_pack(flipped(path, bad, position)).ok
        ]
        assert missed == []

    def test_reads_never_return_wrong_data_under_any_flip(self, small_pack, tmp_path):
        # The companion guarantee: whatever the damage, a reader either
        # raises or returns the *correct* payload (a key whose stored bytes
        # were damaged may legitimately miss -- but never mis-answer).
        path, records = small_pack
        with open(path, "rb") as handle:
            size = len(handle.read())
        bad = str(tmp_path / "bad.frpack")
        for position in range(size):
            flipped(path, bad, position)
            try:
                with PackReader(bad) as reader:
                    for key, payload in records:
                        got = reader.get(key)
                        assert got is None or got == payload, (
                            f"flip at byte {position} returned wrong data"
                        )
            except StoreError:
                continue

    def test_header_flip_raises_on_open(self, small_pack, tmp_path):
        path, _ = small_pack
        header_json_at = len(fmt.MAGIC) + 4 + 2  # inside the header document
        bad = flipped(path, str(tmp_path / "bad.frpack"), header_json_at)
        with pytest.raises(StoreCorruptionError, match="header CRC"):
            PackReader(bad)
        report = verify_pack(bad)
        assert not report.ok
        assert any("header" in error for error in report.errors)

    def test_index_flip_raises_on_open(self, small_pack, tmp_path):
        path, _ = small_pack
        _, index_offset, _, _ = _layout(path)
        bad = flipped(path, str(tmp_path / "bad.frpack"), index_offset + 2)
        with pytest.raises(StoreCorruptionError, match="index CRC"):
            PackReader(bad)
        report = verify_pack(bad)
        assert not report.ok
        assert any("index" in error for error in report.errors)

    def test_block_flip_raises_on_access_and_stays_block_local(
        self, small_pack, tmp_path
    ):
        path, records = small_pack
        _, _, _, entries = _layout(path)
        damaged = 1  # flip a byte in the middle of block 1's compressed bytes
        position = entries[damaged].offset + entries[damaged].comp_len // 2
        bad = flipped(path, str(tmp_path / "bad.frpack"), position)
        report = verify_pack(bad)
        assert not report.ok
        assert any(f"block {damaged}" in error for error in report.errors)
        with PackReader(bad) as reader:  # opening is fine: damage is lazy
            with pytest.raises(StoreCorruptionError, match=f"block {damaged}"):
                reader.get(records[3][0])  # records 3..5 live in block 1
            # Other blocks are untouched and still fully readable.
            assert reader.get(records[0][0]) == records[0][1]
            assert reader.get(records[9][0]) == records[9][1]

    def test_fingerprint_flip_is_detected(self, small_pack, tmp_path):
        path, _ = small_pack
        with open(path, "rb") as handle:
            size = len(handle.read())
        fingerprint_at = size - fmt.FOOTER_SIZE + fmt.FOOTER_FINGERPRINTED
        report = verify_pack(flipped(path, str(tmp_path / "bad.frpack"), fingerprint_at))
        assert not report.ok
        assert any("fingerprint" in error for error in report.errors)

    def test_not_a_pack_and_truncation(self, small_pack, tmp_path):
        path, _ = small_pack
        junk = tmp_path / "junk.frpack"
        junk.write_bytes(b"this is not a pack at all, not even close")
        with pytest.raises(fmt.StoreFormatError):
            PackReader(str(junk))
        assert not verify_pack(str(junk)).ok
        with open(path, "rb") as handle:
            data = handle.read()
        cut = tmp_path / "cut.frpack"
        cut.write_bytes(data[:-10])
        with pytest.raises(StoreCorruptionError):
            PackReader(str(cut))
        assert not verify_pack(str(cut)).ok


# -------------------------------------------------------------- granularity
class TestBlockGranularity:
    def test_point_lookup_decompresses_exactly_one_block(self, small_pack):
        path, records = small_pack
        with PackReader(path) as reader:
            assert reader.n_blocks == 4
            assert reader.get(records[4][0]) == records[4][1]
            assert reader.blocks_read == 1
            assert reader.get(records[10][0]) == records[10][1]
            assert reader.blocks_read == 2
            # Re-reading the cached block costs nothing.
            assert reader.get(records[11][0]) == records[11][1]
            assert reader.blocks_read == 2

    def test_index_resolved_miss_decompresses_nothing(self, small_pack):
        path, records = small_pack
        with PackReader(path) as reader:
            assert reader.get("0" * 64) is None  # below the first key
            assert reader.get("f" * 64) is None  # above the last key
            assert reader.blocks_read == 0

    def test_prefix_scan_skips_untouched_blocks(self, tmp_path):
        records = sorted(
            (prefix + f"{index:02d}" + "0" * 55, f"{prefix}{index}".encode())
            for prefix in ("aaaaaaa", "bbbbbbb", "ccccccc")
            for index in range(4)
        )
        path = str(tmp_path / "prefixed.frpack")
        write_pack(path, records, block_records=4)
        with PackReader(path) as reader:
            assert reader.n_blocks == 3
            middle = [(k, v) for k, v in records if k.startswith("bbbbbbb")]
            assert list(reader.iter_prefix("bbbbbbb")) == middle
            assert reader.blocks_read == 1


# ----------------------------------------------------------------- campaign
def quick_config() -> BenchmarkConfig:
    return BenchmarkConfig(
        duration_s=0.3,
        repetitions=2,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
    )


GRID = {"fs": ("ext2", "ext4"), "workload": ("postmark",)}


def frame_lines(frame) -> list:
    buffer = io.StringIO()
    frame.to_jsonl(buffer)
    return sorted(buffer.getvalue().splitlines())


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One cached campaign run shared by the round-trip tests below."""
    root = tmp_path_factory.mktemp("campaign")
    cache_dir = str(root / "cache")
    experiment = Experiment(
        ParameterGrid(GRID),
        name="campaign",
        config=quick_config(),
        testbed=scaled_testbed(1.0 / 16.0),
        cache_dir=cache_dir,
    )
    result = experiment.run()
    return {"root": root, "cache_dir": cache_dir, "frame": result.frame}


class TestCampaignRoundTrip:
    def test_pack_shard_merge_and_frame_bit_identity(self, campaign):
        root = campaign["root"]
        direct = str(root / "direct.frpack")
        summary = pack_result_cache(campaign["cache_dir"], direct, block_records=2)
        assert summary.records == 4  # 2 fs x 2 repetitions
        assert summary.skipped == 0
        assert verify_pack(direct).ok

        # Shard the records three ways (round-robin, so the merge has to
        # interleave), then merge -- byte-identical to the direct pack.
        with PackReader(direct) as reader:
            records = list(reader)
        shards = []
        for shard_index in range(3):
            shard_path = str(root / f"shard{shard_index}.frpack")
            write_pack(shard_path, records[shard_index::3], block_records=2)
            shards.append(shard_path)
        merged = str(root / "merged.frpack")
        merge_summary = merge_packs(merged, shards, block_records=2)
        assert merge_summary.records == 4
        assert file_sha(merged) == file_sha(direct)

        # The frame rebuilt from the merged pack is byte-identical (as
        # sorted JSONL) to the frame of a fresh serial, uncached run.
        from repro.store.commands import frame_from_pack

        with PackReader(merged) as reader:
            packed_frame = frame_from_pack(reader, experiment="campaign")
        serial = Experiment(
            ParameterGrid(GRID),
            name="campaign",
            config=quick_config(),
            testbed=scaled_testbed(1.0 / 16.0),
        ).run()
        assert frame_lines(packed_frame) == frame_lines(serial.frame)

    def test_pack_warmed_cache_replays_with_zero_executions(
        self, campaign, monkeypatch
    ):
        root = campaign["root"]
        pack_path = str(root / "warm.frpack")
        pack_result_cache(campaign["cache_dir"], pack_path)

        def refuse(unit):
            raise AssertionError(f"executed {unit.group} despite the pack")

        monkeypatch.setattr("repro.core.parallel.execute_unit", refuse)
        fresh = Experiment(
            ParameterGrid(GRID),
            name="campaign",
            config=quick_config(),
            testbed=scaled_testbed(1.0 / 16.0),
            cache_dir=str(root / "fresh-cache"),
            pack_paths=(pack_path,),
        )
        replay = fresh.run()
        assert replay.cache_stats.hits == 4
        assert replay.cache_stats.misses == 0
        assert replay.cache_stats.stores == 0
        assert frame_lines(replay.frame) == frame_lines(campaign["frame"])

    def test_pack_only_cache_is_read_only(self, campaign):
        root = campaign["root"]
        pack_path = str(root / "readonly.frpack")
        pack_result_cache(campaign["cache_dir"], pack_path)
        cache = ResultCache(pack_paths=(pack_path,))
        with PackReader(pack_path) as reader:
            key = next(iter(reader))[0]
        run = cache.get(key)
        assert run is not None
        assert cache.stats.hits == 1
        cache.put(key, run)  # silently discarded: packs are immutable
        assert cache.stats.stores == 0
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_merge_conflict_is_fatal(self, tmp_path):
        key = key_of(0)
        a = str(tmp_path / "a.frpack")
        b = str(tmp_path / "b.frpack")
        write_pack(a, [(key, b"payload-one")])
        write_pack(b, [(key, b"payload-two")])
        with pytest.raises(StoreConflictError, match=key):
            merge_packs(str(tmp_path / "m.frpack"), [a, b])

    def test_corrupt_loose_entry_is_skipped_with_count(self, campaign, tmp_path):
        import shutil

        cache_dir = str(tmp_path / "cache-with-corruption")
        shutil.copytree(campaign["cache_dir"], cache_dir)
        bad_key = "00" + "9" * 62
        os.makedirs(os.path.join(cache_dir, "00"), exist_ok=True)
        with open(os.path.join(cache_dir, "00", f"{bad_key}.json"), "w") as handle:
            handle.write("{torn write")
        summary = pack_result_cache(cache_dir, str(tmp_path / "p.frpack"))
        assert summary.records == 4
        assert summary.skipped == 1
        assert summary.skipped_paths == [
            os.path.join(cache_dir, "00", f"{bad_key}.json")
        ]


# ---------------------------------------------------------------------- CLI
class TestStoreCli:
    def test_pack_verify_query_export_verbs(self, campaign, tmp_path, capsys):
        pack_path = str(tmp_path / "cli.frpack")
        assert (
            main(["results", "pack", "--cache-dir", campaign["cache_dir"], "--out", pack_path])
            == 0
        )
        out = capsys.readouterr().out
        assert "packed 4 records" in out

        assert main(["results", "verify", pack_path]) == 0
        assert "OK" in capsys.readouterr().out

        # query: rendered table on stdout, then an axis-filtered JSONL export
        assert main(["results", "query", pack_path]) == 0
        assert "postmark" in capsys.readouterr().out
        frame_path = str(tmp_path / "frame.jsonl")
        assert (
            main(
                [
                    "results",
                    "query",
                    pack_path,
                    "--where",
                    "fs=ext4",
                    "--experiment",
                    "campaign",
                    "--out",
                    frame_path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        rows = [json.loads(line) for line in open(frame_path)]
        assert rows and all(row["fs"] == "ext4" for row in rows)

        # export --runs is re-packable into a byte-identical artifact
        runs_path = str(tmp_path / "runs.jsonl")
        repacked = str(tmp_path / "repacked.frpack")
        assert main(["results", "export", pack_path, "--out", runs_path, "--runs"]) == 0
        assert main(["results", "pack", "--runs", runs_path, "--out", repacked]) == 0
        capsys.readouterr()
        assert file_sha(repacked) == file_sha(pack_path)

    def test_verify_exits_nonzero_on_corruption(self, campaign, tmp_path, capsys):
        pack_path = str(tmp_path / "v.frpack")
        pack_result_cache(campaign["cache_dir"], pack_path)
        bad = flipped(pack_path, str(tmp_path / "bad.frpack"), 60)
        assert main(["results", "verify", bad]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_merge_verb(self, campaign, tmp_path, capsys):
        direct = str(tmp_path / "direct.frpack")
        pack_result_cache(campaign["cache_dir"], direct)
        with PackReader(direct) as reader:
            records = list(reader)
        a = str(tmp_path / "a.frpack")
        b = str(tmp_path / "b.frpack")
        write_pack(a, records[:2])
        write_pack(b, records[2:])
        merged = str(tmp_path / "m.frpack")
        assert main(["results", "merge", a, b, "--out", merged]) == 0
        capsys.readouterr()
        assert file_sha(merged) == file_sha(direct)

    def test_usage_errors_are_clean(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.frpack")
        assert main(["results", "verify", missing]) == 1  # report, not traceback
        capsys.readouterr()
        assert main(["results", "query", missing]) == 2
        assert "error" in capsys.readouterr().err
        assert (
            main(["results", "pack", "--cache-dir", str(tmp_path / "nodir"), "--out", missing])
            == 2
        )
        assert "error" in capsys.readouterr().err
        assert main(["cache", str(tmp_path / "nodir")]) == 2
        assert "error" in capsys.readouterr().err

    def test_cache_maintenance_verb(self, campaign, tmp_path, capsys):
        import shutil

        cache_dir = str(tmp_path / "cache")
        shutil.copytree(campaign["cache_dir"], cache_dir)
        bad_key = "00" + "8" * 62
        os.makedirs(os.path.join(cache_dir, "00"), exist_ok=True)
        bad_path = os.path.join(cache_dir, "00", f"{bad_key}.json")
        with open(bad_path, "w") as handle:
            handle.write("{torn")
        assert main(["cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "5 entries" in out
        assert "4 readable" in out
        assert "1 corrupt" in out
        assert os.path.exists(bad_path + ".corrupt")

        assert main(["cache", cache_dir, "--clear"]) == 0
        assert "cleared 4 entries" in capsys.readouterr().out
        assert main(["cache", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_run_with_pack_warm_start(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        axes = [
            "--axis", "fs=ext2",
            "--axis", "workload=postmark",
            "--axis", "duration_s=0.3",
            "--axis", "repetitions=1",
            "--scaled-testbed", "0.0625",
        ]
        assert main(["run", *axes, "--cache-dir", cache_dir, "--quiet"]) == 0
        capsys.readouterr()
        pack_path = str(tmp_path / "warm.frpack")
        assert main(["results", "pack", "--cache-dir", cache_dir, "--out", pack_path]) == 0
        capsys.readouterr()
        # Replay from the pack alone: every cell is a hit, nothing is stored.
        assert main(["run", *axes, "--pack", pack_path, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses, 0 stores" in out

    def test_run_rejects_unreadable_pack(self, tmp_path, capsys):
        junk = tmp_path / "junk.frpack"
        junk.write_bytes(b"garbage")
        assert (
            main(
                [
                    "run",
                    "--axis",
                    "fs=ext2",
                    "--axis",
                    "workload=postmark",
                    "--pack",
                    str(junk),
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err
