"""Tests for the VFS layer: the read/write paths, metadata ops, writeback."""

import pytest

from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.storage.readahead import NO_READAHEAD

MiB = 1024 * 1024
KiB = 1024


@pytest.fixture
def stack():
    return build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0), seed=3)


@pytest.fixture
def vfs(stack):
    return stack.vfs


def make_file(vfs, path="/data", size=4 * MiB):
    vfs.create(path)
    fd = vfs.open(path)
    vfs.fallocate(fd, size, charge_time=False)
    return fd


class TestOpenClose:
    def test_open_missing_file_fails(self, vfs):
        with pytest.raises(Exception):
            vfs.open("/missing")

    def test_open_create_and_read_back(self, vfs):
        fd = vfs.open("/new", create=True)
        assert vfs.open_file(fd).inode.is_regular

    def test_open_directory_fails(self, vfs):
        vfs.mkdir("/d")
        from repro.fs.base import IsADirectoryError_

        with pytest.raises(IsADirectoryError_):
            vfs.open("/d")

    def test_close_releases_descriptor(self, vfs):
        fd = make_file(vfs)
        vfs.close(fd)
        with pytest.raises(KeyError):
            vfs.open_file(fd)

    def test_every_operation_advances_the_clock(self, stack):
        vfs = stack.vfs
        before = stack.clock.now_ns
        fd = make_file(vfs)
        vfs.read(fd, 8 * KiB, offset=0)
        assert stack.clock.now_ns > before


class TestReadPath:
    def test_cold_read_hits_device(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        latency = vfs.read(fd, 8 * KiB, offset=0)
        assert latency > 1_000_000  # a disk read costs milliseconds
        assert stack.device.stats.read_requests >= 1

    def test_warm_read_is_memory_speed(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        vfs.read(fd, 8 * KiB, offset=0)
        warm = vfs.read(fd, 8 * KiB, offset=0)
        assert warm < 100_000  # microseconds, not milliseconds

    def test_cluster_read_populates_neighbouring_pages(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        vfs.read(fd, 4 * KiB, offset=0)
        # ext2 brings in an 8 KiB cluster: page 1 should now be resident too.
        ino = vfs.open_file(fd).inode.number
        assert stack.cache.peek((ino, 1))

    def test_read_at_eof_returns_quickly(self, vfs):
        fd = make_file(vfs, size=64 * KiB)
        latency = vfs.read(fd, 8 * KiB, offset=10 * MiB)
        assert latency < 100_000
        assert vfs.stats.reads >= 1

    def test_read_clamped_at_eof(self, vfs):
        fd = make_file(vfs, size=10 * KiB)
        vfs.read(fd, 100 * KiB, offset=8 * KiB)
        assert vfs.stats.bytes_read <= 10 * KiB

    def test_sequential_reads_use_position(self, vfs):
        fd = make_file(vfs, size=64 * KiB)
        vfs.read(fd, 8 * KiB)
        vfs.read(fd, 8 * KiB)
        assert vfs.open_file(fd).position == 16 * KiB

    def test_invalid_read_arguments(self, vfs):
        fd = make_file(vfs)
        with pytest.raises(ValueError):
            vfs.read(fd, 0)
        with pytest.raises(ValueError):
            vfs.read(fd, 4096, offset=-1)

    def test_sequential_scan_triggers_readahead(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs, size=8 * MiB)
        for offset in range(0, 2 * MiB, 128 * KiB):
            vfs.read(fd, 128 * KiB, offset=offset)
        assert vfs.stats.readahead_pages > 0

    def test_no_readahead_policy_disables_prefetch(self):
        stack = build_stack(
            "ext2", testbed=scaled_testbed(1.0 / 16.0), seed=3, readahead_policy=NO_READAHEAD
        )
        vfs = stack.vfs
        fd = make_file(vfs, size=8 * MiB)
        for offset in range(0, 2 * MiB, 128 * KiB):
            vfs.read(fd, 128 * KiB, offset=offset)
        assert vfs.stats.readahead_pages == 0

    def test_readahead_makes_sequential_scan_faster(self):
        def scan_time(policy):
            stack = build_stack(
                "ext2", testbed=scaled_testbed(1.0 / 16.0), seed=3, readahead_policy=policy
            )
            vfs = stack.vfs
            fd = make_file(vfs, size=16 * MiB)
            total = 0.0
            for offset in range(0, 16 * MiB, 128 * KiB):
                total += vfs.read(fd, 128 * KiB, offset=offset)
            return total

        from repro.storage.readahead import DEFAULT_READAHEAD

        assert scan_time(DEFAULT_READAHEAD) < scan_time(NO_READAHEAD)


class TestWritePath:
    def test_write_lands_dirty_in_cache(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        vfs.write(fd, 8 * KiB, offset=0)
        assert stack.cache.dirty_pages >= 2

    def test_write_extends_file(self, vfs):
        vfs.create("/log")
        fd = vfs.open("/log")
        vfs.write(fd, 8 * KiB, offset=0)
        assert vfs.open_file(fd).inode.size_bytes == 8 * KiB

    def test_overwrite_does_not_grow_file(self, vfs):
        fd = make_file(vfs, size=64 * KiB)
        vfs.write(fd, 8 * KiB, offset=0)
        assert vfs.open_file(fd).inode.size_bytes == 64 * KiB

    def test_fsync_cleans_file_pages(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        vfs.write(fd, 64 * KiB, offset=0)
        latency = vfs.fsync(fd)
        assert latency > 0
        ino = vfs.open_file(fd).inode.number
        assert all(key[0] != ino for key in stack.cache.dirty_keys())
        assert stack.device.stats.write_requests >= 1

    def test_dirty_throttling_kicks_in_for_heavy_writers(self, stack):
        vfs = stack.vfs
        vfs.create("/big")
        fd = vfs.open("/big")
        # Write more than the dirty limit of the (tiny) cache.
        for offset in range(0, 16 * MiB, 64 * KiB):
            vfs.write(fd, 64 * KiB, offset=offset)
        assert vfs.stats.writeback_pages > 0

    def test_sync_writes_everything_back(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs)
        vfs.write(fd, 256 * KiB, offset=0)
        vfs.sync()
        assert stack.cache.dirty_pages == 0

    def test_invalid_write_arguments(self, vfs):
        fd = make_file(vfs)
        with pytest.raises(ValueError):
            vfs.write(fd, 0)


class TestMetadataOps:
    def test_create_stat_unlink_cycle(self, vfs):
        vfs.create("/x")
        assert vfs.stat("/x") > 0
        vfs.unlink("/x")
        assert not vfs.fs.exists("/x")

    def test_unlink_invalidates_cache(self, stack):
        vfs = stack.vfs
        fd = make_file(vfs, path="/gone")
        vfs.read(fd, 8 * KiB, offset=0)
        ino = vfs.open_file(fd).inode.number
        assert stack.cache.resident_pages_of(ino) > 0
        vfs.close(fd)
        vfs.unlink("/gone")
        assert stack.cache.resident_pages_of(ino) == 0

    def test_rename(self, vfs):
        vfs.create("/a")
        vfs.rename("/a", "/b")
        assert vfs.fs.exists("/b") and not vfs.fs.exists("/a")

    def test_mkdir_rmdir(self, vfs):
        vfs.mkdir("/d")
        vfs.rmdir("/d")
        assert not vfs.fs.exists("/d")

    def test_cold_metadata_ops_cost_more_than_warm(self, stack):
        vfs = stack.vfs
        vfs.create("/probe")
        cold = vfs.stat("/probe")
        warm = vfs.stat("/probe")
        assert warm <= cold

    def test_metadata_ops_counted(self, vfs):
        vfs.create("/counted")
        vfs.stat("/counted")
        vfs.unlink("/counted")
        assert vfs.stats.creates >= 1
        assert vfs.stats.stats_calls == 1
        assert vfs.stats.unlinks == 1


class TestDeviceContention:
    def test_async_readahead_delays_subsequent_miss(self, stack):
        """Asynchronous prefetch occupies the device; a following miss must wait."""
        vfs = stack.vfs
        fd = make_file(vfs, size=32 * MiB)
        # Build up a sequential stream so a large readahead is in flight.
        for offset in range(0, 4 * MiB, 128 * KiB):
            vfs.read(fd, 128 * KiB, offset=offset)
        busy_before = vfs._device_busy_until_ns
        assert busy_before >= stack.clock.now_ns
        # A random miss far away must now include queueing delay.
        latency = vfs.read(fd, 8 * KiB, offset=30 * MiB)
        assert latency > 1_000_000
