"""Tests for the latency/noise distributions."""

import random

import pytest

from repro.storage.latency import (
    ConstantLatency,
    LogNormalLatency,
    MixtureLatency,
    NormalLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestConstantLatency:
    def test_sample_is_constant(self, rng):
        model = ConstantLatency(1234.0)
        assert all(model.sample(rng) == 1234.0 for _ in range(10))

    def test_mean(self):
        assert ConstantLatency(50.0).mean() == 50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(100.0, 200.0)
        for _ in range(200):
            assert 100.0 <= model.sample(rng) <= 200.0

    def test_mean_is_midpoint(self):
        assert UniformLatency(100.0, 300.0).mean() == 200.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(200.0, 100.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 100.0)

    def test_sample_mean_close_to_analytic(self, rng):
        model = UniformLatency(0.0, 1000.0)
        samples = [model.sample(rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples) - 500.0) < 25.0


class TestNormalLatency:
    def test_never_below_floor(self, rng):
        model = NormalLatency(mean_ns=10.0, stddev_ns=100.0, floor_ns=5.0)
        assert all(model.sample(rng) >= 5.0 for _ in range(500))

    def test_mean(self):
        assert NormalLatency(100.0, 10.0).mean() == 100.0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            NormalLatency(-1.0, 1.0)


class TestLogNormalLatency:
    def test_median_roughly_respected(self, rng):
        model = LogNormalLatency(median_ns=1000.0, sigma=0.3)
        samples = sorted(model.sample(rng) for _ in range(3001))
        median = samples[len(samples) // 2]
        assert 850.0 <= median <= 1150.0

    def test_zero_sigma_is_deterministic(self, rng):
        model = LogNormalLatency(median_ns=500.0, sigma=0.0)
        assert model.sample(rng) == 500.0

    def test_mean_exceeds_median(self):
        model = LogNormalLatency(median_ns=1000.0, sigma=0.5)
        assert model.mean() > 1000.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogNormalLatency(0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(10.0, sigma=-1.0)


class TestMixtureLatency:
    def test_mean_is_weighted(self):
        mixture = MixtureLatency(
            [ConstantLatency(100.0), ConstantLatency(1000.0)], [0.9, 0.1]
        )
        assert mixture.mean() == pytest.approx(190.0)

    def test_samples_come_from_components(self, rng):
        mixture = MixtureLatency(
            [ConstantLatency(1.0), ConstantLatency(2.0)], [0.5, 0.5]
        )
        values = {mixture.sample(rng) for _ in range(100)}
        assert values == {1.0, 2.0}

    def test_rare_component_appears_at_right_rate(self, rng):
        mixture = MixtureLatency(
            [ConstantLatency(1.0), ConstantLatency(1000.0)], [0.99, 0.01]
        )
        samples = [mixture.sample(rng) for _ in range(10_000)]
        rare = sum(1 for s in samples if s == 1000.0)
        assert 30 <= rare <= 300

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MixtureLatency([ConstantLatency(1.0)], [0.5, 0.5])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureLatency([ConstantLatency(1.0)], [0.0])
