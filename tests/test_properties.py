"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import from_latencies
from repro.core.stats import confidence_interval, fragility_index, summarize
from repro.core.steady_state import detect_steady_state
from repro.core.timeline import IntervalSeries
from repro.fs.allocation import BlockGroupAllocator, ExtentAllocator
from repro.fs.base import Extent, Inode, InodeType
from repro.storage.cache import CachePolicy, PageCache
from repro.storage.readahead import DEFAULT_READAHEAD, ReadaheadState

# ---------------------------------------------------------------------------
# Page cache invariants
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "dirty_insert", "invalidate"]),
        st.integers(min_value=0, max_value=3),   # inode
        st.integers(min_value=0, max_value=200),  # page
    ),
    max_size=300,
)


@given(ops=cache_ops, capacity=st.integers(min_value=1, max_value=32),
       policy=st.sampled_from(list(CachePolicy)))
@settings(max_examples=60, deadline=None)
def test_cache_never_exceeds_capacity_and_dirty_subset_of_resident(ops, capacity, policy):
    cache = PageCache(capacity_pages=capacity, policy=policy)
    for op, inode, page in ops:
        key = (inode, page)
        if op == "insert":
            cache.insert(key)
        elif op == "dirty_insert":
            cache.insert(key, dirty=True)
        elif op == "lookup":
            cache.lookup(key)
        else:
            cache.invalidate(key)
        assert len(cache) <= capacity
        assert cache.dirty_pages <= len(cache)
        for dirty_key in cache.dirty_keys():
            assert cache.peek(dirty_key)


@given(ops=cache_ops, capacity=st.integers(min_value=1, max_value=32),
       policy=st.sampled_from(list(CachePolicy)))
@settings(max_examples=40, deadline=None)
def test_cache_insert_makes_key_resident(ops, capacity, policy):
    cache = PageCache(capacity_pages=capacity, policy=policy)
    for op, inode, page in ops:
        key = (inode, page)
        if op in ("insert", "dirty_insert"):
            cache.insert(key, dirty=(op == "dirty_insert"))
            assert cache.peek(key)
        elif op == "lookup":
            cache.lookup(key)
        else:
            cache.invalidate(key)
            assert not cache.peek(key)


@given(accesses=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=400),
       capacity=st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_cache_stats_consistent(accesses, capacity):
    cache = PageCache(capacity_pages=capacity)
    for page in accesses:
        if not cache.lookup((0, page)):
            cache.insert((0, page))
    assert cache.stats.accesses == len(accesses)
    assert cache.stats.hits + cache.stats.misses == len(accesses)
    assert cache.stats.insertions <= cache.stats.misses
    assert 0.0 <= cache.stats.hit_ratio <= 1.0


# ---------------------------------------------------------------------------
# Allocator invariants
# ---------------------------------------------------------------------------

allocation_sizes = st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30)


@given(sizes=allocation_sizes)
@settings(max_examples=40, deadline=None)
def test_block_group_allocator_conserves_blocks_and_never_overlaps(sizes):
    allocator = BlockGroupAllocator(total_blocks=200_000, blocks_per_group=16_384)
    initial_free = allocator.free_blocks
    allocated = []
    owned = set()
    for size in sizes:
        runs = allocator.allocate(size)
        assert sum(count for _, count in runs) == size
        for start, count in runs:
            for block in range(start, start + count):
                assert block not in owned
                owned.add(block)
        allocated.extend(runs)
    assert allocator.free_blocks == initial_free - len(owned)
    for start, count in allocated:
        allocator.free(start, count)
    assert allocator.free_blocks == initial_free


@given(sizes=allocation_sizes)
@settings(max_examples=40, deadline=None)
def test_extent_allocator_conserves_blocks(sizes):
    allocator = ExtentAllocator(total_blocks=200_000, allocation_groups=4)
    initial_free = allocator.free_blocks
    allocated = []
    for size in sizes:
        runs = allocator.allocate(size)
        assert sum(count for _, count in runs) == size
        allocated.extend(runs)
    for start, count in allocated:
        allocator.free(start, count)
    assert allocator.free_blocks == initial_free


# ---------------------------------------------------------------------------
# Inode extent-map invariants
# ---------------------------------------------------------------------------

@given(run_lengths=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=40),
       gap=st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_inode_mapping_covers_every_mapped_block(run_lengths, gap):
    inode = Inode(number=1, inode_type=InodeType.REGULAR)
    file_block = 0
    device_block = 1000
    for length in run_lengths:
        inode.add_extent(Extent(file_block, device_block, length))
        file_block += length
        device_block += length + gap  # physical gap forces separate extents when gap > 0
    total_blocks = sum(run_lengths)
    covered = sum(count for _, count in inode.iter_device_runs(0, total_blocks))
    assert covered == total_blocks
    assert inode.blocks_allocated() == total_blocks
    # Every individual block maps to exactly the device block it was given.
    probe = random.Random(0)
    for _ in range(20):
        block = probe.randrange(total_blocks)
        extent = inode.lookup_extent(block)
        assert extent is not None
        assert extent.file_block <= block < extent.file_end


# ---------------------------------------------------------------------------
# Histogram invariants
# ---------------------------------------------------------------------------

latency_lists = st.lists(
    st.floats(min_value=1.0, max_value=1e10, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


@given(latencies=latency_lists)
@settings(max_examples=60, deadline=None)
def test_histogram_totals_and_percentages(latencies):
    histogram = from_latencies(latencies)
    assert histogram.total == len(latencies)
    assert sum(histogram.counts) == len(latencies)
    assert abs(sum(histogram.percentages()) - 100.0) < 1e-6
    assert histogram.min_ns == min(latencies)
    assert histogram.max_ns == max(latencies)


@given(latencies=latency_lists, p1=st.floats(min_value=0, max_value=100),
       p2=st.floats(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_histogram_percentile_monotonic_and_bounded(latencies, p1, p2):
    histogram = from_latencies(latencies)
    low, high = sorted((p1, p2))
    assert histogram.percentile(low) <= histogram.percentile(high)
    # A percentile can never exceed twice the maximum (bucket upper bound).
    assert histogram.percentile(100) <= max(latencies) * 2 + 1


@given(a=latency_lists, b=latency_lists)
@settings(max_examples=40, deadline=None)
def test_histogram_merge_is_additive(a, b):
    merged = from_latencies(a).merge(from_latencies(b))
    assert merged.total == len(a) + len(b)
    assert merged.mean_ns() * merged.total == sum(a) + sum(b) or abs(
        merged.mean_ns() * merged.total - (sum(a) + sum(b))
    ) < 1e-3 * (sum(a) + sum(b))


# ---------------------------------------------------------------------------
# Statistics invariants
# ---------------------------------------------------------------------------

samples = st.lists(
    st.floats(min_value=0.1, max_value=1e7, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(values=samples)
@settings(max_examples=80, deadline=None)
def test_summarize_bounds(values):
    summary = summarize(values)
    slack = 1e-9 * max(1.0, abs(summary.mean))  # fmean rounds within 1 ULP
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.stddev >= 0
    assert summary.ci95_low - slack <= summary.mean <= summary.ci95_high + slack


@given(values=st.lists(
    st.floats(min_value=0.1, max_value=1e7, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=60,
))
@settings(max_examples=60, deadline=None)
def test_confidence_interval_contains_sample_mean(values):
    low, high = confidence_interval(values)
    mean = sum(values) / len(values)
    assert low <= mean + 1e-9
    assert high >= mean - 1e-9


@given(points=st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000),
              st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
    max_size=40,
))
@settings(max_examples=60, deadline=None)
def test_fragility_index_bounded(points):
    index = fragility_index(points)
    assert 0.0 <= index <= 1.0


# ---------------------------------------------------------------------------
# Readahead invariants
# ---------------------------------------------------------------------------

@given(reads=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200),
       file_pages=st.integers(min_value=1, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_readahead_never_exceeds_file(reads, file_pages):
    state = ReadaheadState(DEFAULT_READAHEAD)
    for raw_page in reads:
        page = raw_page % file_pages
        start, count = state.advise(page, 1, file_pages)
        assert count >= 0
        assert start + count <= file_pages


# ---------------------------------------------------------------------------
# Timeline and steady-state invariants
# ---------------------------------------------------------------------------

@given(events=st.lists(
    st.tuples(st.floats(min_value=0, max_value=100e9, allow_nan=False),
              st.floats(min_value=1, max_value=1e8, allow_nan=False)),
    min_size=1, max_size=200,
))
@settings(max_examples=40, deadline=None)
def test_interval_series_conserves_operations(events):
    series = IntervalSeries(interval_s=1.0)
    for end_time, latency in events:
        series.record(end_time, latency)
    assert series.total_operations() == len(events)
    assert all(t >= 0 for t in series.throughputs())


@given(plateau=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
       noise=st.floats(min_value=0.0, max_value=0.01),
       length=st.integers(min_value=6, max_value=40))
@settings(max_examples=40, deadline=None)
def test_steady_state_detected_on_noisy_plateau(plateau, noise, length):
    rng = random.Random(7)
    series = [plateau * (1.0 + rng.uniform(-noise, noise)) for _ in range(length)]
    assert detect_steady_state(series, window=5) is not None
