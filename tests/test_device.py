"""Tests for the block layer: requests, schedulers, merging, accounting."""

import random

import pytest

from repro.storage.device import (
    BlockDevice,
    DeadlineScheduler,
    ElevatorScheduler,
    IORequest,
    IOScheduler,
    NoopScheduler,
    make_scheduler,
)
from repro.storage.disk import MechanicalDisk, RamDisk


@pytest.fixture
def rng():
    return random.Random(17)


class TestIORequest:
    def test_end_bytes(self):
        assert IORequest(4096, 8192).end_bytes == 12288

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            IORequest(-1, 10)
        with pytest.raises(ValueError):
            IORequest(0, 0)


class TestMerging:
    def test_adjacent_same_direction_merged(self):
        requests = [IORequest(0, 4096), IORequest(4096, 4096), IORequest(8192, 4096)]
        merged = IOScheduler.merge_adjacent(requests)
        assert len(merged) == 1
        assert merged[0].nbytes == 3 * 4096

    def test_non_adjacent_not_merged(self):
        requests = [IORequest(0, 4096), IORequest(16384, 4096)]
        assert len(IOScheduler.merge_adjacent(requests)) == 2

    def test_reads_and_writes_not_merged_together(self):
        requests = [IORequest(0, 4096, is_write=False), IORequest(4096, 4096, is_write=True)]
        assert len(IOScheduler.merge_adjacent(requests)) == 2

    def test_empty_batch(self):
        assert IOScheduler.merge_adjacent([]) == []

    def test_merging_preserves_arrival_order(self):
        """Coalescing must not sort the batch: ordering is the scheduler's job."""
        requests = [IORequest(0, 4096), IORequest(16384, 4096), IORequest(4096, 4096)]
        merged = IOScheduler.merge_adjacent(requests)
        # The third request is adjacent to the first but not *consecutive*
        # with it, so nothing merges and arrival order is untouched.
        assert [r.offset_bytes for r in merged] == [0, 16384, 4096]

    def test_only_consecutive_runs_merge(self):
        requests = [
            IORequest(8192, 4096),
            IORequest(12288, 4096),  # consecutive + adjacent: merges
            IORequest(0, 4096),  # out of order: breaks the run
            IORequest(4096, 4096),  # consecutive + adjacent: merges
        ]
        merged = IOScheduler.merge_adjacent(requests)
        assert [(r.offset_bytes, r.nbytes) for r in merged] == [
            (8192, 8192),
            (0, 8192),
        ]


class TestSchedulers:
    def test_noop_preserves_order(self):
        requests = [IORequest(8192, 4096), IORequest(0, 4096)]
        assert NoopScheduler().order(requests, head_offset=0) == requests

    def test_elevator_sweeps_upward_from_head(self):
        requests = [IORequest(100 * 4096, 4096), IORequest(10 * 4096, 4096), IORequest(50 * 4096, 4096)]
        ordered = ElevatorScheduler().order(requests, head_offset=40 * 4096)
        offsets = [r.offset_bytes for r in ordered]
        assert offsets == [50 * 4096, 100 * 4096, 10 * 4096]

    def test_deadline_prioritises_urgent_requests(self):
        requests = [
            IORequest(100 * 4096, 4096, priority=1),
            IORequest(0, 4096, priority=0),
        ]
        ordered = DeadlineScheduler().order(requests, head_offset=0)
        assert ordered[0].priority == 0

    def test_make_scheduler_by_name(self):
        assert make_scheduler("noop").name == "noop"
        assert make_scheduler("elevator").name == "elevator"
        assert make_scheduler("deadline").name == "deadline"
        with pytest.raises(ValueError):
            make_scheduler("bfq")


class TestBlockDevice:
    def test_single_read_accounts_stats(self, rng):
        device = BlockDevice(RamDisk())
        latency = device.read(0, 4096, rng)
        assert latency > 0
        assert device.stats.read_requests == 1
        assert device.stats.total_service_ns == pytest.approx(latency)

    def test_single_write_accounts_stats(self, rng):
        device = BlockDevice(RamDisk())
        device.write(0, 4096, rng)
        assert device.stats.write_requests == 1

    def test_submit_empty_batch_is_free(self, rng):
        device = BlockDevice(RamDisk())
        assert device.submit([], rng) == 0.0

    def test_submit_batch_merges_adjacent(self, rng):
        device = BlockDevice(RamDisk(), merge=True)
        batch = [IORequest(i * 4096, 4096) for i in range(8)]
        device.submit(batch, rng)
        assert device.stats.requests == 1
        assert device.stats.merged_requests == 7

    def test_submit_batch_without_merging(self, rng):
        device = BlockDevice(RamDisk(), merge=False)
        batch = [IORequest(i * 4096, 4096) for i in range(8)]
        device.submit(batch, rng)
        assert device.stats.requests == 8

    def test_noop_dispatches_in_arrival_order_even_with_merging(self, rng):
        """The NOOP contract: merge=True must not reorder the dispatch."""

        class SpyModel(RamDisk):
            def __init__(self):
                super().__init__()
                self.offsets = []

            def read_latency_ns(self, offset_bytes, nbytes, rng):
                self.offsets.append(offset_bytes)
                return super().read_latency_ns(offset_bytes, nbytes, rng)

        model = SpyModel()
        device = BlockDevice(model, scheduler=NoopScheduler(), merge=True)
        # Descending, non-adjacent offsets: the old sort-based merge would
        # dispatch these ascending.
        batch = [IORequest(32 * 4096, 4096), IORequest(16 * 4096, 4096), IORequest(0, 4096)]
        device.submit(batch, rng)
        assert model.offsets == [32 * 4096, 16 * 4096, 0]

    def test_elevator_scheduling_reduces_seek_time(self, rng):
        offsets = [rng.randrange(0, 200 * 10**9, 4096) for _ in range(64)]

        def total_time(scheduler):
            device = BlockDevice(MechanicalDisk(), scheduler=scheduler, merge=False)
            batch = [IORequest(offset, 4096) for offset in offsets]
            return device.submit(batch, random.Random(5))

        assert total_time(ElevatorScheduler()) < total_time(NoopScheduler())

    def test_flush_delegates_to_model(self, rng):
        hdd = BlockDevice(MechanicalDisk())
        ram = BlockDevice(RamDisk())
        assert hdd.flush(rng) > 0
        assert ram.flush(rng) == 0.0  # RamDisk has no flush cost

    def test_capacity_exposed(self):
        device = BlockDevice(RamDisk(capacity_bytes=10**9))
        assert device.capacity_bytes == 10**9

    def test_reset_state(self, rng):
        device = BlockDevice(RamDisk())
        device.read(0, 4096, rng)
        device.reset_state()
        assert device.stats.requests == 0
        assert device.model.stats.reads == 0
