"""Tests for the page cache and its eviction policies."""

import pytest

from repro.storage.cache import CachePolicy, PageCache, make_cache


def fill(cache: PageCache, count: int, inode: int = 1):
    for page in range(count):
        cache.insert((inode, page))


class TestPageCacheBasics:
    def test_miss_then_hit(self):
        cache = PageCache(capacity_pages=10)
        assert not cache.lookup((1, 0))
        cache.insert((1, 0))
        assert cache.lookup((1, 0))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_enforced(self):
        cache = PageCache(capacity_pages=5)
        fill(cache, 20)
        assert len(cache) == 5

    def test_insert_returns_evicted_pages(self):
        cache = PageCache(capacity_pages=2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        evicted = cache.insert((1, 2))
        assert len(evicted) == 1
        assert evicted[0][0] in {(1, 0), (1, 1)}

    def test_zero_capacity_cache_never_stores(self):
        cache = PageCache(capacity_pages=0)
        cache.insert((1, 0))
        assert not cache.lookup((1, 0))
        assert len(cache) == 0

    def test_reinsert_existing_page_does_not_evict(self):
        cache = PageCache(capacity_pages=2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        assert cache.insert((1, 0)) == []
        assert len(cache) == 2

    def test_peek_does_not_count_stats(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0))
        cache.peek((1, 0))
        cache.peek((1, 1))
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_hit_ratio(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0))
        cache.lookup((1, 0))
        cache.lookup((1, 1))
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(capacity_pages=-1)

    def test_make_cache_converts_bytes_to_pages(self):
        cache = make_cache(1024 * 1024, page_size=4096)
        assert cache.capacity_pages == 256
        assert cache.capacity_bytes == 1024 * 1024

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PageCache(capacity_pages=4, policy="mru")


class TestDirtyPages:
    def test_dirty_tracking(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0), dirty=True)
        cache.insert((1, 1))
        assert cache.dirty_pages == 1
        assert (1, 0) in [k for k in cache.dirty_keys()]

    def test_clean_removes_dirty_state(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0), dirty=True)
        cache.clean((1, 0))
        assert cache.dirty_pages == 0

    def test_mark_dirty_only_for_resident(self):
        cache = PageCache(capacity_pages=4)
        cache.mark_dirty((1, 0))
        assert cache.dirty_pages == 0
        cache.insert((1, 0))
        cache.mark_dirty((1, 0))
        assert cache.dirty_pages == 1

    def test_eviction_reports_dirtiness(self):
        cache = PageCache(capacity_pages=1)
        cache.insert((1, 0), dirty=True)
        evicted = cache.insert((1, 1))
        assert evicted == [((1, 0), True)]
        assert cache.stats.dirty_evictions == 1

    def test_reinsert_dirty_marks_existing_page(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0))
        cache.insert((1, 0), dirty=True)
        assert cache.dirty_pages == 1


class TestInvalidation:
    def test_invalidate_single_page(self):
        cache = PageCache(capacity_pages=4)
        cache.insert((1, 0))
        assert cache.invalidate((1, 0))
        assert not cache.peek((1, 0))
        assert not cache.invalidate((1, 0))

    def test_invalidate_inode_drops_only_that_file(self):
        cache = PageCache(capacity_pages=10)
        fill(cache, 3, inode=1)
        fill(cache, 3, inode=2)
        dropped = cache.invalidate_inode(1)
        assert dropped == 3
        assert cache.resident_pages_of(1) == 0
        assert cache.resident_pages_of(2) == 3

    def test_drop_caches_empties_everything(self):
        cache = PageCache(capacity_pages=10)
        fill(cache, 5)
        cache.insert((2, 0), dirty=True)
        dropped = cache.drop_caches()
        assert dropped == 6
        assert len(cache) == 0
        assert cache.dirty_pages == 0

    def test_resize_shrinks_and_reports_evictions(self):
        cache = PageCache(capacity_pages=10)
        fill(cache, 10)
        evicted = cache.resize(4)
        assert len(evicted) == 6
        assert len(cache) == 4
        assert cache.capacity_pages == 4


class TestLRUBehaviour:
    def test_lru_evicts_least_recently_used(self):
        cache = PageCache(capacity_pages=3, policy=CachePolicy.LRU)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.insert((1, 2))
        cache.lookup((1, 0))  # 0 becomes most recent
        evicted = cache.insert((1, 3))
        assert evicted[0][0] == (1, 1)

    def test_fifo_ignores_recency(self):
        cache = PageCache(capacity_pages=3, policy=CachePolicy.FIFO)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.insert((1, 2))
        cache.lookup((1, 0))
        evicted = cache.insert((1, 3))
        assert evicted[0][0] == (1, 0)

    def test_clock_gives_second_chance(self):
        cache = PageCache(capacity_pages=3, policy=CachePolicy.CLOCK)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.insert((1, 2))
        cache.lookup((1, 0))  # reference bit set on 0
        evicted = cache.insert((1, 3))
        assert evicted[0][0] == (1, 1)


@pytest.mark.parametrize(
    "policy",
    [CachePolicy.LRU, CachePolicy.CLOCK, CachePolicy.ARC, CachePolicy.TWO_Q, CachePolicy.FIFO],
)
class TestAllPoliciesInvariants:
    def test_capacity_never_exceeded(self, policy):
        cache = PageCache(capacity_pages=8, policy=policy)
        for page in range(100):
            cache.insert((1, page))
            assert len(cache) <= 8

    def test_inserted_page_is_resident(self, policy):
        cache = PageCache(capacity_pages=8, policy=policy)
        for page in range(50):
            cache.insert((1, page))
            assert cache.peek((1, page))

    def test_repeated_working_set_hits(self, policy):
        cache = PageCache(capacity_pages=8, policy=policy)
        # A working set smaller than the cache should eventually always hit.
        for _ in range(5):
            for page in range(4):
                cache.lookup((1, page))
                cache.insert((1, page))
        hits_before = cache.stats.hits
        for page in range(4):
            assert cache.lookup((1, page))
        assert cache.stats.hits == hits_before + 4

    def test_eviction_and_reinsertion_consistent(self, policy):
        cache = PageCache(capacity_pages=4, policy=policy)
        for page in range(12):
            cache.insert((1, page))
        # Reinsert everything again; no key should ever be double-resident.
        for page in range(12):
            cache.insert((1, page))
        assert len(cache) == 4


class TestScanResistance:
    def test_arc_protects_hot_set_better_than_lru(self):
        """After a large sequential scan, ARC should retain more of the hot set."""
        hot_pages = [(1, p) for p in range(8)]

        def run(policy):
            cache = PageCache(capacity_pages=16, policy=policy)
            # Establish a frequently re-referenced hot set.
            for _ in range(6):
                for key in hot_pages:
                    if not cache.lookup(key):
                        cache.insert(key)
            # One pass of a large scan (cold pages, never re-referenced).
            for page in range(200):
                key = (2, page)
                if not cache.lookup(key):
                    cache.insert(key)
            return sum(1 for key in hot_pages if cache.peek(key))

        assert run(CachePolicy.ARC) >= run(CachePolicy.LRU)
