"""Tests for the observability layer (repro.obs).

The load-bearing guarantees, in order of importance:

* **Non-perturbation** -- a traced run is the *same measurement* as an
  untraced run: serialized payloads are byte-identical (pinned against the
  pre-observability golden hash) and cache keys ignore the ``trace`` flag
  entirely, so traced and untraced runs share one cache entry.
* **Exactness** -- per op type, the attributed category components sum to
  the op's measured latency (up to float accumulation order), the grand
  total matches the latency histogram's sum, and per-client attribution
  matches each client's exact sample arithmetic.
* **Boundedness** -- the event ring never exceeds its capacity, keeps exact
  drop counters, and a full ring never loses attribution.
* **Classification** -- journal-less file systems attribute no journal
  time, the FTL's garbage-collection pauses land in ``gc-pause``, and
  fire-and-forget work stays out of attribution.
"""

from __future__ import annotations

import hashlib
import io
import math
from collections import defaultdict
from dataclasses import replace

import pytest

from repro.core.frame import run_metrics
from repro.core.parallel import WorkUnit, cache_key
from repro.core.persistence import run_result_to_dict, save_run_result
from repro.core.runner import (
    TRACE_RING_CAPACITY,
    BenchmarkConfig,
    BenchmarkRunner,
    WarmupMode,
)
from repro.obs import (
    BACKGROUND,
    CATEGORIES,
    Attribution,
    MetricSource,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    payloads_match,
    render_attribution,
    render_client_attribution,
    run_unit_traced,
    write_jsonl,
)
from repro.storage.config import scaled_testbed
from repro.workloads.registry import postmark_workload

MiB = 1024 * 1024

# Pinned in tests/test_concurrency.py against the pre-concurrency repository;
# repeated here because tracing must never move them either.
GOLDEN_KEY_EXT4_POSTMARK = "e84a62e530984408d1f1a1e58160ca91292d5bcd0392fdbf0e652d2c5f14789f"
GOLDEN_RUN_SHA256 = "bfa10d8b6cb1e93e3e6f295f1fd5e3a6510048f5614aa9cce65a71a02f238140"


def golden_unit(trace: bool = False, clients: int = 1) -> WorkUnit:
    """The work unit whose untraced payload hash is pinned as the golden."""
    return WorkUnit(
        fs_type="ext4",
        spec=postmark_workload(file_count=120),
        config=BenchmarkConfig(
            duration_s=2.0, repetitions=1, trace=trace, clients=clients
        ),
        testbed=scaled_testbed(0.0625),
    )


def run_unit(unit: WorkUnit):
    runner = BenchmarkRunner(fs_type=unit.fs_type, testbed=unit.testbed, config=unit.config)
    return runner.run_once(unit.spec, unit.repetition)


def quick_config(**overrides) -> BenchmarkConfig:
    values = dict(duration_s=0.5, repetitions=1, warmup_mode=WarmupMode.NONE, trace=True)
    values.update(overrides)
    return BenchmarkConfig(**values)


# ---------------------------------------------------------- non-perturbation
class TestNonPerturbation:
    def test_traced_payload_matches_golden_hash(self):
        """The serialized bytes of a traced run equal the pinned untraced golden."""
        run = run_unit(golden_unit(trace=True))
        buffer = io.StringIO()
        save_run_result(run, buffer)
        digest = hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_RUN_SHA256
        # ...even though the in-memory result carries the evidence:
        assert run.attribution is not None
        assert run.trace_events

    def test_traced_and_untraced_payloads_are_equal(self):
        traced = run_unit(golden_unit(trace=True))
        untraced = run_unit(golden_unit(trace=False))
        assert payloads_match(traced, untraced)
        assert untraced.attribution is None
        assert untraced.trace_events is None
        payload = run_result_to_dict(traced)
        assert "attribution" not in payload
        assert "trace_events" not in payload

    def test_cache_key_ignores_trace_flag(self):
        assert (
            cache_key("ext4", postmark_workload(), BenchmarkConfig(trace=True), seed=42)
            == cache_key("ext4", postmark_workload(), BenchmarkConfig(trace=False), seed=42)
            == GOLDEN_KEY_EXT4_POSTMARK
        )

    def test_multi_client_traced_payload_is_identical(self):
        traced = run_unit(golden_unit(trace=True, clients=2))
        untraced = run_unit(golden_unit(trace=False, clients=2))
        assert payloads_match(traced, untraced)

    def test_run_unit_traced_bypasses_nothing_it_measures(self):
        """run_unit_traced returns the same measurement, plus attribution."""
        reference = run_unit(golden_unit(trace=False))
        traced = run_unit_traced(golden_unit(trace=False))
        assert payloads_match(reference, traced)
        assert traced.attribution is not None


# ------------------------------------------------------------------ exactness
class TestAttributionExactness:
    def assert_attribution_sums(self, run) -> None:
        attr = run.attribution
        per_op_latency = defaultdict(float)
        for event in run.trace_events:
            if event.cat == "op":
                per_op_latency[event.name] += event.dur_ns
        assert set(attr["ops"]) == {op for op, total in per_op_latency.items() if total > 0}
        for op, categories in attr["ops"].items():
            assert math.isclose(
                sum(categories.values()), per_op_latency[op], rel_tol=1e-9
            )
        assert math.isclose(
            sum(attr["totals"].values()), run.histogram.sum_ns, rel_tol=1e-9
        )

    def test_per_op_sums_match_measured_latency_journalled(self):
        run = run_unit(golden_unit(trace=True))
        self.assert_attribution_sums(run)
        # Journalled metadata churn must show journal time somewhere.
        assert run.attribution["totals"].get("journal", 0.0) > 0

    def test_per_op_sums_match_measured_latency_journal_less(self):
        unit = replace(golden_unit(trace=True), fs_type="ext2")
        run = run_unit(unit)
        self.assert_attribution_sums(run)
        # ext2 has no journal: nothing may be classified as journal time.
        assert run.attribution["totals"].get("journal", 0.0) == 0.0

    def test_ftl_gc_pauses_are_carved_out(self):
        unit = golden_unit(trace=True)
        unit = replace(unit, testbed=replace(unit.testbed, device_kind="ssd-ftl-steady"))
        run = run_unit(unit)
        self.assert_attribution_sums(run)
        totals = run.attribution["totals"]
        assert totals.get("gc-pause", 0.0) > 0
        # Seek is a mechanical-disk concept; the SSD must never report it.
        assert totals.get("seek", 0.0) == 0.0

    def test_per_client_attribution_matches_exact_samples(self):
        run = run_unit(golden_unit(trace=True, clients=2))
        clients = run.attribution["clients"]
        assert sorted(clients) == ["0", "1"]
        for row in run.client_metrics:
            index = str(int(row["client"]))
            expected = row["mean_latency_ns"] * row["operations"]
            assert math.isclose(sum(clients[index].values()), expected, rel_tol=1e-9)

    def test_frame_metrics_carry_attribution_totals(self):
        run = run_unit(golden_unit(trace=True))
        metrics = run_metrics(run)
        for category in CATEGORIES:
            key = f"attr_{category.replace('-', '_')}_ns"
            assert key in metrics
            assert metrics[key] == run.attribution["totals"].get(category, 0.0)
        assert math.isclose(
            sum(metrics[f"attr_{c.replace('-', '_')}_ns"] for c in CATEGORIES),
            run.histogram.sum_ns,
            rel_tol=1e-9,
        )

    def test_untraced_frame_metrics_are_unchanged(self):
        run = run_unit(golden_unit(trace=False))
        assert not any(key.startswith("attr_") for key in run_metrics(run))


# --------------------------------------------------------------- ring buffer
class _FakeClock:
    def __init__(self) -> None:
        self.now_ns = 0.0


class TestRingBuffer:
    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(_FakeClock(), capacity=16)
        tracer.begin_op("read")
        for _ in range(100):
            tracer.cpu(1.0)
        tracer.end_op(100.0)
        assert len(tracer.events) == 16
        assert tracer.total_events == 101
        assert tracer.dropped == 85

    def test_full_ring_never_loses_attribution(self):
        tracer = Tracer(_FakeClock(), capacity=4)
        tracer.begin_op("write")
        for _ in range(1000):
            tracer.cpu(2.0)
        tracer.end_op(2000.0)
        assert tracer.attribution.op_total("write") == 2000.0

    def test_runner_ring_capacity_bounds_long_runs(self):
        run = run_unit(golden_unit(trace=True))
        assert len(run.trace_events) <= TRACE_RING_CAPACITY

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(_FakeClock(), capacity=0)


# ----------------------------------------------------------- tracer semantics
class TestTracerSemantics:
    def test_async_records_are_ring_only(self):
        tracer = Tracer(_FakeClock())
        tracer.begin_op("read")
        tracer.push_context("readahead", async_=True)
        tracer.record("transfer", 50.0)
        tracer.pop_context()
        tracer.end_op(0.0)
        assert tracer.attribution.ops == {}
        assert any(event.cat == "transfer" for event in tracer.events)

    def test_out_of_span_records_land_in_background(self):
        tracer = Tracer(_FakeClock())
        tracer.record("writeback", 10.0)
        assert tracer.attribution.background == {"writeback": 10.0}
        assert tracer.attribution.ops == {}

    def test_cursor_tiles_components_within_a_span(self):
        clock = _FakeClock()
        clock.now_ns = 1000.0
        tracer = Tracer(clock)
        tracer.begin_op("write")
        tracer.cpu(5.0)
        tracer.record("writeback", 7.0)
        tracer.end_op(12.0)
        spans = [event for event in tracer.events if event.cat != "op"]
        assert [event.ts_ns for event in spans] == [1000.0, 1005.0]
        op = [event for event in tracer.events if event.cat == "op"][0]
        assert (op.ts_ns, op.dur_ns) == (1000.0, 12.0)

    def test_zero_duration_records_are_skipped(self):
        tracer = Tracer(_FakeClock())
        tracer.begin_op("read")
        tracer.record("cpu", 0.0)
        tracer.end_op(0.0)
        assert tracer.attribution.ops == {}

    def test_flush_classification_follows_journal_presence(self):
        journalled = Tracer(_FakeClock())
        journalled.has_journal = True
        journalled.begin_op("fsync")
        journalled.flush(3.0)
        journalled.end_op(3.0)
        assert journalled.attribution.ops["fsync"] == {"journal": 3.0}

        bare = Tracer(_FakeClock())
        bare.begin_op("fsync")
        bare.flush(3.0)
        bare.end_op(3.0)
        assert bare.attribution.ops["fsync"] == {"writeback": 3.0}


# -------------------------------------------------------------------- exports
class TestExports:
    def test_write_jsonl_round_trips_every_field(self):
        import json

        run = run_unit(golden_unit(trace=True))
        buffer = io.StringIO()
        count = write_jsonl(run.trace_events, buffer)
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert count == len(lines) == len(run.trace_events)
        first = json.loads(lines[0])
        assert set(first) == {"ts_ns", "dur_ns", "name", "cat", "op", "client"}

    def test_chrome_trace_shape(self):
        run = run_unit(golden_unit(trace=True, clients=2))
        document = chrome_trace(run.trace_events)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == len(run.trace_events)
        assert all(event["ph"] == "X" for event in events)
        assert {event["tid"] for event in events} == {0, 1}

    def test_render_attribution_pivot(self):
        run = run_unit(golden_unit(trace=True))
        text = render_attribution(run.attribution, title="cell: latency attribution")
        assert text.startswith("cell: latency attribution")
        for category in CATEGORIES:
            assert f"{category}_ms" in text
        assert "(all ops)" in text
        assert "share" in text
        assert BACKGROUND not in text  # no background charges in this run

    def test_render_client_attribution_only_for_multi_client(self):
        single = run_unit(golden_unit(trace=True))
        assert render_client_attribution(single.attribution) == ""
        multi = run_unit(golden_unit(trace=True, clients=2))
        table = render_client_attribution(multi.attribution)
        assert "client" in table and "total_ms" in table


# ------------------------------------------------------------ metrics registry
class TestMetricsRegistry:
    def test_stack_registry_names_and_snapshot(self):
        from repro.fs.stack import build_stack

        stack = build_stack("ext4", testbed=scaled_testbed(0.0625))
        registry = stack.metrics_registry()
        assert {"vfs", "cache", "fs", "block", "device", "journal"} <= set(iter(registry))
        snapshot = registry.snapshot()
        assert snapshot["cache"]["hit_ratio"] == 0.0
        assert all(
            isinstance(value, float)
            for source in snapshot.values()
            for value in source.values()
        )

    def test_journal_less_stack_has_no_journal_source(self):
        from repro.fs.stack import build_stack

        stack = build_stack("ext2", testbed=scaled_testbed(0.0625))
        assert "journal" not in stack.metrics_registry()

    def test_reset_restores_defaults(self):
        from dataclasses import dataclass, field

        @dataclass
        class Sample(MetricSource):
            hits: int = 0
            values: list = field(default_factory=list)

        sample = Sample(hits=7)
        sample.values.append(1)
        sample.reset()
        assert sample.hits == 0
        assert sample.values == []

    def test_registry_wide_snapshot_reset_round_trip(self):
        """Every registered source survives snapshot -> reset -> snapshot.

        Exercised over a full journalled stack after real traffic: the reset
        snapshot must equal a pristine stack's snapshot source for source --
        a source whose counters stick (or that silently drops out of the
        registry) fails here, not in production reports.
        """
        from repro.fs.stack import build_stack

        unit = golden_unit()
        stack = build_stack(unit.fs_type, testbed=unit.testbed)
        runner = BenchmarkRunner(
            fs_type=unit.fs_type,
            testbed=unit.testbed,
            config=quick_config(trace=False),
            stack_factory=lambda *args: stack,
        )
        runner.run_once(unit.spec, 0)

        registry = stack.metrics_registry()
        pristine = build_stack(unit.fs_type, testbed=unit.testbed).metrics_registry()
        before = registry.snapshot()
        assert set(before) == set(pristine.snapshot())
        # Traffic moved at least one counter in the I/O path sources.
        assert any(
            any(value != 0.0 for value in counters.values())
            for name, counters in before.items()
        )
        registry.reset()
        after = registry.snapshot()
        assert set(after) == set(before)
        assert after == pristine.snapshot()
        for name, counters in before.items():
            # Identical counter names per source across the round trip.
            assert set(after[name]) == set(counters)

    def test_result_cache_stats_are_a_metric_source(self, tmp_path):
        from repro.core.parallel import CacheStats, ResultCache

        cache = ResultCache(str(tmp_path))
        assert isinstance(cache.stats, MetricSource)
        cache.get("0" * 64)
        snapshot = cache.stats.snapshot()
        assert snapshot["misses"] == 1.0
        assert snapshot["hit_ratio"] == 0.0
        for name in ("hits", "misses", "stores", "corrupt", "pack_hits", "blocks_read"):
            assert name in snapshot
        registry = MetricsRegistry()
        registry.register("result-cache", cache.stats)
        assert registry.snapshot()["result-cache"]["misses"] == 1.0
        registry.reset()
        assert cache.stats.misses == 0
        assert CacheStats().snapshot()["hit_ratio"] == 0.0

    def test_registry_rejects_duplicates_and_bad_sources(self):
        registry = MetricsRegistry()
        stats = Attribution()  # has no snapshot/reset
        with pytest.raises(TypeError):
            registry.register("bad", stats)

        @_simple_source
        class Good:
            pass

        good = Good()
        registry.register("good", good)
        with pytest.raises(ValueError):
            registry.register("good", good)


def _simple_source(cls):
    """Decorate a class with trivial snapshot/reset for registry tests."""
    cls.snapshot = lambda self: {}
    cls.reset = lambda self: None
    return cls
