"""Tests for micro workloads, personalities, postmark, compile and iomix."""

import pytest

from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads import (
    PostmarkConfig,
    STANDARD_PROFILES,
    append_workload,
    compile_workload,
    create_delete_workload,
    fileserver_personality,
    metadata_mix_workload,
    oltp_personality,
    random_read_workload,
    random_write_workload,
    run_iomix,
    run_postmark,
    sequential_read_workload,
    sequential_write_workload,
    stat_workload,
    varmail_personality,
    webserver_personality,
)
from repro.workloads.compilebench import CompileBenchConfig
from repro.workloads.iomix import IomixProfile
from repro.workloads.spec import WorkloadEngine

KiB = 1024
MiB = 1024 * 1024


def tiny_stack(fs="ext2", seed=4):
    return build_stack(fs, testbed=scaled_testbed(1.0 / 16.0), seed=seed)


ALL_MICRO_FACTORIES = [
    lambda: random_read_workload(4 * MiB),
    lambda: sequential_read_workload(4 * MiB),
    lambda: random_write_workload(4 * MiB),
    lambda: sequential_write_workload(4 * MiB),
    lambda: append_workload(),
    lambda: create_delete_workload(file_count=20, directories=2),
    lambda: stat_workload(file_count=50, directories=5),
    lambda: metadata_mix_workload(file_count=30, directories=3),
]

ALL_PERSONALITY_FACTORIES = [
    lambda: webserver_personality(file_count=30, threads=2),
    lambda: fileserver_personality(file_count=30, threads=2),
    lambda: varmail_personality(file_count=20, threads=2),
    lambda: oltp_personality(database_size=4 * MiB, threads=2),
]


class TestWorkloadSpecsAreValid:
    @pytest.mark.parametrize("factory", ALL_MICRO_FACTORIES)
    def test_micro_specs_validate(self, factory):
        spec = factory()
        spec.validate()
        assert spec.dimensions

    @pytest.mark.parametrize("factory", ALL_PERSONALITY_FACTORIES)
    def test_personality_specs_validate(self, factory):
        spec = factory()
        spec.validate()
        assert spec.threads >= 1
        assert spec.description

    @pytest.mark.parametrize("factory", ALL_MICRO_FACTORIES + ALL_PERSONALITY_FACTORIES)
    def test_every_workload_executes(self, factory):
        stack = tiny_stack()
        engine = WorkloadEngine(stack, factory(), seed=2)
        executed = engine.run(max_ops=40)
        assert executed == 40
        assert stack.clock.now_ns > 0


class TestRandomReadWorkload:
    def test_names_reflect_file_size(self):
        assert "256" in random_read_workload(256 * MiB).name

    def test_custom_overhead(self):
        spec = random_read_workload(1 * MiB, op_overhead_ns=12_345.0)
        assert spec.op_overhead_ns == 12_345.0

    def test_random_read_touches_whole_file(self):
        stack = tiny_stack()
        spec = random_read_workload(2 * MiB, op_overhead_ns=0.0)
        engine = WorkloadEngine(stack, spec, seed=2)
        engine.run(max_ops=2000)
        ino = stack.vfs.fs.resolve(engine.fileset.path_of(0)).number
        assert stack.cache.resident_pages_of(ino) >= (2 * MiB // 4096) * 0.9


class TestSequentialVsRandom:
    def test_sequential_read_faster_than_random_cold(self):
        def total_time(spec_factory):
            stack = tiny_stack()
            spec = spec_factory(16 * MiB, op_overhead_ns=0.0)
            WorkloadEngine(stack, spec, seed=2).run(max_ops=300)
            return stack.clock.now_ns

        assert total_time(sequential_read_workload) < total_time(random_read_workload)


class TestPostmark:
    def test_postmark_runs_and_reports(self):
        stack = tiny_stack("ext3")
        result = run_postmark(stack, PostmarkConfig(initial_files=30, transactions=100, seed=1))
        assert result.transactions_per_second > 0
        assert result.created + result.deleted > 0
        assert result.duration_s > 0
        assert set(result.op_latencies_ns) == {"create", "delete", "read", "append"}
        assert "PostMark" in result.summary()

    def test_postmark_deletes_everything_at_the_end(self):
        stack = tiny_stack()
        run_postmark(stack, PostmarkConfig(initial_files=20, transactions=50, seed=1))
        assert not stack.vfs.fs.list_directory("/postmark") or all(
            entry.inode_type.value == "directory"
            for entry in stack.vfs.fs.list_directory("/postmark")
        )

    def test_postmark_config_validation(self):
        with pytest.raises(ValueError):
            PostmarkConfig(initial_files=0).validate()
        with pytest.raises(ValueError):
            PostmarkConfig(min_size=0).validate()
        with pytest.raises(ValueError):
            PostmarkConfig(read_bias=2.0).validate()

    def test_postmark_callback_invoked(self):
        stack = tiny_stack()
        records = []
        run_postmark(stack, PostmarkConfig(initial_files=10, transactions=30, seed=1), on_op=records.append)
        assert len(records) >= 25


class TestCompileWorkload:
    def test_compile_spec_valid(self):
        spec = compile_workload(CompileBenchConfig(source_files=50, directories=5, threads=2))
        spec.validate()

    def test_cpu_bound_configuration_hides_the_file_system(self):
        """The paper's point about kernel builds: more CPU think time means the
        device matters less, so total runtime is dominated by 'compilation'."""

        def runtime(cpu_us):
            stack = tiny_stack()
            config = CompileBenchConfig(source_files=40, directories=4, threads=1, cpu_think_us=cpu_us)
            WorkloadEngine(stack, compile_workload(config), seed=2).run(max_ops=120)
            return stack.clock.now_s, stack.device.stats.total_service_ns / 1e9

        total_fast, device_fast = runtime(100.0)
        total_slow, device_slow = runtime(20_000.0)
        device_fraction_fast = device_fast / total_fast
        device_fraction_slow = device_slow / total_slow
        assert device_fraction_slow < device_fraction_fast

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CompileBenchConfig(source_files=0).validate()


class TestIomix:
    def test_standard_profiles_are_valid(self):
        for profile in STANDARD_PROFILES:
            profile.validate()
        assert len(STANDARD_PROFILES) >= 5

    def test_sequential_bandwidth_beats_random(self):
        stack = tiny_stack()
        sequential = run_iomix(stack.device, IomixProfile("seq", 64 * KiB, 1.0, 0.0), requests=300)
        random_profile = run_iomix(stack.device, IomixProfile("rand", 64 * KiB, 1.0, 1.0), requests=300)
        assert sequential.bandwidth_mb_s > random_profile.bandwidth_mb_s

    def test_result_fields_consistent(self):
        stack = tiny_stack()
        result = run_iomix(stack.device, STANDARD_PROFILES[0], requests=100)
        assert result.requests == 100
        assert len(result.latencies_ns) == 100
        assert result.total_bytes == 100 * STANDARD_PROFILES[0].request_bytes
        assert result.iops == pytest.approx(100 / result.duration_s)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            IomixProfile("bad", request_bytes=0).validate()
        with pytest.raises(ValueError):
            IomixProfile("bad", read_fraction=2.0).validate()
        stack = tiny_stack()
        with pytest.raises(ValueError):
            run_iomix(stack.device, STANDARD_PROFILES[0], requests=0)
