"""Tests for the workload description language and execution engine."""

import pytest

from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads.fileset import FilesetSpec, single_file_fileset
from repro.workloads.randomdist import FixedValue
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpType,
    WorkloadEngine,
    WorkloadSpec,
)

KiB = 1024
MiB = 1024 * 1024


def make_stack(seed=13):
    return build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0), seed=seed)


def simple_spec(**overrides) -> WorkloadSpec:
    values = dict(
        name="test-workload",
        flowops=[FlowOp(op=OpType.READ, iosize=8 * KiB, offset_mode=OffsetMode.RANDOM)],
        fileset=single_file_fileset(2 * MiB),
        threads=1,
        op_overhead_ns=10_000.0,
    )
    values.update(overrides)
    return WorkloadSpec(**values)


class TestSpecValidation:
    def test_valid_spec(self):
        simple_spec().validate()

    def test_empty_flowops_rejected(self):
        with pytest.raises(ValueError):
            simple_spec(flowops=[]).validate()

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            simple_spec(threads=0).validate()

    def test_flowop_validation(self):
        with pytest.raises(ValueError):
            FlowOp(op=OpType.READ, iosize=0)
        with pytest.raises(ValueError):
            FlowOp(op=OpType.READ, repeat=0)
        with pytest.raises(ValueError):
            FlowOp(op=OpType.READ, think_ns=-1)


class TestEngineExecution:
    def test_run_by_op_count(self):
        engine = WorkloadEngine(make_stack(), simple_spec(), seed=1)
        executed = engine.run(max_ops=100)
        assert executed == 100
        assert engine.ops_executed == 100

    def test_run_by_duration(self):
        stack = make_stack()
        engine = WorkloadEngine(stack, simple_spec(), seed=1)
        engine.run(duration_s=0.5)
        assert stack.clock.now_s >= 0.5

    def test_run_requires_a_stop_condition(self):
        engine = WorkloadEngine(make_stack(), simple_spec(), seed=1)
        with pytest.raises(ValueError):
            engine.run()

    def test_callback_receives_every_operation(self):
        records = []
        engine = WorkloadEngine(make_stack(), simple_spec(), seed=1, on_op=records.append)
        engine.run(max_ops=50)
        assert len(records) == 50
        assert all(r.latency_ns >= 0 for r in records)
        assert all(r.op is OpType.READ for r in records)
        # Timestamps must be monotonically non-decreasing.
        times = [r.end_time_ns for r in records]
        assert times == sorted(times)

    def test_op_overhead_slows_down_throughput(self):
        def ops_per_second(overhead):
            stack = make_stack()
            # A small, quickly cached file so that the comparison measures the
            # engine overhead rather than the (identical) cold-miss cost.
            spec = simple_spec(
                op_overhead_ns=overhead, fileset=single_file_fileset(128 * KiB)
            )
            engine = WorkloadEngine(stack, spec, seed=1)
            engine.run(max_ops=3000)
            return 3000 / stack.clock.now_s

        assert ops_per_second(0.0) > ops_per_second(200_000.0) * 2

    def test_same_seed_reproducible(self):
        def latencies(seed):
            records = []
            engine = WorkloadEngine(make_stack(3), simple_spec(), seed=seed, on_op=records.append)
            engine.run(max_ops=80)
            return [r.latency_ns for r in records]

        assert latencies(5) == latencies(5)
        assert latencies(5) != latencies(6)

    def test_setup_is_idempotent(self):
        engine = WorkloadEngine(make_stack(), simple_spec(), seed=1)
        first = engine.setup()
        second = engine.setup()
        assert first is second


class TestOperationTypes:
    def test_write_workload_dirties_cache(self):
        stack = make_stack()
        spec = simple_spec(
            flowops=[FlowOp(op=OpType.WRITE, iosize=8 * KiB, offset_mode=OffsetMode.RANDOM)]
        )
        WorkloadEngine(stack, spec, seed=1).run(max_ops=20)
        assert stack.vfs.stats.writes == 20

    def test_append_grows_file(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="logs", file_count=1, size_distribution=FixedValue(8 * KiB)),
            flowops=[FlowOp(op=OpType.APPEND, iosize=4 * KiB)],
        )
        engine = WorkloadEngine(stack, spec, seed=1)
        engine.run(max_ops=10)
        inode = stack.vfs.fs.resolve(engine.fileset.path_of(0))
        assert inode.size_bytes == 8 * KiB + 10 * 4 * KiB

    def test_create_adds_files(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=2, size_distribution=FixedValue(4 * KiB)),
            flowops=[FlowOp(op=OpType.CREATE)],
        )
        engine = WorkloadEngine(stack, spec, seed=1)
        engine.run(max_ops=15)
        assert len(engine.fileset) == 17

    def test_delete_removes_files(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=30, size_distribution=FixedValue(4 * KiB)),
            flowops=[FlowOp(op=OpType.DELETE)],
        )
        engine = WorkloadEngine(stack, spec, seed=1)
        engine.run(max_ops=10)
        assert len(engine.fileset) == 20
        for path in engine.fileset.paths:
            assert stack.vfs.fs.exists(path)

    def test_create_delete_churn_stays_consistent(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=10, size_distribution=FixedValue(4 * KiB)),
            flowops=[FlowOp(op=OpType.CREATE), FlowOp(op=OpType.DELETE)],
        )
        engine = WorkloadEngine(stack, spec, seed=1)
        engine.run(max_ops=200)
        # Every path the engine believes exists must really exist.
        for path in engine.fileset.paths:
            assert stack.vfs.fs.exists(path)

    def test_stat_and_open_close(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=5, size_distribution=FixedValue(4 * KiB)),
            flowops=[
                FlowOp(op=OpType.STAT, file_selector=FileSelector.RANDOM),
                FlowOp(op=OpType.OPEN, file_selector=FileSelector.RANDOM),
                FlowOp(op=OpType.CLOSE, file_selector=FileSelector.RANDOM),
            ],
        )
        WorkloadEngine(stack, spec, seed=1).run(max_ops=30)
        assert stack.vfs.stats.stats_calls >= 10

    def test_fsync_flowop(self):
        stack = make_stack()
        spec = simple_spec(
            flowops=[
                FlowOp(op=OpType.WRITE, iosize=8 * KiB, offset_mode=OffsetMode.RANDOM),
                FlowOp(op=OpType.FSYNC),
            ]
        )
        WorkloadEngine(stack, spec, seed=1).run(max_ops=10)
        assert stack.vfs.stats.fsyncs >= 4

    def test_read_whole_file_moves_all_bytes(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=1, size_distribution=FixedValue(256 * KiB)),
            flowops=[FlowOp(op=OpType.READ_WHOLE_FILE, iosize=64 * KiB)],
        )
        records = []
        WorkloadEngine(stack, spec, seed=1, on_op=records.append).run(max_ops=2)
        assert all(r.bytes_moved == 256 * KiB for r in records)

    def test_delay_flowop_advances_time_without_io(self):
        stack = make_stack()
        spec = simple_spec(flowops=[FlowOp(op=OpType.DELAY, think_ns=5_000_000.0)], op_overhead_ns=0.0)
        WorkloadEngine(stack, spec, seed=1).run(max_ops=10)
        assert stack.clock.now_ns >= 50_000_000.0
        assert stack.vfs.stats.reads == 0


class TestMultiThreaded:
    def test_multiple_threads_execute_round_robin(self):
        stack = make_stack()
        records = []
        spec = simple_spec(threads=4)
        WorkloadEngine(stack, spec, seed=1, on_op=records.append).run(max_ops=40)
        assert {r.thread for r in records} == {0, 1, 2, 3}

    def test_round_robin_selector_staggers_files(self):
        stack = make_stack()
        spec = simple_spec(
            fileset=FilesetSpec(name="pool", file_count=8, size_distribution=FixedValue(16 * KiB)),
            flowops=[FlowOp(op=OpType.READ, iosize=4 * KiB, file_selector=FileSelector.ROUND_ROBIN)],
            threads=2,
        )
        engine = WorkloadEngine(stack, spec, seed=1)
        engine.run(max_ops=16)
        assert stack.vfs.stats.reads == 16
