"""Tests for NanoBenchmark, the suite, and self-scaling sweeps."""

import pytest

from repro.core.benchmark import NanoBenchmark
from repro.core.dimensions import Dimension, DimensionVector
from repro.core.runner import BenchmarkConfig, EnvironmentNoise, WarmupMode
from repro.core.selfscaling import SelfScalingBenchmark
from repro.core.suite import NanoBenchmarkSuite, default_suite
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload

MiB = 1024 * 1024


def quick_protocol(**overrides):
    values = dict(
        duration_s=0.5,
        repetitions=2,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
        noise=EnvironmentNoise(enabled=False),
    )
    values.update(overrides)
    return BenchmarkConfig(**values)


class TestNanoBenchmark:
    def make_benchmark(self):
        return NanoBenchmark(
            name="inmemory",
            description="random reads of a cached file",
            workload_factory=lambda: random_read_workload(2 * MiB),
            dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
            config=quick_protocol(),
        )

    def test_build_workload_returns_fresh_specs(self):
        benchmark = self.make_benchmark()
        assert benchmark.build_workload() is not benchmark.build_workload()

    def test_primary_dimension(self):
        assert self.make_benchmark().primary_dimension() is Dimension.CACHING
        empty = NanoBenchmark("x", "d", lambda: random_read_workload(MiB))
        assert empty.primary_dimension() is None

    def test_run_returns_repetitions(self):
        benchmark = self.make_benchmark()
        result = benchmark.run("ext2", testbed=scaled_testbed(1.0 / 16.0))
        assert len(result) == 2
        assert result.throughput_summary().mean > 0

    def test_describe_mentions_dimensions(self):
        assert "caching" in self.make_benchmark().describe()


class TestDefaultSuite:
    def test_covers_the_papers_minimum_components(self):
        suite = default_suite()
        names = " ".join(b.name for b in suite)
        assert "inmemory" in names
        assert "ondisk" in names
        assert "cache-warmup" in names
        assert "metadata" in names
        covered = set()
        for benchmark in suite:
            covered.update(benchmark.dimensions.covered_dimensions())
        assert covered == set(Dimension)

    def test_each_component_isolates_something(self):
        for benchmark in default_suite():
            assert any(benchmark.dimensions.isolates(d) for d in Dimension), benchmark.name

    def test_working_sets_derived_from_testbed(self):
        big = default_suite(scaled_testbed(1.0))
        small = default_suite(scaled_testbed(0.125))
        big_size = big[0].build_workload().fileset.size_distribution.mean()
        small_size = small[0].build_workload().fileset.size_distribution.mean()
        assert big_size > small_size


class TestSuiteRun:
    def test_suite_runs_across_filesystems(self):
        testbed = scaled_testbed(1.0 / 16.0)
        benchmarks = [
            NanoBenchmark(
                name="inmemory-mini",
                description="cached random reads",
                workload_factory=lambda: random_read_workload(2 * MiB),
                dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
                config=quick_protocol(),
            ),
            NanoBenchmark(
                name="ondisk-mini",
                description="cold random reads",
                workload_factory=lambda: random_read_workload(16 * MiB),
                dimensions=DimensionVector.of(isolates=[Dimension.ONDISK]),
                config=quick_protocol(warmup_mode=WarmupMode.NONE),
            ),
        ]
        suite = NanoBenchmarkSuite(benchmarks=benchmarks, testbed=testbed)
        result = suite.run(fs_types=("ext2", "xfs"))
        assert result.benchmark_names() == ["inmemory-mini", "ondisk-mini"]
        assert result.filesystems() == ["ext2", "xfs"]
        for benchmark_name in result.benchmark_names():
            for fs_name in result.filesystems():
                assert len(result.result_for(benchmark_name, fs_name)) == 2
        by_dimension = result.by_dimension()
        assert Dimension.CACHING in by_dimension
        assert Dimension.ONDISK in by_dimension

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            NanoBenchmarkSuite(benchmarks=[])
        suite = NanoBenchmarkSuite(testbed=scaled_testbed(1.0 / 16.0), quick=True)
        with pytest.raises(ValueError):
            suite.run(fs_types=())


class TestSelfScaling:
    def test_locates_the_cache_cliff(self):
        testbed = scaled_testbed(1.0 / 16.0)
        cache_bytes = testbed.page_cache_bytes
        benchmark = SelfScalingBenchmark(
            workload_for_parameter=lambda size: random_read_workload(int(size)),
            fs_type="ext2",
            testbed=testbed,
            config=quick_protocol(),
            parameter_name="file_size",
            unit="bytes",
        )
        result = benchmark.run(
            low=cache_bytes * 0.5,
            high=cache_bytes * 2.0,
            coarse_points=5,
            resolution=cache_bytes * 0.05,
        )
        assert result.transition_low is not None
        # The located transition must straddle (or closely bracket) the cache size.
        assert result.transition_low <= cache_bytes * 1.25
        assert result.transition_high >= cache_bytes * 0.75
        assert result.evaluations >= 5
        assert result.sweep.dynamic_range() > 5
        assert "Transition" in result.describe("bytes")

    def test_no_transition_on_flat_region(self):
        testbed = scaled_testbed(1.0 / 16.0)
        benchmark = SelfScalingBenchmark(
            workload_for_parameter=lambda size: random_read_workload(int(size)),
            fs_type="ext2",
            testbed=testbed,
            config=quick_protocol(),
        )
        cache_bytes = testbed.page_cache_bytes
        result = benchmark.run(
            low=cache_bytes * 0.1, high=cache_bytes * 0.4, coarse_points=4
        )
        assert result.transition_low is None
        assert "No sharp transition" in result.describe()

    def test_invalid_arguments(self):
        benchmark = SelfScalingBenchmark(
            workload_for_parameter=lambda size: random_read_workload(int(size)),
            config=quick_protocol(),
        )
        with pytest.raises(ValueError):
            benchmark.run(low=10, high=5)
        with pytest.raises(ValueError):
            benchmark.run(low=1, high=10, coarse_points=2)
        with pytest.raises(ValueError):
            SelfScalingBenchmark(lambda s: None, drop_threshold=1.5)
