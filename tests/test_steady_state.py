"""Tests for warm-up trimming and steady-state detection."""

import pytest

from repro.core.steady_state import (
    SteadyStateDetector,
    detect_steady_state,
    steady_state_values,
    trim_warmup,
)


def warmup_then_flat(warmup: int = 10, flat: int = 20) -> list:
    """A synthetic throughput curve: rising warm-up, then a stable plateau."""
    rising = [100.0 * (i + 1) for i in range(warmup)]
    plateau = [100.0 * warmup + (i % 3) for i in range(flat)]
    return rising + plateau


class TestTrimWarmup:
    def test_drops_leading_fraction(self):
        values = list(range(10))
        assert trim_warmup(values, 0.5) == [5, 6, 7, 8, 9]

    def test_zero_fraction_keeps_everything(self):
        assert trim_warmup([1, 2, 3], 0.0) == [1, 2, 3]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            trim_warmup([1], 1.0)


class TestDetectSteadyState:
    def test_detects_plateau_after_warmup(self):
        series = warmup_then_flat()
        index = detect_steady_state(series, window=5)
        assert index is not None
        assert index >= 8  # not during the steep rise

    def test_flat_series_is_steady_from_the_start(self):
        assert detect_steady_state([100.0] * 10, window=5) == 0

    def test_monotonically_rising_series_never_steady(self):
        series = [float(2 ** i) for i in range(12)]
        assert detect_steady_state(series, window=4) is None

    def test_too_short_series(self):
        assert detect_steady_state([1.0, 2.0], window=5) is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            detect_steady_state([1.0, 2.0, 3.0], window=1)

    def test_steady_state_values_returns_tail(self):
        series = warmup_then_flat()
        tail = steady_state_values(series, window=5)
        assert tail
        assert tail == series[detect_steady_state(series, window=5):]

    def test_steady_state_values_empty_when_never_steady(self):
        assert steady_state_values([float(2 ** i) for i in range(12)], window=4) == []

    def test_all_zero_series_is_steady(self):
        assert detect_steady_state([0.0] * 8, window=4) == 0


class TestIncrementalDetector:
    def test_becomes_steady_on_plateau(self):
        detector = SteadyStateDetector(window=5)
        for value in warmup_then_flat():
            detector.observe(value)
        assert detector.is_steady
        assert detector.steady_since is not None
        assert detector.warmup_intervals() == detector.steady_since

    def test_not_steady_during_rise(self):
        detector = SteadyStateDetector(window=5)
        for value in [100.0 * (i + 1) for i in range(8)]:
            assert not detector.observe(value)
        assert not detector.is_steady

    def test_observed_returns_history(self):
        detector = SteadyStateDetector(window=3)
        for value in [1.0, 2.0, 3.0]:
            detector.observe(value)
        assert detector.observed() == [1.0, 2.0, 3.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SteadyStateDetector(window=1)
