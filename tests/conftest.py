"""Shared fixtures.

Workload-running tests use aggressively shrunken testbeds so the whole suite
stays fast: shrinking RAM and file sizes together preserves every behaviour
the tests assert on (cache-boundary cliffs, warm-up ordering, bi-modality)
while cutting simulated operation counts by an order of magnitude.
"""

from __future__ import annotations

import random

import pytest

from repro.core.runner import BenchmarkConfig, EnvironmentNoise, WarmupMode
from repro.fs.stack import build_stack
from repro.storage.config import paper_testbed, scaled_testbed

MiB = 1024 * 1024


@pytest.fixture
def rng():
    """A deterministic random source for model-level tests."""
    return random.Random(1234)


@pytest.fixture
def tiny_testbed():
    """A 1/16-scale machine (32 MiB RAM, ~25.6 MiB page cache)."""
    return scaled_testbed(1.0 / 16.0)


@pytest.fixture
def small_testbed():
    """A 1/8-scale machine (64 MiB RAM, ~51 MiB page cache)."""
    return scaled_testbed(1.0 / 8.0)


@pytest.fixture
def full_testbed():
    """The paper's 512 MiB machine."""
    return paper_testbed()


@pytest.fixture
def ext2_stack(tiny_testbed):
    """An ext2 stack on the tiny testbed."""
    return build_stack("ext2", testbed=tiny_testbed, seed=7)


@pytest.fixture
def ext3_stack(tiny_testbed):
    """An ext3 stack on the tiny testbed."""
    return build_stack("ext3", testbed=tiny_testbed, seed=7)


@pytest.fixture
def xfs_stack(tiny_testbed):
    """An xfs stack on the tiny testbed."""
    return build_stack("xfs", testbed=tiny_testbed, seed=7)


@pytest.fixture
def quick_config():
    """A fast measurement protocol for runner-level tests."""
    return BenchmarkConfig(
        duration_s=1.0,
        repetitions=2,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
        seed=11,
        noise=EnvironmentNoise(cache_noise_bytes=1 * MiB, cpu_noise_sigma=0.01),
    )


@pytest.fixture
def no_noise_config():
    """A fast protocol with environment noise disabled (deterministic)."""
    return BenchmarkConfig(
        duration_s=1.0,
        repetitions=2,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
        seed=11,
        noise=EnvironmentNoise(enabled=False),
    )
