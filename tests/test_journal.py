"""Tests for the write-ahead journal."""

import pytest

from repro.fs.journal import Journal, Transaction


def make_journal(**kwargs) -> Journal:
    defaults = dict(start_block=1000, size_blocks=256, block_size=4096)
    defaults.update(kwargs)
    return Journal(**defaults)


class TestTransaction:
    def test_duplicate_blocks_collapsed(self):
        txn = Transaction()
        txn.add_block(5)
        txn.add_block(5)
        txn.add_block(7)
        assert txn.metadata_blocks == [5, 7]

    def test_logged_blocks_includes_commit_record(self):
        txn = Transaction()
        txn.add_block(5)
        assert txn.logged_blocks == 2

    def test_data_journaling_adds_blocks(self):
        txn = Transaction(data_blocks=4)
        txn.add_block(5)
        assert txn.logged_blocks == 6


class TestJournalCommit:
    def test_commit_produces_sequential_writes_in_journal_region(self):
        journal = make_journal()
        txn = Transaction()
        for block in range(5):
            txn.add_block(block)
        requests, barrier = journal.commit(txn)
        assert barrier is True
        assert all(r.is_write for r in requests)
        for request in requests:
            assert 1000 * 4096 <= request.offset_bytes < (1000 + 256) * 4096

    def test_commit_without_barriers(self):
        journal = make_journal(use_barriers=False)
        _, barrier = journal.commit(Transaction(metadata_blocks=[1]))
        assert barrier is False

    def test_commits_accumulate_stats(self):
        journal = make_journal()
        journal.commit(Transaction(metadata_blocks=[1, 2]))
        journal.commit(Transaction(metadata_blocks=[3]))
        assert journal.stats.commits == 2
        assert journal.stats.blocks_logged == 5  # 3 + 2 commit records

    def test_wrap_around_splits_request(self):
        journal = make_journal(size_blocks=16)
        # Fill most of the log, then commit something that wraps.
        journal.commit(Transaction(metadata_blocks=list(range(100, 112))))
        requests, _ = journal.commit(Transaction(metadata_blocks=list(range(200, 208))))
        journal_writes = [r for r in requests if r.offset_bytes >= 1000 * 4096]
        assert len(journal_writes) >= 2

    def test_oversized_transaction_rejected(self):
        journal = make_journal(size_blocks=8)
        with pytest.raises(ValueError):
            journal.commit(Transaction(metadata_blocks=list(range(20))))

    def test_checkpoint_triggered_when_log_fills(self):
        journal = make_journal(size_blocks=32, checkpoint_threshold=0.5)
        home_writes = []
        for round_number in range(10):
            txn = Transaction(metadata_blocks=[round_number * 4 + i for i in range(4)])
            requests, _ = journal.commit(txn)
            home_writes.extend(r for r in requests if r.offset_bytes < 1000 * 4096)
            if home_writes:
                break
        assert home_writes, "expected a checkpoint to write blocks to their home locations"
        assert journal.stats.checkpoints >= 1
        assert journal.used_blocks == 0

    def test_force_checkpoint(self):
        journal = make_journal()
        journal.commit(Transaction(metadata_blocks=[1, 2, 3]))
        requests = journal.force_checkpoint()
        assert len(requests) == 3
        assert journal.force_checkpoint() == []

    def test_utilization_tracks_pending_blocks(self):
        journal = make_journal(size_blocks=100, checkpoint_threshold=1.0)
        assert journal.utilization == 0.0
        journal.commit(Transaction(metadata_blocks=list(range(10))))
        assert journal.utilization == pytest.approx(0.1)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Journal(start_block=0, size_blocks=1)
        with pytest.raises(ValueError):
            Journal(start_block=0, size_blocks=100, checkpoint_threshold=0.0)
