"""Tests for the dimension taxonomy."""

import pytest

from repro.core.dimensions import Coverage, Dimension, DimensionVector


class TestDimension:
    def test_five_dimensions_in_table_order(self):
        ordered = Dimension.ordered()
        assert len(ordered) == 5
        assert ordered[0] is Dimension.IO
        assert ordered[-1] is Dimension.SCALING

    def test_titles_and_descriptions(self):
        for dimension in Dimension:
            assert dimension.title
            assert dimension.description.endswith(".")

    def test_constructible_from_string(self):
        assert Dimension("caching") is Dimension.CACHING


class TestCoverage:
    def test_symbols_match_table_legend(self):
        assert Coverage.ISOLATES.symbol == "*"
        assert Coverage.EXERCISES.symbol == "o"
        assert Coverage.TRACE_DEPENDENT.symbol == "#"
        assert Coverage.NONE.symbol == " "

    def test_scores_ordered(self):
        assert (
            Coverage.ISOLATES.score
            > Coverage.EXERCISES.score
            > Coverage.TRACE_DEPENDENT.score
            > Coverage.NONE.score
        )


class TestDimensionVector:
    def test_defaults_to_no_coverage(self):
        vector = DimensionVector()
        assert not any(vector.covers(d) for d in Dimension)
        assert vector.isolation_score() == 0.0

    def test_of_constructor(self):
        vector = DimensionVector.of(isolates=[Dimension.IO], exercises=[Dimension.CACHING])
        assert vector.isolates(Dimension.IO)
        assert vector.covers(Dimension.CACHING)
        assert not vector.isolates(Dimension.CACHING)
        assert not vector.covers(Dimension.METADATA)

    def test_isolates_takes_precedence_over_exercises(self):
        vector = DimensionVector.of(isolates=[Dimension.IO], exercises=[Dimension.IO])
        assert vector[Dimension.IO] is Coverage.ISOLATES

    def test_from_names(self):
        vector = DimensionVector.from_names(["caching", "io"])
        assert vector.covers(Dimension.CACHING)
        assert vector.covers(Dimension.IO)

    def test_row_symbols_in_order(self):
        vector = DimensionVector.of(isolates=[Dimension.IO], trace=[Dimension.SCALING])
        assert vector.row_symbols() == ["*", " ", " ", " ", "#"]

    def test_covered_dimensions_ordered(self):
        vector = DimensionVector.of(exercises=[Dimension.SCALING, Dimension.IO])
        assert vector.covered_dimensions() == [Dimension.IO, Dimension.SCALING]

    def test_merge_max_keeps_stronger_coverage(self):
        a = DimensionVector.of(isolates=[Dimension.IO])
        b = DimensionVector.of(exercises=[Dimension.IO, Dimension.CACHING])
        merged = a.merge_max(b)
        assert merged[Dimension.IO] is Coverage.ISOLATES
        assert merged[Dimension.CACHING] is Coverage.EXERCISES

    def test_describe(self):
        vector = DimensionVector.of(isolates=[Dimension.METADATA])
        assert "metadata" in vector.describe()
        assert DimensionVector().describe() == "covers nothing"

    def test_isolation_score(self):
        vector = DimensionVector.of(isolates=[Dimension.IO], exercises=[Dimension.CACHING])
        assert vector.isolation_score() == pytest.approx(1.5)
