"""Tests for result containers and the benchmark runner."""

import pytest

from repro.core.histogram import from_latencies
from repro.core.results import RepetitionSet, RunResult, SweepResult
from repro.core.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    EnvironmentNoise,
    WarmupMode,
)
from repro.core.timeline import IntervalSeries
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload, create_delete_workload

MiB = 1024 * 1024


def make_run(throughput=100.0, repetition=0, hit_ratio=1.0, latencies=None) -> RunResult:
    histogram = from_latencies(latencies if latencies is not None else [1000.0] * 10)
    return RunResult(
        workload_name="w",
        fs_name="ext2",
        repetition=repetition,
        seed=repetition,
        measured_duration_s=10.0,
        warmup_duration_s=1.0,
        operations=int(throughput * 10),
        throughput_ops_s=throughput,
        histogram=histogram,
        timeline=IntervalSeries(interval_s=1.0),
        cache_hit_ratio=hit_ratio,
    )


class TestRunResult:
    def test_latency_properties(self):
        run = make_run(latencies=[1000.0, 2000.0, 3000.0])
        assert run.mean_latency_ns == pytest.approx(2000.0)
        assert run.p95_latency_ns >= run.mean_latency_ns
        assert run.p99_latency_ns >= run.p95_latency_ns

    def test_describe(self):
        assert "ext2" in make_run().describe()


class TestRepetitionSet:
    def test_aggregation(self):
        repetitions = RepetitionSet(label="test")
        for i, throughput in enumerate([100.0, 110.0, 90.0]):
            repetitions.add(make_run(throughput, repetition=i))
        assert len(repetitions) == 3
        assert repetitions.throughputs() == [100.0, 110.0, 90.0]
        summary = repetitions.throughput_summary()
        assert summary.mean == pytest.approx(100.0)
        assert repetitions.latency_summary().n == 3
        assert repetitions.merged_histogram().total == 30
        assert repetitions.first().repetition == 0
        assert len(repetitions.hit_ratios()) == 3

    def test_iterable(self):
        repetitions = RepetitionSet(label="test", runs=[make_run()])
        assert [run.fs_name for run in repetitions] == ["ext2"]


class TestSweepResult:
    def make_sweep(self):
        sweep = SweepResult(parameter_name="file_size", unit="MB")
        for size, throughput in [(64, 9700.0), (128, 9650.0), (512, 400.0), (1024, 200.0)]:
            repetitions = RepetitionSet(label=str(size))
            for i in range(3):
                repetitions.add(make_run(throughput * (1.0 + 0.01 * i), repetition=i))
            sweep.add(size, repetitions)
        return sweep

    def test_parameters_sorted(self):
        assert self.make_sweep().parameters() == [64.0, 128.0, 512.0, 1024.0]

    def test_mean_throughputs_and_rsd(self):
        sweep = self.make_sweep()
        means = dict(sweep.mean_throughputs())
        assert means[64.0] > means[1024.0]
        assert all(rsd >= 0 for _, rsd in sweep.relative_stddevs())

    def test_fragility_and_dynamic_range(self):
        sweep = self.make_sweep()
        assert sweep.fragility() > 0.9  # the 128 -> 512 cliff
        assert sweep.dynamic_range() > 40

    def test_repetitions_at(self):
        sweep = self.make_sweep()
        assert len(sweep.repetitions_at(64)) == 3
        with pytest.raises(KeyError):
            sweep.repetitions_at(999)


class TestBenchmarkConfigValidation:
    def test_defaults_valid(self):
        BenchmarkConfig().validate()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(duration_s=0, max_ops=None).validate()
        with pytest.raises(ValueError):
            BenchmarkConfig(repetitions=0).validate()
        with pytest.raises(ValueError):
            BenchmarkConfig(interval_s=0).validate()
        with pytest.raises(ValueError):
            BenchmarkConfig(histogram_interval_s=0).validate()
        with pytest.raises(ValueError):
            BenchmarkConfig(warmup_mode=WarmupMode.DURATION, warmup_s=0).validate()
        with pytest.raises(ValueError):
            BenchmarkConfig(noise=EnvironmentNoise(cache_noise_bytes=-1)).validate()

    def test_with_repetitions_copy(self):
        config = BenchmarkConfig(repetitions=3)
        assert config.with_repetitions(7).repetitions == 7
        assert config.repetitions == 3


class TestBenchmarkRunner:
    @pytest.fixture
    def testbed(self):
        return scaled_testbed(1.0 / 16.0)

    def test_run_produces_requested_repetitions(self, testbed, no_noise_config):
        runner = BenchmarkRunner("ext2", testbed=testbed, config=no_noise_config)
        repetitions = runner.run(random_read_workload(4 * MiB))
        assert len(repetitions) == no_noise_config.repetitions
        for run in repetitions:
            assert run.operations > 0
            assert run.throughput_ops_s > 0
            assert run.measured_duration_s >= no_noise_config.duration_s * 0.9
            assert run.histogram.total == run.operations

    def test_prewarm_gives_memory_bound_results(self, testbed, no_noise_config):
        runner = BenchmarkRunner("ext2", testbed=testbed, config=no_noise_config)
        run = runner.run_once(random_read_workload(4 * MiB))
        assert run.cache_hit_ratio > 0.99
        assert run.warmup_duration_s > 0

    def test_cold_run_measures_the_disk(self, testbed):
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE,
            noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(16 * MiB))
        assert run.cache_hit_ratio < 0.9
        assert run.device_reads > 0

    def test_same_seed_is_reproducible_without_noise(self, testbed, no_noise_config):
        runner = BenchmarkRunner("ext2", testbed=testbed, config=no_noise_config)
        first = runner.run_once(random_read_workload(4 * MiB), repetition=0)
        second = runner.run_once(random_read_workload(4 * MiB), repetition=0)
        assert first.throughput_ops_s == pytest.approx(second.throughput_ops_s)

    def test_noise_perturbs_environment(self, testbed):
        config = BenchmarkConfig(
            duration_s=0.5, repetitions=3, warmup_mode=WarmupMode.PREWARM,
            noise=EnvironmentNoise(cache_noise_bytes=4 * MiB, cpu_noise_sigma=0.05),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        repetitions = runner.run(random_read_workload(2 * MiB))
        caches = {run.environment["page_cache_bytes"] for run in repetitions}
        cpu_factors = {run.environment["cpu_speed_factor"] for run in repetitions}
        assert len(caches) > 1
        assert len(cpu_factors) > 1

    def test_duration_warmup_mode(self, testbed):
        config = BenchmarkConfig(
            duration_s=0.5, repetitions=1, warmup_mode=WarmupMode.DURATION, warmup_s=0.5,
            noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(2 * MiB))
        assert run.warmup_duration_s >= 0.5

    def test_steady_state_warmup_mode(self, testbed):
        config = BenchmarkConfig(
            duration_s=0.5, repetitions=1, warmup_mode=WarmupMode.STEADY_STATE,
            max_warmup_s=20.0, interval_s=0.5, noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(2 * MiB))
        assert run.operations > 0

    def test_max_ops_limit(self, testbed):
        config = BenchmarkConfig(
            duration_s=0.0, max_ops=123, repetitions=1, warmup_mode=WarmupMode.PREWARM,
            noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(2 * MiB))
        assert run.operations == 123

    def test_histogram_timeline_collection(self, testbed):
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE,
            histogram_interval_s=0.25, noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(8 * MiB))
        assert run.histogram_timeline is not None
        assert len(run.histogram_timeline) >= 2

    def test_raw_latency_collection(self, testbed):
        config = BenchmarkConfig(
            duration_s=0.2, repetitions=1, collect_raw_latencies=True,
            warmup_mode=WarmupMode.PREWARM, noise=EnvironmentNoise(enabled=False),
        )
        runner = BenchmarkRunner("ext2", testbed=testbed, config=config)
        run = runner.run_once(random_read_workload(1 * MiB))
        assert run.raw_latencies_ns is not None
        assert len(run.raw_latencies_ns) == run.operations

    def test_metadata_workload_through_runner(self, testbed, no_noise_config):
        runner = BenchmarkRunner("ext3", testbed=testbed, config=no_noise_config)
        repetitions = runner.run(create_delete_workload(file_count=50, directories=5))
        assert repetitions.throughput_summary().mean > 0

    @pytest.mark.parametrize("fs_type", ["ext2", "ext3", "ext4", "xfs"])
    def test_all_filesystems_run(self, fs_type, testbed, no_noise_config):
        runner = BenchmarkRunner(fs_type, testbed=testbed, config=no_noise_config)
        run = runner.run_once(random_read_workload(2 * MiB))
        assert run.fs_name == fs_type

    def test_custom_stack_factory_used(self, testbed, no_noise_config):
        calls = []

        def factory(fs_type, testbed_arg, seed, cpu_factor):
            from repro.fs.stack import build_stack

            calls.append(fs_type)
            return build_stack(fs_type, testbed=testbed_arg, seed=seed, cpu_speed_factor=cpu_factor)

        runner = BenchmarkRunner("ext2", testbed=testbed, config=no_noise_config, stack_factory=factory)
        runner.run_once(random_read_workload(1 * MiB))
        assert calls == ["ext2"]
