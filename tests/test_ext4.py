"""Tests for the Ext4 model: the journal x delalloc interaction, the
multi-block allocator, snapshot round-trips, and the fourth survey cell.

The acceptance contract:

* ext4 is registered and buildable like the three case-study file systems;
* delayed allocations resolve before every journal commit (the code path
  that exists in neither the ext3 nor the xfs model);
* :class:`MultiBlockAllocator` places requests contiguously where the
  block-group allocator would split;
* ext4 states snapshot and restore bit-identically (same fingerprint), and
  restored re-runs are bit-identical;
* aged ext4 is measurably slower than fresh ext4;
* the survey grid has a fourth, distinguishable cell, serial and parallel
  runs agree bit-for-bit, and ext4 cache keys never collide with ext3/xfs.
"""

import inspect
import json
import tempfile

import pytest

from repro.aging import (
    AgingConfig,
    ChurnAger,
    load_snapshot,
    measure_fragmentation,
    restore_stack,
    run_aged_vs_fresh,
    save_snapshot,
    snapshot_stack,
)
from repro.core.benchmark import NanoBenchmark
from repro.core.dimensions import Dimension, DimensionVector
from repro.core.parallel import cache_key
from repro.core.persistence import run_result_to_dict
from repro.core.runner import BenchmarkConfig, WarmupMode, run_single_repetition
from repro.core.suite import NanoBenchmarkSuite
from repro.core.survey import MeasuredSurvey
from repro.fs.allocation import BlockGroupAllocator, MultiBlockAllocator
from repro.fs.ext3 import JournalMode
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.journal import Journal
from repro.fs.stack import DEFAULT_FS_TYPES, FS_REGISTRY, build_stack
from repro.fs.xfs import XfsFileSystem
from repro.storage.config import scaled_testbed
from repro.workloads.micro import create_delete_workload, sequential_read_workload

GiB = 1024 ** 3
MiB = 1024 ** 2

TESTBED = scaled_testbed(0.0625)


def tiny_aging_config(seed: int = 777) -> AgingConfig:
    """The same unit-test aging profile tests/test_aging.py uses."""
    return AgingConfig(
        free_space_target_bytes=64 * MiB,
        hole_bytes=256 * 1024,
        fill_file_bytes=2048 * MiB,
        churn_ops=50,
        seed=seed,
    )


# --------------------------------------------------------------------------
class TestExt4Model:
    def test_registered_and_buildable(self):
        assert "ext4" in FS_REGISTRY
        assert "ext4" in DEFAULT_FS_TYPES
        stack = build_stack("ext4", testbed=TESTBED, seed=7)
        assert stack.fs_name == "ext4"
        assert isinstance(stack.fs, Ext4FileSystem)

    def test_personality_is_the_missing_hybrid(self):
        fs = Ext4FileSystem(capacity_bytes=4 * GiB)
        # From the ext3 family: a journal with mount modes.
        assert isinstance(fs.journal, Journal)
        assert fs.journal_mode is JournalMode.ORDERED
        # From the xfs family: delalloc, extents, B-tree-ish directories.
        assert fs.delayed_allocation
        assert isinstance(fs.allocator, MultiBlockAllocator)
        assert not fs.directory_scan_is_linear
        assert fs.cluster_pages == 8

    def test_delalloc_resolves_before_journal_commit(self):
        """The defining ext4 quirk: a commit materialises reservations."""
        fs = Ext4FileSystem(capacity_bytes=4 * GiB)
        inode, _ = fs.create("/f", 0.0)
        fs.allocate_range(inode, 0, 8 * MiB, 1.0)
        assert inode.blocks_allocated() == 0  # reservation only
        assert fs.delalloc_reserved_bytes() == 8 * MiB

        # Any metadata operation commits the journal, which must resolve
        # the outstanding reservation first.
        fs.create("/other", 2.0)
        assert inode.blocks_allocated() == (8 * MiB) // fs.block_size
        assert fs.delalloc_reserved_bytes() == 0

    def test_writeback_mode_does_not_force_resolution(self):
        fs = Ext4FileSystem(capacity_bytes=4 * GiB, journal_mode=JournalMode.WRITEBACK)
        inode, _ = fs.create("/f", 0.0)
        fs.allocate_range(inode, 0, 4 * MiB, 1.0)
        fs.create("/other", 2.0)
        # data=writeback does not order data against the commit record.
        assert inode.blocks_allocated() == 0
        assert fs.delalloc_reserved_bytes() == 4 * MiB

    def test_fsync_flushes_delalloc_and_commits(self):
        fs = Ext4FileSystem(capacity_bytes=4 * GiB)
        inode, _ = fs.create("/f", 0.0)
        commits_before = fs.stats.journal_commits
        fs.allocate_range(inode, 0, 2 * MiB, 1.0)
        cost = fs.fsync_cost(inode, dirty_data_pages=4, now_ns=2.0)
        assert inode.blocks_allocated() == (2 * MiB) // fs.block_size
        assert fs.stats.journal_commits == commits_before + 1
        assert cost.flushes >= 2  # commit barrier + ordered-data flush
        journal_start = fs.journal.start_block * fs.block_size
        journal_end = (fs.journal.start_block + fs.journal.size_blocks) * fs.block_size
        assert any(
            journal_start <= r.offset_bytes < journal_end for r in cost.device_requests
        )

    def test_unlink_cancels_reservations(self):
        fs = Ext4FileSystem(capacity_bytes=4 * GiB)
        inode, _ = fs.create("/f", 0.0)
        fs.allocate_range(inode, 0, 1 * MiB, 1.0)
        fs.unlink("/f", 2.0)
        assert fs.delalloc_reserved_bytes() == 0
        # A later commit must not trip over the dead inode.
        fs.create("/other", 3.0)

    def test_commit_harvesting_fragments_more_than_undisturbed_delalloc(self):
        """Interleaved metadata commits shred ext4 files; xfs stays whole."""
        ext4 = Ext4FileSystem(capacity_bytes=4 * GiB)
        xfs = XfsFileSystem(capacity_bytes=4 * GiB)
        e4_inode, _ = ext4.create("/f", 0.0)
        x_inode, _ = xfs.create("/f", 0.0)
        for chunk in range(8):
            ext4.allocate_range(e4_inode, chunk * 256 * 1024, 256 * 1024, float(chunk))
            xfs.allocate_range(x_inode, chunk * 256 * 1024, 256 * 1024, float(chunk))
            # A metadata burst between appends: commits ext4's journal (and
            # with it the reservation); xfs logs without touching delalloc.
            ext4.create(f"/meta{chunk}", float(chunk))
            xfs.create(f"/meta{chunk}", float(chunk))
        xfs.flush_delalloc(x_inode, 99.0)
        assert e4_inode.blocks_allocated() == x_inode.blocks_allocated()
        assert len(e4_inode.extents) >= len(x_inode.extents)

        # Without interleaved commits the same appends stay one extent.
        quiet = Ext4FileSystem(capacity_bytes=4 * GiB)
        q_inode, _ = quiet.create("/f", 0.0)
        for chunk in range(8):
            quiet.allocate_range(q_inode, chunk * 256 * 1024, 256 * 1024, float(chunk))
        quiet.flush_delalloc(q_inode, 99.0)
        assert len(q_inode.extents) == 1


# --------------------------------------------------------------------------
class TestMultiBlockAllocator:
    def test_prefers_one_contiguous_run_where_block_groups_split(self):
        mballoc = MultiBlockAllocator(total_blocks=100_000, blocks_per_group=8192)
        bitmap = BlockGroupAllocator(total_blocks=100_000, blocks_per_group=8192)
        # Shred the whole goal group of both allocators identically: fill it
        # with 64-block files, then checkerboard-delete, leaving only
        # 64-block holes (no run can satisfy 1024 contiguously).
        chunks = (8192 - 64) // 64  # data blocks in a group / chunk size
        for allocator in (mballoc, bitmap):
            held = []
            for _ in range(chunks):
                held.append(allocator.allocate(64, goal_block=0)[0])
            for index, (start, count) in enumerate(held):
                if index % 2 == 0:
                    allocator.free(start, count)
        # A request larger than any hole in the goal group: mballoc walks to
        # a group with a contiguous run, the bitmap allocator splits in place.
        mb_runs = mballoc.allocate(1024, goal_block=0)
        bg_runs = bitmap.allocate(1024, goal_block=0)
        assert len(mb_runs) == 1
        assert len(bg_runs) > 1

    def test_requests_beyond_a_group_still_split(self):
        allocator = MultiBlockAllocator(total_blocks=100_000, blocks_per_group=8192)
        runs = allocator.allocate(3 * 8192)
        assert len(runs) > 1
        assert sum(count for _, count in runs) == 3 * 8192

    def test_shares_free_space_inspection_and_snapshot_surface(self):
        allocator = MultiBlockAllocator(total_blocks=100_000)
        keep = allocator.allocate(500)
        allocator.allocate(300)
        for start, count in keep:
            allocator.free(start, count)
        stats = allocator.free_space_stats()
        assert stats.free_blocks == allocator.free_blocks
        assert stats.extent_count == len(allocator.free_runs())
        twin = MultiBlockAllocator(total_blocks=100_000)
        twin.restore_free_state(json.loads(json.dumps(allocator.export_free_state())))
        assert twin.free_runs() == allocator.free_runs()


# --------------------------------------------------------------------------
class TestExt4Snapshots:
    def _busy_ext4_stack(self):
        stack = build_stack("ext4", testbed=TESTBED, seed=11)
        vfs = stack.vfs
        vfs.mkdir("/d")
        vfs.create("/d/a")
        fd = vfs.open("/d/a")
        vfs.write(fd, 256 * 1024, offset=0)
        vfs.read(fd, 64 * 1024, offset=0)
        vfs.fsync(fd)
        # Leave an *outstanding* reservation so the delalloc section of the
        # snapshot is exercised, not just the happy flushed path.
        vfs.create("/d/b")
        fdb = vfs.open("/d/b")
        vfs.write(fdb, 128 * 1024, offset=0)
        assert stack.fs.delalloc_reserved_bytes() > 0
        return stack

    def test_snapshot_roundtrip_is_bit_identical(self, tmp_path):
        stack = self._busy_ext4_stack()
        snapshot = snapshot_stack(stack)
        path = str(tmp_path / "ext4.snapshot.json")
        save_snapshot(snapshot, path)
        restored = restore_stack(load_snapshot(path), restore_rng=True)
        again = snapshot_stack(restored)
        assert again.fingerprint == snapshot.fingerprint
        assert restored.fs.delalloc_reserved_bytes() == stack.fs.delalloc_reserved_bytes()
        assert restored.fs.journal._head == stack.fs.journal._head

    def test_aged_ext4_restored_reruns_are_bit_identical(self, tmp_path):
        stack = build_stack("ext4", testbed=TESTBED, seed=21)
        ChurnAger(tiny_aging_config()).age(stack)
        path = str(tmp_path / "aged-ext4.json")
        save_snapshot(snapshot_stack(stack), path)
        spec = sequential_read_workload(24 * MiB)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE)
        results = [
            run_single_repetition("ext4", spec, 0, TESTBED, config, snapshot_path=path)
            for _ in range(2)
        ]
        serialized = [
            json.dumps(run_result_to_dict(run), sort_keys=True) for run in results
        ]
        assert serialized[0] == serialized[1]

    def test_aged_ext4_fragmentation_is_measured(self):
        stack = build_stack("ext4", testbed=TESTBED, seed=5)
        ChurnAger(tiny_aging_config()).age(stack)
        report = measure_fragmentation(stack.fs)
        assert report.fs_name == "ext4"
        assert report.free_space is not None
        assert report.free_space.fragmentation_score > 0.5

    @pytest.mark.slow
    def test_aged_vs_fresh_slowdown_on_ext4(self):
        result = run_aged_vs_fresh(
            fs_types=("ext4",),
            testbed=TESTBED,
            quick=True,
            snapshot_dir=tempfile.mkdtemp(prefix="fsbench-ext4-"),
        )
        cell = result.cells["ext4"]
        assert cell.slowdown_factor > 1.05, (
            f"ext4: aged state did not slow the benchmark "
            f"(factor {cell.slowdown_factor:.3f})"
        )
        assert cell.warnings, "ext4: expected an aging fragility warning"
        assert "ext4" in result.render()


# --------------------------------------------------------------------------
class TestExt4SurveyCell:
    def test_default_grids_include_ext4(self):
        assert DEFAULT_FS_TYPES == ("ext2", "ext3", "ext4", "xfs")
        for method in (NanoBenchmarkSuite.run, MeasuredSurvey.run):
            default = inspect.signature(method).parameters["fs_types"].default
            assert "ext4" in default

    def test_cli_accepts_ext4_everywhere(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        for argv in (
            ["suite", "--fs", "ext4"],
            ["survey", "--fs", "ext4"],
            ["age", "--fs", "ext4"],
            ["figure1", "--fs", "ext4"],
            ["figure2", "--fs", "ext4"],
            ["table1", "--measured", "--fs", "ext4"],
        ):
            args = parser.parse_args(argv)
            fs = args.fs if isinstance(args.fs, str) else args.fs[0]
            assert fs == "ext4"

    def test_fourth_cell_is_distinguishable(self):
        """The metadata dimension separates all four file systems."""
        spec = create_delete_workload(file_count=100, directories=5)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE)
        throughputs = {
            fs: run_single_repetition(fs, spec, 0, TESTBED, config).throughput_ops_s
            for fs in DEFAULT_FS_TYPES
        }
        assert len(set(throughputs.values())) == 4, throughputs

    def test_suite_on_ext4_is_bit_identical_serial_vs_parallel(self):
        benchmarks = [
            NanoBenchmark(
                name="tiny-meta",
                description="",
                workload_factory=lambda: create_delete_workload(file_count=40, directories=4),
                dimensions=DimensionVector.of(isolates=[Dimension.METADATA]),
                config=BenchmarkConfig(
                    duration_s=0.5, repetitions=2, warmup_mode=WarmupMode.NONE
                ),
            )
        ]
        serial = NanoBenchmarkSuite(benchmarks, testbed=TESTBED, n_workers=1).run(("ext4",))
        parallel = NanoBenchmarkSuite(benchmarks, testbed=TESTBED, n_workers=2).run(("ext4",))
        for name in serial.benchmark_names():
            before = [run_result_to_dict(r) for r in serial.result_for(name, "ext4").runs]
            after = [run_result_to_dict(r) for r in parallel.result_for(name, "ext4").runs]
            assert json.dumps(before, sort_keys=True) == json.dumps(after, sort_keys=True)

    def test_cache_keys_separate_ext4_from_every_other_fs(self, tmp_path):
        spec = sequential_read_workload(8 * MiB)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1)
        keys = {fs: cache_key(fs, spec, config, 42, TESTBED) for fs in DEFAULT_FS_TYPES}
        assert len(set(keys.values())) == 4
        # And the aged-state axis separates further: an ext4 snapshot
        # fingerprint joins the key without colliding with fresh ext4.
        stack = build_stack("ext4", testbed=TESTBED, seed=11)
        ChurnAger(tiny_aging_config()).age(stack)
        fingerprint = snapshot_stack(stack).fingerprint
        aged_key = cache_key(
            "ext4", spec, config, 42, TESTBED, snapshot_fingerprint=fingerprint
        )
        assert aged_key not in keys.values()
