"""Tests for the workload random distributions."""

import random

import pytest

from repro.workloads.randomdist import (
    ChoiceDistribution,
    FixedValue,
    LogNormalSizes,
    UniformSizes,
    UniformSelector,
    ZipfSelector,
)


@pytest.fixture
def rng():
    return random.Random(21)


class TestSizeDistributions:
    def test_fixed_value(self, rng):
        dist = FixedValue(4096)
        assert dist.sample(rng) == 4096
        assert dist.mean() == 4096
        with pytest.raises(ValueError):
            FixedValue(-1)

    def test_uniform_sizes_within_bounds_and_granular(self, rng):
        dist = UniformSizes(1024, 8192, granularity=1024)
        for _ in range(200):
            value = dist.sample(rng)
            assert 1024 <= value <= 8192
            assert value % 1024 == 0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformSizes(100, 50)

    def test_lognormal_clamped(self, rng):
        dist = LogNormalSizes(median=8192, sigma=2.0, low=1024, high=64 * 1024)
        for _ in range(300):
            assert 1024 <= dist.sample(rng) <= 64 * 1024

    def test_lognormal_median_approximately_right(self, rng):
        dist = LogNormalSizes(median=10_000, sigma=0.5)
        samples = sorted(dist.sample(rng) for _ in range(2001))
        assert 8_000 <= samples[1000] <= 12_500

    def test_lognormal_invalid(self):
        with pytest.raises(ValueError):
            LogNormalSizes(median=0)


class TestSelectors:
    def test_uniform_selector_covers_range(self, rng):
        selector = UniformSelector()
        picks = {selector.pick(10, rng) for _ in range(500)}
        assert picks == set(range(10))

    def test_uniform_selector_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformSelector().pick(0, rng)

    def test_zipf_prefers_low_indices(self, rng):
        selector = ZipfSelector(alpha=1.2)
        picks = [selector.pick(100, rng) for _ in range(3000)]
        first_ten = sum(1 for p in picks if p < 10)
        assert first_ten > len(picks) * 0.5

    def test_zipf_all_indices_possible(self, rng):
        selector = ZipfSelector(alpha=0.5)
        picks = {selector.pick(5, rng) for _ in range(2000)}
        assert picks == set(range(5))

    def test_zipf_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZipfSelector(alpha=0)


class TestChoiceDistribution:
    def test_weights_respected(self, rng):
        dist = ChoiceDistribution(["a", "b"], [0.9, 0.1])
        picks = [dist.pick(rng) for _ in range(2000)]
        assert picks.count("a") > picks.count("b") * 3

    def test_single_item(self, rng):
        assert ChoiceDistribution(["only"], [1.0]).pick(rng) == "only"

    def test_invalid(self):
        with pytest.raises(ValueError):
            ChoiceDistribution([], [])
        with pytest.raises(ValueError):
            ChoiceDistribution(["a"], [0.0])
        with pytest.raises(ValueError):
            ChoiceDistribution(["a", "b"], [1.0])
