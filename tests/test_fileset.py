"""Tests for fileset specification and materialization."""

import random

import pytest

from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads.fileset import FilesetSpec, single_file_fileset
from repro.workloads.randomdist import FixedValue, UniformSizes

KiB = 1024
MiB = 1024 * 1024


@pytest.fixture
def stack():
    return build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0), seed=9)


class TestFilesetSpec:
    def test_single_file_fileset(self):
        spec = single_file_fileset(64 * MiB)
        spec.validate()
        assert spec.file_count == 1
        assert spec.size_distribution.mean() == 64 * MiB

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FilesetSpec(name="has/slash").validate()
        with pytest.raises(ValueError):
            FilesetSpec(file_count=-1).validate()
        with pytest.raises(ValueError):
            FilesetSpec(directories=0).validate()
        with pytest.raises(ValueError):
            FilesetSpec(prealloc_fraction=1.5).validate()
        with pytest.raises(ValueError):
            single_file_fileset(0)

    def test_file_paths_spread_across_directories(self):
        spec = FilesetSpec(name="set", file_count=10, directories=5)
        paths = spec.file_paths()
        assert len(paths) == 10
        assert len({p.rsplit("/", 1)[0] for p in paths}) == 5

    def test_directory_paths_include_parents(self):
        spec = FilesetSpec(name="set", file_count=2, directories=1, depth=3)
        paths = spec.directory_paths()
        assert "/set" in paths
        assert any(p.count("/") == 4 for p in paths)

    def test_expected_bytes(self):
        spec = FilesetSpec(name="set", file_count=10, size_distribution=FixedValue(KiB))
        assert spec.total_bytes_expected() == 10 * KiB


class TestMaterialization:
    def test_files_exist_after_materialize(self, stack):
        spec = FilesetSpec(name="pop", file_count=20, directories=4,
                           size_distribution=FixedValue(16 * KiB))
        fileset = spec.materialize(stack.vfs)
        assert len(fileset) == 20
        for path in fileset.paths:
            assert stack.vfs.fs.exists(path)

    def test_prealloc_allocates_blocks(self, stack):
        spec = FilesetSpec(name="pop", file_count=5, size_distribution=FixedValue(64 * KiB))
        fileset = spec.materialize(stack.vfs)
        for path in fileset.paths:
            inode = stack.vfs.fs.resolve(path)
            assert inode.size_bytes == 64 * KiB

    def test_no_prealloc_leaves_empty_files(self, stack):
        spec = FilesetSpec(
            name="pop", file_count=5, size_distribution=FixedValue(64 * KiB), prealloc_fraction=0.0
        )
        fileset = spec.materialize(stack.vfs)
        for path in fileset.paths:
            assert stack.vfs.fs.resolve(path).size_bytes == 0

    def test_materialize_without_charging_time(self, stack):
        before = stack.clock.now_ns
        FilesetSpec(name="pop", file_count=10).materialize(stack.vfs, charge_time=False)
        assert stack.clock.now_ns == before

    def test_materialize_with_charging_time(self, stack):
        before = stack.clock.now_ns
        FilesetSpec(name="pop", file_count=10, size_distribution=FixedValue(4 * KiB)).materialize(
            stack.vfs, charge_time=True
        )
        assert stack.clock.now_ns > before

    def test_sizes_follow_distribution(self, stack):
        spec = FilesetSpec(
            name="pop",
            file_count=50,
            size_distribution=UniformSizes(4 * KiB, 64 * KiB, granularity=KiB),
        )
        fileset = spec.materialize(stack.vfs, rng=random.Random(1))
        assert all(4 * KiB <= size <= 64 * KiB for size in fileset.sizes)
        assert fileset.total_bytes() == sum(fileset.sizes)

    def test_accessors(self, stack):
        fileset = FilesetSpec(name="pop", file_count=3).materialize(stack.vfs)
        assert fileset.path_of(0).startswith("/pop/")
        assert fileset.size_of(0) == fileset.sizes[0]
