"""Smoke tests for the example scripts.

The examples are user-facing documentation; these tests make sure every one
of them imports, exposes a ``main`` entry point, and that the quick/cheap
ones actually run end to end.  The heavier examples are exercised indirectly
by the suite and experiment tests.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "compare_filesystems.py",
    "fragility_demo.py",
    "survey_report.py",
    "macro_personalities.py",
    "trace_replay_demo.py",
    "aging_demo.py",
    "ssd_steady_state.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_runnable_examples(self):
        assert len(ALL_EXAMPLES) >= 3
        for name in ALL_EXAMPLES:
            assert (EXAMPLES_DIR / name).exists(), name

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_main_and_docstring(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} must expose main()"
        assert module.__doc__ and len(module.__doc__) > 80, f"{name} needs a real docstring"


class TestFastExamplesRun:
    def test_survey_report_runs(self, capsys):
        module = load_example("survey_report.py")
        assert module.main([]) == 0
        output = capsys.readouterr().out
        assert "Ad-hoc" in output
        assert "Extending the survey" in output

    def test_trace_replay_demo_runs_quick(self, capsys):
        module = load_example("trace_replay_demo.py")
        assert module.main(["--quick"]) == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "xfs" in output

    def test_aging_demo_runs_quick(self, capsys):
        module = load_example("aging_demo.py")
        assert module.main(["--quick"]) == 0
        output = capsys.readouterr().out
        assert "Aged with churn" in output
        assert "fresh ext2" in output
        assert "aged  ext2" in output

    def test_ssd_steady_state_runs_quick(self, capsys):
        module = load_example("ssd_steady_state.py")
        assert module.main(["--quick"]) == 0
        output = capsys.readouterr().out
        assert "ssd-ftl-fresh" in output
        assert "ssd-ftl-steady" in output
        assert "write amplification" in output

    def test_quickstart_runs_quick(self, capsys):
        module = load_example("quickstart.py")
        assert module.main(["--quick"]) == 0
        output = capsys.readouterr().out
        assert "Regime: memory-bound" in output
        assert "Regime: io-bound" in output
        assert "read latency" in output
