"""Tests for the reporting helpers."""

import pytest

from repro.core.histogram import from_latencies
from repro.core.report import (
    ReportBuilder,
    ascii_plot,
    comparison_verdict,
    format_table,
    histogram_report,
    suite_report,
    sweep_table,
    timeline_table,
)
from repro.core.results import RepetitionSet, SweepResult
from repro.core.timeline import IntervalSeries
from tests.test_results_and_runner import make_run


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["a", "long header"], [[1, 2], ["xyz", 42]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long header" in lines[0]
        assert "xyz" in lines[3]

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestAsciiPlot:
    def test_plot_contains_points_and_ranges(self):
        points = [(float(i), float(i * i)) for i in range(10)]
        plot = ascii_plot(points, width=30, height=8, x_label="size", y_label="ops")
        assert "*" in plot
        assert "size" in plot and "ops" in plot

    def test_empty_plot(self):
        assert ascii_plot([]) == "(no data)"

    def test_single_point(self):
        assert "*" in ascii_plot([(1.0, 1.0)])


def make_sweep():
    sweep = SweepResult(parameter_name="file_size", unit="MB")
    for size, throughput in [(64, 9700.0), (448, 1000.0), (1024, 200.0)]:
        repetitions = RepetitionSet(label=str(size))
        for i in range(3):
            repetitions.add(make_run(throughput * (1 + 0.02 * i), repetition=i))
        sweep.add(size, repetitions)
    return sweep


class TestSweepAndTimelineTables:
    def test_sweep_table_has_row_per_parameter(self):
        table = sweep_table(make_sweep())
        assert "64" in table and "1024" in table
        assert "rel stddev" in table
        assert "fragility" in table.lower()

    def test_timeline_table(self):
        series = IntervalSeries(interval_s=1.0)
        for second in range(3):
            for _ in range(10 * (second + 1)):
                series.record(second * 1e9 + 1e8, 1000.0)
        table = timeline_table(series)
        assert "time (s)" in table
        assert "Spread" in table


class TestHistogramReport:
    def test_mentions_modality_and_span(self):
        histogram = from_latencies([4000.0] * 50 + [8_000_000.0] * 50)
        report = histogram_report(histogram, "read latency")
        assert "bi-modal" in report
        assert "orders of magnitude" in report


class TestComparisonVerdict:
    def test_overlapping_intervals_refuse_a_winner(self):
        a = RepetitionSet("a", [make_run(100.0 + i) for i in range(3)])
        b = RepetitionSet("b", [make_run(100.5 + i) for i in range(3)])
        verdict = comparison_verdict("ext2", a, "xfs", b)
        assert "no demonstrated difference" in verdict

    def test_clear_difference_reports_speedup(self):
        a = RepetitionSet("a", [make_run(100.0 + i) for i in range(3)])
        b = RepetitionSet("b", [make_run(300.0 + i) for i in range(3)])
        verdict = comparison_verdict("ext2", a, "xfs", b)
        assert "faster" in verdict
        assert "xfs" in verdict


class TestReportBuilder:
    def test_sections_rendered_in_order(self):
        report = (
            ReportBuilder(title="My report")
            .add_section("First", "alpha")
            .add_sweep("Sweep", make_sweep())
            .add_histogram("Latency", from_latencies([1000.0] * 10))
            .render()
        )
        assert report.index("First") < report.index("Sweep") < report.index("Latency")
        assert "My report" in report


class TestSuiteReport:
    def test_suite_report_renders_all_cells(self):
        from repro.core.benchmark import NanoBenchmark
        from repro.core.dimensions import Dimension, DimensionVector
        from repro.core.suite import SuiteResult
        from repro.storage.config import paper_testbed
        from repro.workloads.micro import random_read_workload

        benchmark = NanoBenchmark(
            name="mini",
            description="test benchmark",
            workload_factory=lambda: random_read_workload(1024 * 1024),
            dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
        )
        result = SuiteResult(testbed=paper_testbed())
        result.add(benchmark, "ext2", RepetitionSet("a", [make_run(100.0 + i) for i in range(3)]))
        result.add(benchmark, "xfs", RepetitionSet("b", [make_run(300.0 + i) for i in range(3)]))
        text = suite_report(result)
        assert "mini" in text
        assert "ext2" in text and "xfs" in text
        assert "Caching" in text
