"""Tests for trace capture and replay."""

import io

import pytest

from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads.spec import FlowOp, OpType, WorkloadEngine, WorkloadSpec, OffsetMode
from repro.workloads.fileset import single_file_fileset
from repro.workloads.trace import (
    TraceRecord,
    TraceRecorder,
    TraceReplayer,
    load_trace,
    save_trace,
)

KiB = 1024
MiB = 1024 * 1024


def tiny_stack(seed=5):
    return build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0), seed=seed)


class TestTraceRecord:
    def test_line_round_trip(self):
        record = TraceRecord(timestamp_ns=123456.0, op="read", path="/a/b", offset=4096, nbytes=8192)
        parsed = TraceRecord.from_line(record.to_line())
        assert parsed == record

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("read /a/b 0")


class TestSaveLoad:
    def test_round_trip_through_a_file_object(self):
        records = [
            TraceRecord(0.0, "create", "/t/a"),
            TraceRecord(10.0, "write", "/t/a", 0, 4096),
            TraceRecord(20.0, "read", "/t/a", 0, 4096),
        ]
        buffer = io.StringIO()
        assert save_trace(records, buffer) == 3
        buffer.seek(0)
        assert load_trace(buffer) == records

    def test_round_trip_through_a_path(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        records = [TraceRecord(0.0, "stat", "/x")]
        save_trace(records, path)
        assert load_trace(path) == records

    def test_comments_and_blank_lines_ignored(self):
        buffer = io.StringIO("# header\n\n0 read /a 0 4096\n")
        assert len(load_trace(buffer)) == 1


class TestRecorder:
    def test_records_from_engine_callback(self):
        stack = tiny_stack()
        recorder = TraceRecorder()
        spec = WorkloadSpec(
            name="traced",
            flowops=[FlowOp(op=OpType.READ, iosize=8 * KiB, offset_mode=OffsetMode.RANDOM)],
            fileset=single_file_fileset(1 * MiB),
            op_overhead_ns=0.0,
        )
        WorkloadEngine(stack, spec, seed=1, on_op=recorder).run(max_ops=25)
        assert len(recorder) == 25
        assert all(r.op == "read" for r in recorder.records)

    def test_manual_recording(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "create", "/a")
        recorder.record(5.0, "write", "/a", 0, 4096)
        assert len(recorder) == 2


class TestReplay:
    def test_replay_creates_missing_files_and_returns_latencies(self):
        stack = tiny_stack()
        records = [
            TraceRecord(0.0, "create", "/traced/file0"),
            TraceRecord(1000.0, "write", "/traced/file0", 0, 8 * KiB),
            TraceRecord(2000.0, "read", "/traced/file0", 0, 8 * KiB),
            TraceRecord(3000.0, "fsync", "/traced/file0"),
            TraceRecord(4000.0, "stat", "/traced/file0"),
            TraceRecord(5000.0, "delete", "/traced/file0"),
        ]
        replayer = TraceReplayer(stack)
        latencies = replayer.replay(records)
        assert len(latencies) == len(records)
        assert not stack.vfs.fs.exists("/traced/file0")

    def test_replay_honouring_timing_is_slower(self):
        records = [
            TraceRecord(float(i) * 50_000_000, "read", "/t/file", 0, 4 * KiB) for i in range(20)
        ]
        records.insert(0, TraceRecord(0.0, "create", "/t/file"))

        def run(honour):
            stack = tiny_stack()
            TraceReplayer(stack, honour_timing=honour).replay(records)
            return stack.clock.now_ns

        assert run(True) > run(False)

    def test_replay_missing_file_without_create_raises(self):
        stack = tiny_stack()
        replayer = TraceReplayer(stack, create_missing=False)
        with pytest.raises(FileNotFoundError):
            replayer.replay([TraceRecord(0.0, "read", "/nope", 0, 4096)])

    def test_unknown_ops_are_skipped(self):
        stack = tiny_stack()
        latencies = TraceReplayer(stack).replay([TraceRecord(0.0, "ioctl", "/x", 0, 0)])
        assert latencies == [0.0]

    def test_record_then_replay_round_trip(self):
        """A workload recorded on one stack can be replayed on another."""
        source_stack = tiny_stack(seed=6)
        recorder = TraceRecorder()
        recorder.record(0.0, "create", "/rt/a")
        recorder.record(0.0, "create", "/rt/b")
        recorder.record(1_000.0, "write", "/rt/a", 0, 64 * KiB)
        recorder.record(2_000.0, "write", "/rt/b", 0, 32 * KiB)
        recorder.record(3_000.0, "read", "/rt/a", 0, 64 * KiB)
        buffer = io.StringIO()
        save_trace(recorder.records, buffer)
        buffer.seek(0)

        target_stack = tiny_stack(seed=7)
        TraceReplayer(target_stack).replay(load_trace(buffer))
        assert target_stack.vfs.fs.resolve("/rt/a").size_bytes == 64 * KiB
        assert target_stack.vfs.fs.resolve("/rt/b").size_bytes == 32 * KiB
