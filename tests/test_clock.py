"""Tests for the virtual clock."""

import pytest

from repro.storage.clock import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    VirtualClock,
    ms_to_ns,
    ns_to_seconds,
    seconds_to_ns,
    us_to_ns,
)


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now_ns == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(start_ns=500).now_ns == 500.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-1)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(42) == 42.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0)
        assert clock.now_ns == 0.0

    def test_advance_seconds(self):
        clock = VirtualClock()
        clock.advance_s(1.5)
        assert clock.now_ns == pytest.approx(1.5 * NS_PER_SEC)

    def test_unit_properties_consistent(self):
        clock = VirtualClock()
        clock.advance(2_500_000_000)
        assert clock.now_s == pytest.approx(2.5)
        assert clock.now_ms == pytest.approx(2500.0)
        assert clock.now_us == pytest.approx(2_500_000.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(1000)
        clock.reset()
        assert clock.now_ns == 0.0

    def test_reset_to_value(self):
        clock = VirtualClock()
        clock.advance(1000)
        clock.reset(to_ns=250)
        assert clock.now_ns == 250.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().reset(-5)


class TestConversions:
    def test_seconds_round_trip(self):
        assert ns_to_seconds(seconds_to_ns(3.25)) == pytest.approx(3.25)

    def test_ms_to_ns(self):
        assert ms_to_ns(2.0) == 2 * NS_PER_MS

    def test_us_to_ns(self):
        assert us_to_ns(7.0) == 7 * NS_PER_US

    def test_constants_consistent(self):
        assert NS_PER_SEC == 1000 * NS_PER_MS == 1_000_000 * NS_PER_US
