"""Tests for the determinism-contract static analyzer (repro.lint).

Two halves:

* synthetic known-bad fixtures, one firing and one non-firing case per rule,
  written to ``tmp_path`` and linted in isolation -- these prove each rule
  actually detects the defect class it claims to (deleting an exported
  attribute, adding an unclassified ``BenchmarkConfig`` field, introducing
  ``time.time()``, ...);
* the self-check: ``src/repro`` lints clean at HEAD under the repository's
  own ``lint.toml``, with every suppression used.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    LintConfigError,
    ProjectIndex,
    RULE_REGISTRY,
    load_config,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------- helpers
def lint_source(tmp_path: Path, source: str, config: LintConfig = None, name: str = "mod.py"):
    """Lint one synthetic module and return the findings of all rules."""
    tree = tmp_path / "proj"
    tree.mkdir(exist_ok=True)
    (tree / name).write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_tree(tree, config)


def lint_tree(tree: Path, config: LintConfig = None):
    config = config if config is not None else LintConfig()
    index = ProjectIndex(tree, project_root=tree.parent)
    findings = list(index.errors)
    for rule_cls in RULE_REGISTRY.values():
        findings.extend(rule_cls().check(index, config))
    return findings


def rules_of(findings):
    return {finding.rule for finding in findings}


# ------------------------------------------------------- registry contract
def test_registry_has_all_documented_rules():
    expected = {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "SNAP001",
        "SNAP002",
        "KEY001",
        "KEY002",
        "PROTO001",
        "PROTO002",
        "PROTO003",
    }
    assert expected <= set(RULE_REGISTRY)
    for rule_id, rule_cls in RULE_REGISTRY.items():
        assert rule_cls.rule_id == rule_id
        assert rule_cls.contract, f"{rule_id} has no contract statement"


# ------------------------------------------------------------- determinism
def test_det001_fires_on_wall_clock(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import time

        def measure():
            return time.time()
        """,
    )
    det = [finding for finding in findings if finding.rule == "DET001"]
    assert len(det) == 1
    assert "time.time" in det[0].message
    assert det[0].line == 5


def test_det001_fires_on_datetime_now_and_urandom(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import os
        from datetime import datetime

        def stamp():
            return datetime.now(), os.urandom(8)
        """,
    )
    assert sum(1 for finding in findings if finding.rule == "DET001") == 2


def test_det001_silent_on_virtual_clock(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class VirtualClock:
            def __init__(self):
                self._now_ns = 0.0

            def now_ns(self):
                return self._now_ns
        """,
    )
    assert "DET001" not in rules_of(findings)


def test_det001_respects_allowlist(tmp_path):
    config = LintConfig(determinism_allow=["proj/wallclock.py"])
    findings = lint_source(
        tmp_path,
        """
        import time

        def hosttime():
            return time.time()
        """,
        config=config,
        name="wallclock.py",
    )
    assert "DET001" not in rules_of(findings)


def test_det002_fires_on_module_level_random(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import random

        def pick(items):
            return random.choice(items)
        """,
    )
    assert "DET002" in rules_of(findings)


def test_det002_silent_on_seeded_instance(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import random

        def pick(items, seed):
            rng = random.Random(seed)
            return rng.choice(items)
        """,
    )
    assert "DET002" not in rules_of(findings)


def test_det003_fires_on_set_iteration(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def keys(resident: set):
            return list(resident)
        """,
    )
    assert "DET003" in rules_of(findings)


def test_det003_silent_on_sorted_and_reductions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def keys(resident: set):
            total = sum(1 for key in resident)
            return sorted(resident), total
        """,
    )
    assert "DET003" not in rules_of(findings)


def test_det004_fires_on_id_keyed_dict(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def index(objs):
            table = {}
            for obj in objs:
                table[id(obj)] = obj
            return table
        """,
    )
    assert "DET004" in rules_of(findings)


# ---------------------------------------------------------------- snapshot
SNAPSHOT_CLASS = """
class Journalish:
    def __init__(self):
        self.block_size = 4096
        self._head = 0
        self._pending = []

    def advance(self):
        self._head += 1

    def export_state(self):
        return {"head": self._head, "pending": list(self._pending)}

    def restore_state(self, data):
        self._head = int(data["head"])
        self._pending = list(data["pending"])
"""


def test_snap001_silent_when_state_is_covered(tmp_path):
    findings = lint_source(tmp_path, SNAPSHOT_CLASS)
    assert "SNAP001" not in rules_of(findings)


def test_snap001_fires_when_export_attr_deleted(tmp_path):
    # The acceptance scenario: drop _pending from the export/restore pair.
    broken = SNAPSHOT_CLASS.replace(', "pending": list(self._pending)', "").replace(
        '        self._pending = list(data["pending"])\n', ""
    )
    findings = lint_source(tmp_path, broken)
    snap = [finding for finding in findings if finding.rule == "SNAP001"]
    assert len(snap) == 1
    assert snap[0].symbol == "Journalish._pending"
    assert "export_state/restore_state" in snap[0].message


def test_snap001_honours_ephemeral_annotation(tmp_path):
    broken = SNAPSHOT_CLASS.replace(', "pending": list(self._pending)', "").replace(
        '        self._pending = list(data["pending"])\n', ""
    )
    annotated = broken.replace(
        "self._pending = []",
        "self._pending = []  # lint: ephemeral -- rebuilt on replay",
    )
    findings = lint_source(tmp_path, annotated)
    assert "SNAP001" not in rules_of(findings)


def test_snap001_sees_through_init_helpers_and_bases(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Base:
            def __init__(self):
                self._init_mapping()

            def _init_mapping(self):
                self._l2p = {}

        class Ftlish(Base):
            def __init__(self):
                super().__init__()
                self._erases = [0] * 8

            def export_state(self):
                return {"erases": list(self._erases)}

            def restore_state(self, data):
                self._erases = list(data["erases"])
        """,
    )
    snap = [finding for finding in findings if finding.rule == "SNAP001"]
    assert [finding.symbol for finding in snap] == ["Ftlish._l2p"]


def test_snap002_fires_for_required_class_without_pair(tmp_path):
    config = LintConfig(snapshot_required=("Clockish",))
    findings = lint_source(
        tmp_path,
        """
        class Clockish:
            def __init__(self):
                self._now = 0.0

            def advance(self, dt):
                self._now += dt
        """,
        config=config,
    )
    snap = [finding for finding in findings if finding.rule == "SNAP002"]
    assert len(snap) == 1 and snap[0].symbol == "Clockish"


def test_snap002_silent_when_pair_exists(tmp_path):
    config = LintConfig(snapshot_required=("Journalish",))
    findings = lint_source(tmp_path, SNAPSHOT_CLASS, config=config)
    assert "SNAP002" not in rules_of(findings)


# --------------------------------------------------------------- cache key
CACHE_KEY_FIXTURE = """
from dataclasses import dataclass, replace


@dataclass
class BenchmarkConfig:
    duration_s: float = 1.0
    seed: int = 0
    repetitions: int = 1
    clients: int = 1
    trace: bool = False


def _canonical(value):
    return dict(vars(value))


def cache_key(config):
    payload = _canonical(replace(config, seed=0, repetitions=1))
    payload.pop("clients", None)
    payload.pop("trace", None)
    return payload
"""

CACHE_KEY_BUCKETS = {
    "keyed": ("duration_s",),
    "normalized": ("seed", "repetitions"),
    "stripped": ("clients", "trace"),
}


def test_key001_silent_when_classification_matches(tmp_path):
    config = LintConfig(cache_key_buckets=dict(CACHE_KEY_BUCKETS))
    findings = lint_source(tmp_path, CACHE_KEY_FIXTURE, config=config)
    assert "KEY001" not in rules_of(findings)


def test_key001_fires_on_unclassified_new_field(tmp_path):
    # The acceptance scenario: grow BenchmarkConfig without deciding the
    # new field's key semantics.
    grown = CACHE_KEY_FIXTURE.replace(
        "duration_s: float = 1.0",
        "duration_s: float = 1.0\n    io_depth: int = 1",
    )
    config = LintConfig(cache_key_buckets=dict(CACHE_KEY_BUCKETS))
    findings = lint_source(tmp_path, grown, config=config)
    key = [finding for finding in findings if finding.rule == "KEY001"]
    assert len(key) == 1
    assert key[0].symbol == "BenchmarkConfig.io_depth"
    assert "not classified" in key[0].message


def test_key001_fires_on_stale_bucket_entry(tmp_path):
    buckets = dict(CACHE_KEY_BUCKETS)
    buckets["keyed"] = ("duration_s", "ghost_field")
    config = LintConfig(cache_key_buckets=buckets)
    findings = lint_source(tmp_path, CACHE_KEY_FIXTURE, config=config)
    assert any(
        finding.rule == "KEY001" and "ghost_field" in finding.symbol
        for finding in findings
    )


def test_key001_fires_when_code_disagrees_with_classification(tmp_path):
    # trace documented as keyed, but cache_key() pops it.
    buckets = {
        "keyed": ("duration_s", "trace"),
        "normalized": ("seed", "repetitions"),
        "stripped": ("clients",),
    }
    config = LintConfig(cache_key_buckets=buckets)
    findings = lint_source(tmp_path, CACHE_KEY_FIXTURE, config=config)
    assert any(
        finding.rule == "KEY001" and finding.symbol == "cache_key.trace"
        for finding in findings
    )


def test_key002_fires_on_ad_hoc_result_serialization(tmp_path):
    # A second encoder: dumping run_result_to_dict() output directly instead
    # of going through canonical_run_payload.
    findings = lint_source(
        tmp_path,
        """
        import json

        from repro.core.persistence import run_result_to_dict


        def rogue_payload(run):
            return json.dumps(run_result_to_dict(run)).encode("utf-8")
        """,
    )
    key = [finding for finding in findings if finding.rule == "KEY002"]
    assert len(key) == 1
    assert key[0].symbol == "run_result_to_dict"
    assert "canonical" in key[0].hint


def test_key002_fires_on_private_wrap_call(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.core.persistence import _wrap, run_result_to_dict


        def rogue_document(run):
            return _wrap("run_result", run_result_to_dict(run))
        """,
    )
    assert any(
        finding.rule == "KEY002" and finding.symbol == "_wrap"
        for finding in findings
    )


def test_key002_silent_on_in_memory_comparison(tmp_path):
    # obs.payloads_match-style dict equality never produces bytes, so it is
    # not a serialization path.
    findings = lint_source(
        tmp_path,
        """
        from repro.core.persistence import run_result_to_dict


        def payloads_match(run_a, run_b):
            return run_result_to_dict(run_a) == run_result_to_dict(run_b)
        """,
    )
    assert "KEY002" not in rules_of(findings)


def test_key002_silent_inside_the_persistence_module(tmp_path):
    # The canonical encoder itself is the one legitimate _wrap + dumps site.
    tree = tmp_path / "proj" / "core"
    tree.mkdir(parents=True)
    (tree / "persistence.py").write_text(
        textwrap.dedent(
            """
            import json


            def _wrap(kind, payload):
                return {"kind": kind, "data": payload}


            def run_result_to_dict(run):
                return dict(vars(run))


            def canonical_run_payload(run):
                document = _wrap("run_result", run_result_to_dict(run))
                return json.dumps(document, sort_keys=True).encode("utf-8")
            """
        ),
        encoding="utf-8",
    )
    findings = lint_tree(tmp_path / "proj")
    assert "KEY002" not in rules_of(findings)


# ---------------------------------------------------------------- protocol
def test_proto001_fires_on_mutable_stats_without_metricsource(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass
        class WidgetStats:
            hits: int = 0
        """,
    )
    assert "PROTO001" in rules_of(findings)


def test_proto001_silent_on_adopters_and_frozen_summaries(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from dataclasses import dataclass


        class MetricSource:
            pass


        @dataclass
        class WidgetStats(MetricSource):
            hits: int = 0


        @dataclass(frozen=True)
        class SummaryStats:
            mean: float = 0.0
        """,
    )
    assert "PROTO001" not in rules_of(findings)


DEVICE_REGISTRY_FIXTURE = """
class GoodModel:
    component_trace_enabled = False
    last_components = None

    def __init__(self):
        self.stats = object()


class BareModel:
    def __init__(self):
        self.capacity = 0


DEVICE_REGISTRY = {
    "good": lambda testbed: GoodModel(),
    "bare": lambda testbed: BareModel(),
}
"""


def test_proto002_fires_only_for_model_missing_hooks(tmp_path):
    findings = lint_source(tmp_path, DEVICE_REGISTRY_FIXTURE)
    proto = [finding for finding in findings if finding.rule == "PROTO002"]
    assert proto, "expected hook findings for BareModel"
    assert all("'bare'" in finding.symbol for finding in proto)
    missing = {finding.symbol.rsplit(".", 1)[1] for finding in proto}
    assert missing == {"stats", "component_trace_enabled", "last_components"}


def test_proto003_fires_on_fs_without_stats_and_bare_journal(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class BareLog:
            def __init__(self):
                self.entries = []


        class Fsish:
            def __init__(self):
                self.log = BareLog()


        FS_REGISTRY = {
            "fsish": lambda capacity, block: Fsish(),
        }
        """,
    )
    proto = [finding for finding in findings if finding.rule == "PROTO003"]
    symbols = {finding.symbol for finding in proto}
    assert "FS_REGISTRY['fsish'].stats" in symbols
    assert any(".log." in symbol for symbol in symbols)


# ----------------------------------------------------- runner and plumbing
def test_lint000_reports_unparseable_module(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n    pass\n")
    assert "LINT000" in rules_of(findings)


def test_run_lint_flags_unused_suppression(tmp_path):
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "clean.py").write_text("X = 1\n", encoding="utf-8")
    config_file = tmp_path / "lint.toml"
    config_file.write_text(
        '[[suppress]]\nrule = "DET001"\npath = "nowhere.py"\n'
        'reason = "stale exemption"\n',
        encoding="utf-8",
    )
    report = run_lint(tree, config_path=config_file, project_root=tmp_path)
    assert [finding.rule for finding in report.findings] == ["LINT001"]
    assert report.exit_code == 1


def test_suppression_without_reason_is_rejected(tmp_path):
    config_file = tmp_path / "lint.toml"
    config_file.write_text(
        '[[suppress]]\nrule = "DET001"\npath = "x.py"\n', encoding="utf-8"
    )
    with pytest.raises(LintConfigError, match="reason"):
        load_config(config_file)


def test_acceptance_time_time_fails_a_run(tmp_path):
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "hot.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n", encoding="utf-8"
    )
    report = run_lint(tree, project_root=tmp_path)
    assert report.exit_code == 1
    assert any(finding.rule == "DET001" for finding in report.findings)


def test_report_renders_table_and_json(tmp_path):
    tree = tmp_path / "proj"
    tree.mkdir()
    (tree / "hot.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n", encoding="utf-8"
    )
    report = run_lint(tree, project_root=tmp_path)
    table = report.to_table()
    assert "DET001" in table and "proj/hot.py:5" in table
    document = json.loads(report.to_json())
    assert document["clean"] is False
    assert document["findings"][0]["rule"] == "DET001"


# ------------------------------------------------------------- self-checks
def test_src_repro_lints_clean_at_head():
    report = run_lint(
        REPO_ROOT / "src" / "repro",
        config_path=REPO_ROOT / "lint.toml",
        project_root=REPO_ROOT,
    )
    details = "\n".join(
        f"{finding.rule} {finding.location()} {finding.message}"
        for finding in report.findings
    )
    assert report.clean, f"src/repro has contract violations:\n{details}"
    # Every suppression in lint.toml matched something (no LINT001 above)
    # and the documented VirtualClock exemption is actually exercised.
    assert any(
        finding.symbol == "VirtualClock" for finding, _ in report.suppressed
    )


def test_cli_lint_verb_json(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["clean"] is True
    assert document["modules_scanned"] > 50


# ------------------------------------------- conventional linters (if here)
@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_error_class_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests"], capture_output=True, text=True, cwd=REPO_ROOT
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_minimal_gate_clean():
    result = subprocess.run(
        ["mypy", "--config-file", "pyproject.toml"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
