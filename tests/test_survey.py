"""Tests for the Table 1 survey database."""

import pytest

from repro.core.dimensions import Coverage, Dimension, DimensionVector
from repro.core.survey import (
    BenchmarkEntry,
    PAPERS_SURVEYED_2009_2010,
    SurveyDatabase,
    load_paper_survey,
)


@pytest.fixture
def survey():
    return load_paper_survey()


class TestPaperSurveyContent:
    def test_nineteen_rows_as_in_table1(self, survey):
        assert len(survey) == 19

    def test_headline_usage_counts_match_the_paper(self, survey):
        expected = {
            "IOmeter": (2, 3),
            "Filebench": (3, 5),
            "IOzone": (0, 4),
            "Bonnie/Bonnie64/Bonnie++": (2, 0),
            "Postmark": (30, 17),
            "Linux compile": (6, 3),
            "Compile (Apache, openssh, etc.)": (38, 14),
            "DBench": (1, 1),
            "SPECsfs": (7, 1),
            "Sort": (0, 5),
            "IOR: I/O Performance Benchmark": (0, 1),
            "Production workloads": (2, 2),
            "Ad-hoc": (237, 67),
            "Trace-based custom": (7, 18),
            "Trace-based standard": (14, 17),
            "BLAST": (0, 2),
            "Flexible FS Benchmark (FFSB)": (0, 1),
            "Flexible I/O tester (fio)": (0, 1),
            "Andrew": (15, 1),
        }
        for name, (old, new) in expected.items():
            entry = survey.get(name)
            assert entry.uses_1999_2007 == old, name
            assert entry.uses_2009_2010 == new, name

    def test_adhoc_is_by_far_the_most_common(self, survey):
        entries = survey.entries()
        assert entries[0].name == "Ad-hoc"
        second = entries[1]
        assert survey.get("Ad-hoc").total_uses > 3 * second.total_uses

    def test_iometer_isolates_only_io(self, survey):
        coverage = survey.get("IOmeter").coverage
        assert coverage.isolates(Dimension.IO)
        assert coverage.covered_dimensions() == [Dimension.IO]

    def test_trace_entries_marked_trace_dependent(self, survey):
        for name in ("Ad-hoc", "Trace-based custom", "Trace-based standard", "Production workloads"):
            coverage = survey.get(name).coverage
            assert any(coverage[d] is Coverage.TRACE_DEPENDENT for d in Dimension)

    def test_no_single_benchmark_isolates_everything(self, survey):
        for entry in survey.entries():
            assert not all(entry.coverage.isolates(d) for d in Dimension)

    def test_isolation_coverage_gaps(self, survey):
        """Some dimensions have isolating benchmarks, but on-disk layout has none --
        no surveyed benchmark isolates the on-disk dimension, which is part of the
        paper's complaint."""
        for dimension in (Dimension.IO, Dimension.CACHING, Dimension.METADATA, Dimension.SCALING):
            assert survey.isolating_benchmarks(dimension), dimension
        assert survey.isolating_benchmarks(Dimension.ONDISK) == []


class TestAggregation:
    def test_total_uses_by_period(self, survey):
        assert survey.total_uses("1999_2007") == sum(
            e.uses_1999_2007 for e in survey.entries()
        )
        assert survey.total_uses() == survey.total_uses("1999_2007") + survey.total_uses("2009_2010")

    def test_adhoc_fraction(self, survey):
        fraction = survey.adhoc_fraction("2009_2010")
        assert 0.3 < fraction < 0.5  # 67 of 167 uses

    def test_dimension_use_counts(self, survey):
        counts = survey.dimension_use_counts("2009_2010")
        assert set(counts) == set(Dimension)
        assert all(count >= 0 for count in counts.values())

    def test_coverage_matrix_shape(self, survey):
        matrix = survey.coverage_matrix()
        assert len(matrix) == 19
        assert all(set(row) == set(Dimension.ordered()) for row in matrix.values())


class TestExtendingTheSurvey:
    def test_record_use_of_known_benchmark(self, survey):
        before = survey.get("Filebench").uses_2009_2010
        survey.record_use("Filebench")
        assert survey.get("Filebench").uses_2009_2010 == before + 1

    def test_record_use_of_new_benchmark(self, survey):
        survey.record_use("fio-ng", count=3)
        assert survey.get("fio-ng").uses_2009_2010 == 3

    def test_record_use_validation(self, survey):
        with pytest.raises(ValueError):
            survey.record_use("Filebench", count=0)
        with pytest.raises(ValueError):
            survey.record_use("Filebench", period="2042")

    def test_add_replaces_entry(self):
        database = SurveyDatabase()
        database.add(BenchmarkEntry(name="X", coverage=DimensionVector(), uses_2009_2010=1))
        database.add(BenchmarkEntry(name="X", coverage=DimensionVector(), uses_2009_2010=5))
        assert len(database) == 1
        assert database.get("X").uses_2009_2010 == 5

    def test_contains(self, survey):
        assert "Postmark" in survey
        assert "NotABenchmark" not in survey


class TestRendering:
    def test_render_table1_contains_all_rows_and_legend(self, survey):
        text = survey.render_table1()
        for entry in survey.entries():
            assert entry.name in text
        assert "Legend" in text
        assert "1999-2007" in text and "2009-2010" in text
        assert "ad-hoc" in text.lower()

    def test_survey_scope_constant(self):
        assert PAPERS_SURVEYED_2009_2010 == 100
