"""Tests for the aging & state-snapshot subsystem (repro.aging).

Covers the acceptance contract of the subsystem:

* both allocator families report free-space extents consistently;
* the churn ager reaches its free-space target and shreds free space;
* snapshots survive save -> load with fingerprint verification, and
  restoring one yields the identical file system state;
* restore + re-run is bit-identical across independent restores;
* traces round-trip with full fidelity when replayed onto aged
  (snapshot-restored) stacks;
* the aged-vs-fresh experiment shows an asserted throughput delta on both
  ext2 and xfs, with fragmentation metrics reported alongside;
* the snapshot fingerprint joins the parallel executor's cache key;
* the ``age`` CLI produces a loadable snapshot and ``--version`` works.
"""

import json
import os

import pytest

from repro.aging import (
    AgingConfig,
    ChurnAger,
    TraceAger,
    load_snapshot,
    measure_fragmentation,
    restore_stack,
    run_aged_vs_fresh,
    save_snapshot,
    snapshot_stack,
)
from repro.aging.snapshot import snapshot_fingerprint, snapshot_stack_factory
from repro.analysis.fragility import assess_aging
from repro.core.histogram import LatencyHistogram
from repro.core.parallel import ParallelExecutor, ResultCache, WorkUnit, cache_key
from repro.core.persistence import run_result_to_dict
from repro.core.results import RepetitionSet, RunResult
from repro.core.runner import BenchmarkConfig, WarmupMode, run_single_repetition
from repro.core.timeline import IntervalSeries
from repro.cli import main as cli_main
from repro.fs.allocation import BlockGroupAllocator, ExtentAllocator
from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads.micro import sequential_read_workload
from repro.workloads.trace import TraceRecord, TraceReplayer, load_trace, save_trace

MiB = 1024 * 1024

TESTBED = scaled_testbed(0.0625)


def tiny_aging_config(seed: int = 777) -> AgingConfig:
    """An even smaller profile than quick_aging_config, for unit tests."""
    return AgingConfig(
        free_space_target_bytes=64 * MiB,
        hole_bytes=256 * 1024,
        fill_file_bytes=2048 * MiB,
        churn_ops=50,
        seed=seed,
    )


@pytest.fixture(scope="module")
def aged_ext2_snapshot(tmp_path_factory):
    """One aged ext2 stack, snapshotted to disk (shared across tests)."""
    stack = build_stack("ext2", testbed=TESTBED, seed=7)
    result = ChurnAger(tiny_aging_config()).age(stack)
    path = str(tmp_path_factory.mktemp("snap") / "aged-ext2.snapshot.json")
    save_snapshot(snapshot_stack(stack), path)
    return stack, result, path


# --------------------------------------------------------------------------
class TestFreeSpaceStats:
    def test_both_families_report_free_extents_consistently(self):
        for allocator in (
            BlockGroupAllocator(total_blocks=200_000),
            ExtentAllocator(total_blocks=200_000),
        ):
            stats = allocator.free_space_stats()
            assert stats.free_blocks == allocator.free_blocks
            assert stats.extent_count == allocator.free_extent_count() > 0
            assert stats.largest_extent_blocks == allocator.largest_free_run()
            assert stats.extent_count == len(allocator.free_runs())
            # A fresh allocator's free space is unfragmented.
            assert stats.fragmentation_score < 0.999
            assert stats.mean_extent_blocks == pytest.approx(
                stats.free_blocks / stats.extent_count
            )

    def test_fragmentation_score_rises_with_holes(self):
        for allocator in (
            BlockGroupAllocator(total_blocks=200_000),
            ExtentAllocator(total_blocks=200_000),
        ):
            before = allocator.free_space_stats()
            runs = [allocator.allocate(64) for _ in range(50)]
            # Free every other allocation: checkerboard holes.
            for index, run_list in enumerate(runs):
                if index % 2 == 0:
                    for start, count in run_list:
                        allocator.free(start, count)
            after = allocator.free_space_stats()
            assert after.extent_count > before.extent_count
            assert after.mean_extent_blocks < before.mean_extent_blocks

    def test_export_restore_roundtrip(self):
        for make in (
            lambda: BlockGroupAllocator(total_blocks=100_000),
            lambda: ExtentAllocator(total_blocks=100_000),
        ):
            source = make()
            source.allocate(500)
            keep = source.allocate(300)
            source.allocate(100)
            for start, count in keep:
                source.free(start, count)
            state = source.export_free_state()
            target = make()
            target.restore_free_state(json.loads(json.dumps(state)))
            assert target.free_runs() == source.free_runs()
            assert target.free_blocks == source.free_blocks

    def test_restore_rejects_group_count_mismatch(self):
        source = ExtentAllocator(total_blocks=100_000, allocation_groups=4)
        target = ExtentAllocator(total_blocks=100_000, allocation_groups=2)
        with pytest.raises(ValueError):
            target.restore_free_state(source.export_free_state())


# --------------------------------------------------------------------------
class TestChurnAger:
    def test_reaches_free_space_target_and_shreds(self, aged_ext2_snapshot):
        stack, result, _ = aged_ext2_snapshot
        config = tiny_aging_config()
        free_bytes = stack.fs.free_blocks() * stack.fs.block_size
        # Final free space lands near the target (churn adds jitter).
        assert free_bytes == pytest.approx(config.free_space_target_bytes, rel=0.5)
        assert result.files_created > 0 and result.files_deleted > 0
        frag = result.fragmentation
        assert frag is not None and frag.free_space is not None
        # The point of aging: free space is many small extents, not one run.
        assert frag.free_space.extent_count > 20
        assert frag.free_space.fragmentation_score > 0.5
        assert "Aged with churn" in result.render()

    def test_aging_is_deterministic(self):
        fingerprints = []
        for _ in range(2):
            stack = build_stack("xfs", testbed=TESTBED, seed=3)
            ChurnAger(tiny_aging_config(seed=11)).age(stack)
            fingerprints.append(snapshot_stack(stack).fingerprint)
        assert fingerprints[0] == fingerprints[1]

    def test_different_seed_different_state(self):
        fingerprints = []
        for seed in (1, 2):
            stack = build_stack("ext2", testbed=TESTBED, seed=3)
            ChurnAger(tiny_aging_config(seed=seed)).age(stack)
            fingerprints.append(snapshot_stack(stack).fingerprint)
        assert fingerprints[0] != fingerprints[1]

    def test_churn_survives_space_exhaustion(self):
        """Failed creates roll back cleanly so the same path can be retried."""
        config = AgingConfig(
            free_space_target_bytes=8 * MiB,
            hole_bytes=4 * MiB,
            fill_file_bytes=2048 * MiB,
            churn_ops=300,  # far more churn than the free space can absorb
            seed=3,
        )
        stack = build_stack("ext2", testbed=TESTBED, seed=3)
        result = ChurnAger(config).age(stack)
        assert result.files_created > 0
        assert stack.fs.free_blocks() >= 0

    def test_sub_block_holes_are_clamped(self):
        """hole_bytes below the block size must age cleanly, not crash."""
        config = AgingConfig(
            free_space_target_bytes=4 * MiB,
            hole_bytes=2048,  # below the 4096-byte block size
            fill_file_bytes=2048 * MiB,
            churn_ops=30,
        )
        stack = build_stack("ext2", testbed=TESTBED, seed=5)
        result = ChurnAger(config).age(stack)
        assert result.files_created > 0
        assert result.fragmentation is not None

    def test_trace_ager(self):
        records = [
            TraceRecord(float(i), "create", f"/traced/f{i:03d}", 0, 0) for i in range(20)
        ] + [
            TraceRecord(20.0 + i, "write", f"/traced/f{i:03d}", 0, 64 * 1024)
            for i in range(20)
        ] + [
            TraceRecord(40.0 + i, "delete", f"/traced/f{i:03d}", 0, 0)
            for i in range(0, 20, 2)
        ]
        stack = build_stack("ext2", testbed=TESTBED, seed=5)
        result = TraceAger(records, passes=2).age(stack)
        assert result.files_created >= 20
        assert result.files_deleted >= 10
        assert result.fragmentation is not None
        assert stack.fs.exists("/traced/f001")


# --------------------------------------------------------------------------
class TestSnapshot:
    def test_save_load_roundtrip_fingerprint(self, aged_ext2_snapshot):
        _, _, path = aged_ext2_snapshot
        snapshot = load_snapshot(path)
        assert snapshot.fingerprint == snapshot_fingerprint(path)
        assert snapshot.fs_type == "ext2"
        assert "fingerprint" in snapshot.describe()

    def test_corrupt_snapshot_rejected(self, aged_ext2_snapshot, tmp_path):
        _, _, path = aged_ext2_snapshot
        with open(path) as handle:
            document = json.load(handle)
        document["data"]["fs"]["next_inode"] += 1
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="fingerprint"):
            load_snapshot(str(corrupt))

    def test_restore_reproduces_fs_state(self, aged_ext2_snapshot):
        stack, _, path = aged_ext2_snapshot
        restored = restore_stack(load_snapshot(path), seed=99)
        assert restored.fs.free_blocks() == stack.fs.free_blocks()
        assert restored.fs.inode_count() == stack.fs.inode_count()
        assert restored.fs.allocator.free_runs() == stack.fs.allocator.free_runs()
        assert restored.clock.now_ns == stack.clock.now_ns
        original = measure_fragmentation(stack.fs)
        again = measure_fragmentation(restored.fs)
        assert again.extent_histogram == original.extent_histogram
        assert again.free_space == original.free_space

    @pytest.mark.parametrize("fs_type", ["ext2", "ext3", "ext4", "xfs"])
    def test_restore_preserves_cache_journal_and_clock(self, fs_type, tmp_path):
        stack = build_stack(fs_type, testbed=TESTBED, seed=13)
        vfs = stack.vfs
        vfs.mkdir("/data")
        vfs.create("/data/file")
        fd = vfs.open("/data/file")
        vfs.write(fd, 256 * 1024, offset=0)
        vfs.read(fd, 64 * 1024, offset=0)

        snapshot = snapshot_stack(stack)
        path = tmp_path / f"{fs_type}.json"
        save_snapshot(snapshot, str(path))
        restored = restore_stack(load_snapshot(str(path)), seed=13)

        assert len(restored.cache) == len(stack.cache)
        assert restored.cache.dirty_pages == stack.cache.dirty_pages
        assert restored.clock.now_ns == stack.clock.now_ns
        assert restored.fs.exists("/data/file")
        inode = restored.fs.resolve("/data/file")
        assert inode.size_bytes == stack.fs.resolve("/data/file").size_bytes
        for attr in ("journal", "log"):
            original = getattr(stack.fs, attr, None)
            if original is not None:
                twin = getattr(restored.fs, attr)
                assert twin._head == original._head
                assert twin._pending_checkpoint_blocks == original._pending_checkpoint_blocks

    def test_restore_rejects_page_size_mismatch(self, aged_ext2_snapshot):
        from dataclasses import replace

        _, _, path = aged_ext2_snapshot
        other_pages = replace(TESTBED, page_size=8192)
        with pytest.raises(ValueError, match="geometry mismatch"):
            restore_stack(load_snapshot(path), testbed=other_pages)

    def test_restore_rejects_wrong_fs_type(self, aged_ext2_snapshot):
        _, _, path = aged_ext2_snapshot
        factory = snapshot_stack_factory(path)
        with pytest.raises(ValueError, match="snapshot"):
            factory("xfs", TESTBED, 1, 1.0)


# --------------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("fs_type", ["ext2", "xfs"])
    def test_restored_reruns_are_bit_identical(self, fs_type, tmp_path):
        stack = build_stack(fs_type, testbed=TESTBED, seed=21)
        ChurnAger(tiny_aging_config()).age(stack)
        path = str(tmp_path / "aged.json")
        save_snapshot(snapshot_stack(stack), path)

        spec = sequential_read_workload(24 * MiB)
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE
        )
        results = [
            run_single_repetition(
                fs_type, spec, 0, TESTBED, config, snapshot_path=path
            )
            for _ in range(2)
        ]
        serialized = [
            json.dumps(run_result_to_dict(run), sort_keys=True) for run in results
        ]
        assert serialized[0] == serialized[1]

    def test_aged_differs_from_fresh(self, tmp_path):
        stack = build_stack("ext2", testbed=TESTBED, seed=21)
        ChurnAger(tiny_aging_config()).age(stack)
        path = str(tmp_path / "aged.json")
        save_snapshot(snapshot_stack(stack), path)
        spec = sequential_read_workload(24 * MiB)
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE
        )
        fresh = run_single_repetition("ext2", spec, 0, TESTBED, config)
        aged = run_single_repetition(
            "ext2", spec, 0, TESTBED, config, snapshot_path=path
        )
        assert fresh.throughput_ops_s != aged.throughput_ops_s


# --------------------------------------------------------------------------
class TestTraceRoundTrip:
    def _records(self):
        return (
            [TraceRecord(float(i), "create", f"/t/f{i}", 0, 0) for i in range(10)]
            + [TraceRecord(10.0 + i, "write", f"/t/f{i}", 0, 32 * 1024) for i in range(10)]
            + [TraceRecord(20.0 + i, "read", f"/t/f{i}", 0, 32 * 1024) for i in range(10)]
            + [TraceRecord(30.0 + i, "fsync", f"/t/f{i}", 0, 0) for i in range(3)]
        )

    def test_trace_survives_save_load(self, tmp_path):
        records = self._records()
        path = tmp_path / "ops.trace"
        assert save_trace(records, str(path)) == len(records)
        assert load_trace(str(path)) == records

    def test_replay_on_restored_stacks_is_identical(self, aged_ext2_snapshot, tmp_path):
        _, _, snapshot_path = aged_ext2_snapshot
        path = tmp_path / "ops.trace"
        save_trace(self._records(), str(path))
        records = load_trace(str(path))

        latencies = []
        for _ in range(2):
            restored = restore_stack(load_snapshot(snapshot_path), seed=4)
            replayer = TraceReplayer(restored, honour_timing=False)
            latencies.append(list(replayer.replay(records)))
        assert latencies[0] == latencies[1]
        assert len(latencies[0]) == len(records)
        assert any(latency > 0 for latency in latencies[0])


# --------------------------------------------------------------------------
@pytest.mark.slow
class TestAgedVsFresh:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        return run_aged_vs_fresh(
            fs_types=("ext2", "xfs"),
            testbed=TESTBED,
            quick=True,
            snapshot_dir=str(tmp_path_factory.mktemp("aged-vs-fresh")),
        )

    def test_measurable_delta_on_ext2_and_xfs(self, result):
        for fs_type in ("ext2", "xfs"):
            cell = result.cells[fs_type]
            # Aging must slow the cold sequential read down measurably.
            assert cell.slowdown_factor > 1.05, (
                f"{fs_type}: aged state did not slow the benchmark "
                f"(factor {cell.slowdown_factor:.3f})"
            )
            assert cell.warnings, f"{fs_type}: expected an aging fragility warning"

    def test_fragmentation_reported_alongside(self, result):
        rendered = result.render()
        for fs_type in ("ext2", "xfs"):
            cell = result.cells[fs_type]
            frag = cell.aging.fragmentation
            assert frag is not None and frag.free_space is not None
            assert frag.free_space.fragmentation_score > 0.5
            assert cell.snapshot_fingerprint in rendered
            assert os.path.exists(cell.snapshot_path)
        assert "slowdown" in rendered

    def test_snapshots_are_reusable_artifacts(self, result):
        cell = result.cells["ext2"]
        snapshot = load_snapshot(cell.snapshot_path)
        assert snapshot.fingerprint == cell.snapshot_fingerprint
        restored = restore_stack(snapshot)
        assert restored.fs_name == "ext2"


# --------------------------------------------------------------------------
class TestAssessAging:
    def _runs(self, throughputs, hit_ratio):
        repetitions = RepetitionSet(label="synthetic")
        for index, throughput in enumerate(throughputs):
            repetitions.add(
                RunResult(
                    workload_name="w",
                    fs_name="ext2",
                    repetition=index,
                    seed=index,
                    measured_duration_s=1.0,
                    warmup_duration_s=0.0,
                    operations=int(throughput),
                    throughput_ops_s=throughput,
                    histogram=LatencyHistogram(),
                    timeline=IntervalSeries(interval_s=1.0, origin_ns=0.0),
                    cache_hit_ratio=hit_ratio,
                )
            )
        return repetitions

    def test_clean_when_states_agree(self):
        fresh = self._runs([1000.0, 1010.0], hit_ratio=0.2)
        aged = self._runs([990.0, 1005.0], hit_ratio=0.2)
        assert assess_aging(fresh, aged) == []

    def test_warns_on_throughput_divergence(self):
        fresh = self._runs([1000.0] * 3, hit_ratio=0.2)
        aged = self._runs([600.0] * 3, hit_ratio=0.2)
        warnings = assess_aging(fresh, aged)
        assert any(w.kind == "aged-state sensitivity" for w in warnings)

    def test_severe_on_regime_shift(self):
        fresh = self._runs([10000.0] * 3, hit_ratio=0.99)
        aged = self._runs([500.0] * 3, hit_ratio=0.1)
        warnings = assess_aging(fresh, aged)
        kinds = {w.kind for w in warnings}
        assert "aging regime shift" in kinds
        assert any(w.severity == "severe" for w in warnings)

    def test_rejects_bad_factor(self):
        fresh = self._runs([1.0], hit_ratio=0.5)
        with pytest.raises(ValueError):
            assess_aging(fresh, fresh, delta_factor=1.0)


# --------------------------------------------------------------------------
class TestCacheKeyWithSnapshot:
    def test_fingerprint_changes_key(self):
        spec = sequential_read_workload(8 * MiB)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1)
        fresh_key = cache_key("ext2", spec, config, 42, TESTBED)
        aged_key = cache_key("ext2", spec, config, 42, TESTBED, snapshot_fingerprint="abc")
        other_key = cache_key("ext2", spec, config, 42, TESTBED, snapshot_fingerprint="def")
        assert len({fresh_key, aged_key, other_key}) == 3
        # Omitting the fingerprint keeps pre-aging keys stable.
        assert fresh_key == cache_key("ext2", spec, config, 42, TESTBED)

    def test_workunit_derives_fingerprint_from_path_alone(self, aged_ext2_snapshot):
        """A unit carrying only the path must not collide with fresh-state keys."""
        _, _, path = aged_ext2_snapshot
        spec = sequential_read_workload(8 * MiB)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1)
        fresh_unit = WorkUnit(fs_type="ext2", spec=spec, config=config, testbed=TESTBED)
        pathonly_unit = WorkUnit(
            fs_type="ext2", spec=spec, config=config, testbed=TESTBED, snapshot_path=path
        )
        explicit_unit = WorkUnit(
            fs_type="ext2",
            spec=spec,
            config=config,
            testbed=TESTBED,
            snapshot_path=path,
            snapshot_fingerprint=snapshot_fingerprint(path),
        )
        assert pathonly_unit.key() == explicit_unit.key()
        assert pathonly_unit.key() != fresh_unit.key()

    def test_suite_rejects_mismatched_snapshot_fs_early(self, aged_ext2_snapshot):
        from repro.core.suite import NanoBenchmarkSuite

        _, _, path = aged_ext2_snapshot
        suite = NanoBenchmarkSuite(testbed=TESTBED, quick=True, snapshot_path=path)
        with pytest.raises(ValueError, match="holds 'ext2' state"):
            suite.work_units(["ext2", "xfs"])
        # The matching file system alone is fine.
        assert suite.work_units(["ext2"])

    def test_workunit_threads_fingerprint(self, aged_ext2_snapshot):
        _, _, path = aged_ext2_snapshot
        fingerprint = snapshot_fingerprint(path)
        spec = sequential_read_workload(8 * MiB)
        config = BenchmarkConfig(duration_s=1.0, repetitions=1)
        fresh_unit = WorkUnit(fs_type="ext2", spec=spec, config=config, testbed=TESTBED)
        aged_unit = WorkUnit(
            fs_type="ext2",
            spec=spec,
            config=config,
            testbed=TESTBED,
            snapshot_path=path,
            snapshot_fingerprint=fingerprint,
        )
        assert fresh_unit.key() != aged_unit.key()

    def test_executor_caches_fresh_and_aged_separately(self, aged_ext2_snapshot, tmp_path):
        _, _, path = aged_ext2_snapshot
        fingerprint = snapshot_fingerprint(path)
        spec = sequential_read_workload(8 * MiB)
        config = BenchmarkConfig(
            duration_s=0.5, repetitions=1, warmup_mode=WarmupMode.NONE
        )
        units = [
            WorkUnit(fs_type="ext2", spec=spec, config=config, testbed=TESTBED),
            WorkUnit(
                fs_type="ext2",
                spec=spec,
                config=config,
                testbed=TESTBED,
                snapshot_path=path,
                snapshot_fingerprint=fingerprint,
            ),
        ]
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelExecutor(n_workers=1, cache=cache)
        first = executor.run_units(units)
        assert cache.stats.stores == 2  # fresh and aged are distinct cells
        second = executor.run_units(units)
        assert cache.stats.hits == 2
        for before, after in zip(first, second):
            assert json.dumps(run_result_to_dict(before), sort_keys=True) == json.dumps(
                run_result_to_dict(after), sort_keys=True
            )
        # The aged run really started from the aged state: it is slower.
        assert first[0].throughput_ops_s != first[1].throughput_ops_s


# --------------------------------------------------------------------------
class TestAgeCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_suite_snapshot_fs_mismatch_is_a_clean_usage_error(
        self, aged_ext2_snapshot, capsys
    ):
        _, _, path = aged_ext2_snapshot
        # Default fs list includes ext3/xfs, which the ext2 snapshot cannot serve.
        assert cli_main(["suite", "--quick", "--snapshot", path]) == 2
        err = capsys.readouterr().err
        assert "holds 'ext2' state" in err
        assert "--fs ext2" in err

    def test_suite_snapshot_missing_file_is_a_clean_usage_error(self, capsys):
        assert (
            cli_main(["suite", "--quick", "--snapshot", "/nonexistent/snap.json"]) == 2
        )
        assert "error" in capsys.readouterr().err

    def test_age_produces_snapshot(self, tmp_path, capsys):
        out = str(tmp_path / "aged.snapshot.json")
        assert (
            cli_main(
                [
                    "age",
                    "--quick",
                    "--scaled-testbed",
                    "0.0625",
                    "--fs",
                    "ext2",
                    "--out",
                    out,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Aged with churn" in output
        assert os.path.exists(out)
        snapshot = load_snapshot(out)
        assert snapshot.fs_type == "ext2"
