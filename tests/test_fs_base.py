"""Tests for inode/extent machinery and the shared namespace logic."""

import pytest

from repro.fs.base import (
    ExistsError,
    Extent,
    Inode,
    InodeType,
    IsADirectoryError_,
    NotADirectoryError_,
    NotFoundError,
)
from repro.fs.common import NotEmptyError
from repro.fs.ext2 import Ext2FileSystem

GiB = 1024 ** 3


@pytest.fixture
def fs():
    return Ext2FileSystem(capacity_bytes=4 * GiB)


class TestExtent:
    def test_basic_mapping(self):
        extent = Extent(file_block=10, device_block=100, count=5)
        assert extent.file_end == 15
        assert extent.device_block_for(12) == 102

    def test_out_of_range_lookup_rejected(self):
        extent = Extent(0, 0, 4)
        with pytest.raises(ValueError):
            extent.device_block_for(4)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Extent(0, 0, 0)
        with pytest.raises(ValueError):
            Extent(-1, 0, 1)


class TestInodeMapping:
    def test_add_and_lookup_extent(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 10))
        inode.add_extent(Extent(10, 2000, 10))
        assert inode.lookup_extent(5).device_block_for(5) == 1005
        assert inode.lookup_extent(15).device_block_for(15) == 2005
        assert inode.lookup_extent(25) is None

    def test_adjacent_extents_are_merged(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 10))
        inode.add_extent(Extent(10, 1010, 10))
        assert len(inode.extents) == 1
        assert inode.extents[0].count == 20

    def test_overlapping_extent_rejected(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 10))
        with pytest.raises(ValueError):
            inode.add_extent(Extent(5, 5000, 10))

    def test_iter_device_runs_spans_extents(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 4))
        inode.add_extent(Extent(4, 9000, 4))
        runs = list(inode.iter_device_runs(2, 4))
        assert runs == [(1002, 2), (9000, 2)]

    def test_iter_device_runs_skips_holes(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(10, 1000, 5))
        runs = list(inode.iter_device_runs(0, 12))
        assert runs == [(1000, 2)]

    def test_fragmentation_counts_breaks(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 4))
        inode.add_extent(Extent(4, 9000, 4))
        inode.add_extent(Extent(8, 9004, 4))  # physically contiguous with previous
        assert inode.fragmentation() == 1

    def test_truncate_extents(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR)
        inode.add_extent(Extent(0, 1000, 10))
        freed = inode.truncate_extents(4)
        assert freed == [Extent(4, 1004, 6)]
        assert inode.blocks_allocated() == 4

    def test_file_blocks_from_size(self):
        inode = Inode(number=5, inode_type=InodeType.REGULAR, size_bytes=10_000)
        assert inode.file_blocks(4096) == 3


class TestNamespace:
    def test_create_and_resolve(self, fs):
        inode, cost = fs.create("/a.txt", now_ns=0.0)
        assert fs.resolve("/a.txt").number == inode.number
        assert cost.cpu_ns > 0
        assert cost.dirty_page_keys

    def test_create_in_missing_directory_fails(self, fs):
        with pytest.raises(NotFoundError):
            fs.create("/nodir/a.txt", now_ns=0.0)

    def test_create_duplicate_fails(self, fs):
        fs.create("/a", 0.0)
        with pytest.raises(ExistsError):
            fs.create("/a", 0.0)

    def test_mkdir_and_nested_create(self, fs):
        fs.mkdir("/d", 0.0)
        fs.mkdir("/d/e", 0.0)
        fs.create("/d/e/file", 0.0)
        assert fs.resolve("/d/e/file").is_regular
        assert fs.resolve("/d/e").is_directory

    def test_relative_path_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.resolve("not/absolute")

    def test_unlink_removes_file(self, fs):
        fs.create("/a", 0.0)
        fs.unlink("/a", 1.0)
        assert not fs.exists("/a")

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/d", 0.0)
        with pytest.raises(IsADirectoryError_):
            fs.unlink("/d", 1.0)

    def test_unlink_missing_fails(self, fs):
        with pytest.raises(NotFoundError):
            fs.unlink("/missing", 0.0)

    def test_rmdir_requires_empty(self, fs):
        fs.mkdir("/d", 0.0)
        fs.create("/d/f", 0.0)
        with pytest.raises(NotEmptyError):
            fs.rmdir("/d", 1.0)
        fs.unlink("/d/f", 1.0)
        fs.rmdir("/d", 2.0)
        assert not fs.exists("/d")

    def test_rmdir_on_file_fails(self, fs):
        fs.create("/f", 0.0)
        with pytest.raises(NotADirectoryError_):
            fs.rmdir("/f", 0.0)

    def test_rename_moves_file(self, fs):
        fs.mkdir("/d", 0.0)
        fs.create("/a", 0.0)
        fs.rename("/a", "/d/b", 1.0)
        assert not fs.exists("/a")
        assert fs.exists("/d/b")

    def test_rename_replaces_existing_file(self, fs):
        fs.create("/a", 0.0)
        fs.create("/b", 0.0)
        fs.rename("/a", "/b", 1.0)
        assert not fs.exists("/a")
        assert fs.exists("/b")

    def test_list_directory_sorted(self, fs):
        fs.create("/b", 0.0)
        fs.create("/a", 0.0)
        names = [e.name for e in fs.list_directory("/")]
        assert names == sorted(names)
        assert {"a", "b"} <= set(names)

    def test_path_depth(self, fs):
        assert fs.path_depth("/") == 0
        assert fs.path_depth("/a/b/c") == 3

    def test_file_creation_times_recorded(self, fs):
        inode, _ = fs.create("/a", now_ns=123.0)
        assert inode.ctime_ns == 123.0
        assert inode.mtime_ns == 123.0

    def test_inode_count_tracks_creates_and_unlinks(self, fs):
        before = fs.inode_count()
        fs.create("/x", 0.0)
        assert fs.inode_count() == before + 1
        fs.unlink("/x", 0.0)
        assert fs.inode_count() == before

    def test_lookup_cost_scales_with_depth(self, fs):
        fs.mkdir("/d1", 0.0)
        fs.mkdir("/d1/d2", 0.0)
        fs.create("/d1/d2/file", 0.0)
        fs.create("/file", 0.0)
        shallow = fs.lookup_cost("/file")
        deep = fs.lookup_cost("/d1/d2/file")
        assert deep.cpu_ns > shallow.cpu_ns
        assert len(deep.metadata_reads) > len(shallow.metadata_reads)
