"""Tests for the experiment harnesses (shrunken configurations).

These tests run each figure's harness on aggressively scaled-down testbeds so
that the *mechanism* of every experiment is exercised end-to-end without the
cost of the full default or paper-scale protocols (the benchmarks do those).
"""

import pytest

from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
)
from repro.experiments.config import ExperimentScale, default_scale, paper_scale, quick_scale
from repro.storage.config import scaled_testbed

MiB = 1024 * 1024


def tiny_scale(**overrides) -> ExperimentScale:
    """A unit-test scale: tiny machine, short runs."""
    values = dict(
        name="unit-test",
        figure1_duration_s=1.0,
        figure1_repetitions=2,
        figure1_sizes_mb=(8, 16, 24, 32, 48),
        figure2_duration_s=60.0,
        figure2_file_mb=26,
        figure2_testbed_scale=1.0 / 16.0,
        figure3_ops=600,
        figure3_sizes_mb=(8, 64, 256),
        figure4_duration_s=60.0,
        figure4_file_mb=20,
        interval_s=5.0,
    )
    values.update(overrides)
    return ExperimentScale(**values)


class TestScales:
    def test_predefined_scales_validate(self):
        default_scale().validate()
        paper_scale().validate()
        quick_scale().validate()

    def test_paper_scale_matches_protocol(self):
        scale = paper_scale()
        assert scale.figure1_repetitions == 10
        assert len(scale.figure1_sizes_mb) == 16
        assert scale.figure2_duration_s == 1200.0
        assert scale.figure2_testbed_scale == 1.0
        assert scale.interval_s == 10.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            tiny_scale(figure1_duration_s=0).validate()
        with pytest.raises(ValueError):
            tiny_scale(figure2_testbed_scale=2.0).validate()


class TestFigure1Harness:
    def test_cliff_appears_at_the_cache_boundary(self):
        testbed = scaled_testbed(1.0 / 16.0)  # ~25.6 MiB page cache
        result = run_figure1(
            fs_type="ext2", testbed=testbed, scale=tiny_scale(), seed=3
        )
        rows = result.rows()
        assert len(rows) == 5
        means = {size: mean for size, mean, _ in rows}
        # Sizes below the cache run at memory speed; sizes above crawl.
        assert means[8] > 5 * means[48]
        assert result.transition is not None
        assert result.sweep.fragility() > 0.5
        assert "Figure 1" in result.render()

    def test_figure1_io_bound_variance_exceeds_memory_bound(self):
        testbed = scaled_testbed(1.0 / 16.0)
        result = run_figure1(fs_type="ext2", testbed=testbed, scale=tiny_scale(), seed=3)
        rows = result.rows()
        memory_rsd = rows[0][2]
        io_rsd = max(rsd for size, _, rsd in rows if size >= 32)
        assert io_rsd >= memory_rsd


class TestFigure2Harness:
    @pytest.mark.slow
    def test_warmup_curves_diverge_then_converge(self):
        result = run_figure2(fs_types=("ext2", "xfs"), scale=tiny_scale(), seed=3)
        assert set(result.filesystems()) == {"ext2", "xfs"}
        # Cache warm-up means every file system speeds up over the run.
        for fs_name in result.filesystems():
            series = result.runs[fs_name].timeline.throughputs()
            assert series[-1] > series[0] * 2
        # Mid-run the two differ substantially (different cluster sizes).
        assert result.mid_run_spread() >= 2.0
        # XFS (larger cluster reads) warms no later than ext2.
        xfs_warm = result.warmup_interval_index("xfs")
        ext2_warm = result.warmup_interval_index("ext2")
        if xfs_warm is not None and ext2_warm is not None:
            assert xfs_warm <= ext2_warm
        assert "Figure 2" in result.render()

    @pytest.mark.slow
    def test_explicit_testbed_is_respected(self):
        testbed = scaled_testbed(1.0 / 16.0)
        result = run_figure2(fs_types=("ext2",), testbed=testbed, scale=tiny_scale(), seed=3)
        assert result.file_size_bytes == testbed.page_cache_bytes


class TestFigure3Harness:
    def test_histogram_modality_follows_working_set_size(self):
        testbed = scaled_testbed(1.0 / 16.0)
        result = run_figure3(
            fs_type="ext2", testbed=testbed, scale=tiny_scale(), sizes_mb=(8, 64, 256), seed=3
        )
        checks = result.checks()
        assert checks["small_file_single_memory_peak"]
        assert checks["medium_file_bimodal"]
        assert checks["large_file_disk_peak_dominates"]
        assert checks["latencies_span_three_orders_of_magnitude"]
        assert result.latency_span_orders() >= 3.0
        assert "Figure 3" in result.render()

    def test_histogram_counts_match_requested_ops(self):
        testbed = scaled_testbed(1.0 / 16.0)
        result = run_figure3(
            fs_type="ext2", testbed=testbed, scale=tiny_scale(figure3_ops=300),
            sizes_mb=(8, 64), seed=3
        )
        for size_mb in result.sizes_mb():
            assert result.histograms[size_mb].total == 300


class TestFigure4Harness:
    @pytest.mark.slow
    def test_disk_peak_fades_as_cache_warms(self):
        testbed = scaled_testbed(1.0 / 16.0)
        result = run_figure4(fs_type="ext2", testbed=testbed, scale=tiny_scale(), seed=3)
        checks = result.checks()
        assert checks["enough_intervals"]
        assert checks["disk_peak_dominates_early"]
        assert checks["memory_peak_dominates_late"]
        assert result.bimodal_fraction() > 0.0
        migration = result.peak_migration()
        assert migration[0][1] > migration[-1][1]  # disk fraction shrinks
        assert "Figure 4" in result.render()


class TestTable1Harness:
    def test_all_checks_pass(self):
        result = run_table1()
        assert all(result.checks().values())
        assert result.row_count() == 19
        assert result.most_used() == "Ad-hoc"
        rendered = result.render()
        assert "Postmark" in rendered and "Ad-hoc" in rendered
