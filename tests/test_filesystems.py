"""Tests for the Ext2/Ext3/Ext4/XFS behavioural models."""

import pytest

from repro.fs.ext2 import Ext2FileSystem
from repro.fs.ext3 import Ext3FileSystem, JournalMode
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.xfs import XfsFileSystem

GiB = 1024 ** 3
MiB = 1024 ** 2


@pytest.fixture(params=["ext2", "ext3", "ext4", "xfs"])
def any_fs(request):
    classes = {
        "ext2": Ext2FileSystem,
        "ext3": Ext3FileSystem,
        "ext4": Ext4FileSystem,
        "xfs": XfsFileSystem,
    }
    return classes[request.param](capacity_bytes=8 * GiB)


class TestCommonBehaviour:
    def test_names_and_cluster_sizes(self):
        assert Ext2FileSystem(GiB).name == "ext2"
        assert Ext3FileSystem(GiB).name == "ext3"
        assert XfsFileSystem(GiB).name == "xfs"
        assert Ext2FileSystem(GiB).cluster_pages < XfsFileSystem(GiB).cluster_pages

    def test_allocate_range_maps_blocks(self, any_fs):
        inode, _ = any_fs.create("/f", 0.0)
        any_fs.allocate_range(inode, 0, 10 * MiB, 0.0)
        assert inode.size_bytes == 10 * MiB
        # Ext4/XFS delay allocation until a flush/read forces it; the forced
        # flush's journal/log writes ride along in the returned batch, so
        # only the read requests must cover exactly the mapped range.
        requests = any_fs.map_read(inode, 0, 16)
        assert requests, "mapping a written range must produce device requests"
        total_read_bytes = sum(r.nbytes for r in requests if not r.is_write)
        assert total_read_bytes == 16 * any_fs.block_size

    def test_allocate_range_is_idempotent_for_overwrites(self, any_fs):
        inode, _ = any_fs.create("/f", 0.0)
        any_fs.allocate_range(inode, 0, 1 * MiB, 0.0)
        any_fs.map_read(inode, 0, 1)  # force any delayed allocation
        blocks_before = any_fs.free_blocks()
        any_fs.allocate_range(inode, 0, 1 * MiB, 1.0)
        any_fs.map_read(inode, 0, 1)
        assert any_fs.free_blocks() == blocks_before

    def test_unlink_frees_blocks(self, any_fs):
        inode, _ = any_fs.create("/f", 0.0)
        any_fs.allocate_range(inode, 0, 4 * MiB, 0.0)
        any_fs.map_read(inode, 0, 1)
        free_with_file = any_fs.free_blocks()
        any_fs.unlink("/f", 1.0)
        assert any_fs.free_blocks() > free_with_file

    def test_fsync_cost_produces_durable_work(self, any_fs):
        inode, _ = any_fs.create("/f", 0.0)
        any_fs.allocate_range(inode, 0, 64 * 1024, 0.0)
        cost = any_fs.fsync_cost(inode, dirty_data_pages=4, now_ns=1.0)
        assert cost.cpu_ns > 0
        assert cost.device_requests or cost.flushes

    def test_utilization_increases_with_data(self, any_fs):
        before = any_fs.utilization()
        inode, _ = any_fs.create("/big", 0.0)
        any_fs.allocate_range(inode, 0, 256 * MiB, 0.0)
        any_fs.map_read(inode, 0, 1)
        assert any_fs.utilization() > before


class TestExt2Layout:
    def test_large_file_fragments_at_group_boundaries(self):
        fs = Ext2FileSystem(capacity_bytes=8 * GiB, blocks_per_group=32768)
        inode, _ = fs.create("/big", 0.0)
        fs.allocate_range(inode, 0, 512 * MiB, 0.0)  # 4 block groups worth
        assert inode.fragmentation() >= 1

    def test_linear_directory_lookup_cost_grows_with_entries(self):
        fs = Ext2FileSystem(capacity_bytes=2 * GiB)
        fs.mkdir("/small", 0.0)
        fs.mkdir("/big", 0.0)
        fs.create("/small/one", 0.0)
        for index in range(400):
            fs.create(f"/big/f{index}", 0.0)
        small_cost = fs.lookup_cost("/small/one")
        big_cost = fs.lookup_cost("/big/f399")
        assert big_cost.cpu_ns > small_cost.cpu_ns


class TestExt3Journaling:
    def test_metadata_operations_commit_to_journal(self):
        fs = Ext3FileSystem(capacity_bytes=2 * GiB)
        _, cost = fs.create("/f", 0.0)
        assert fs.stats.journal_commits >= 1
        assert cost.flushes >= 1
        journal_start = fs.journal.start_block * fs.block_size
        journal_end = (fs.journal.start_block + fs.journal.size_blocks) * fs.block_size
        assert any(journal_start <= r.offset_bytes < journal_end for r in cost.device_requests)

    def test_ext2_creates_cost_less_than_ext3(self):
        ext2 = Ext2FileSystem(capacity_bytes=2 * GiB)
        ext3 = Ext3FileSystem(capacity_bytes=2 * GiB)
        _, ext2_cost = ext2.create("/f", 0.0)
        _, ext3_cost = ext3.create("/f", 0.0)
        assert not ext2_cost.device_requests  # no journal
        assert ext3_cost.device_requests

    def test_journal_modes(self):
        ordered = Ext3FileSystem(2 * GiB, journal_mode=JournalMode.ORDERED)
        data_journal = Ext3FileSystem(2 * GiB, journal_mode=JournalMode.JOURNAL)
        inode_o, _ = ordered.create("/f", 0.0)
        inode_j, _ = data_journal.create("/f", 0.0)
        cost_o = ordered.fsync_cost(inode_o, dirty_data_pages=8, now_ns=1.0)
        cost_j = data_journal.fsync_cost(inode_j, dirty_data_pages=8, now_ns=1.0)
        logged_o = sum(r.nbytes for r in cost_o.device_requests)
        logged_j = sum(r.nbytes for r in cost_j.device_requests)
        assert logged_j >= logged_o

    def test_no_barriers_option(self):
        fs = Ext3FileSystem(capacity_bytes=2 * GiB, use_barriers=False)
        _, cost = fs.create("/f", 0.0)
        assert cost.flushes == 0


class TestXfsBehaviour:
    def test_delayed_allocation_defers_extent_creation(self):
        fs = XfsFileSystem(capacity_bytes=4 * GiB, delayed_allocation=True)
        inode, _ = fs.create("/f", 0.0)
        fs.allocate_range(inode, 0, 32 * MiB, 0.0)
        assert inode.blocks_allocated() == 0  # reservation only
        fs.flush_delalloc(inode, 1.0)
        assert inode.blocks_allocated() == (32 * MiB) // fs.block_size

    def test_read_forces_delayed_allocation(self):
        fs = XfsFileSystem(capacity_bytes=4 * GiB, delayed_allocation=True)
        inode, _ = fs.create("/f", 0.0)
        fs.allocate_range(inode, 0, 8 * MiB, 0.0)
        requests = fs.map_read(inode, 0, 4)
        assert requests
        assert inode.blocks_allocated() > 0

    def test_delayed_allocation_produces_fewer_fragments(self):
        delayed = XfsFileSystem(capacity_bytes=4 * GiB, delayed_allocation=True)
        eager = Ext2FileSystem(capacity_bytes=4 * GiB)
        delayed_inode, _ = delayed.create("/f", 0.0)
        eager_inode, _ = eager.create("/f", 0.0)
        # Many small appends, as an application writing a log would do.
        for chunk in range(64):
            delayed.allocate_range(delayed_inode, chunk * 256 * 1024, 256 * 1024, 0.0)
            eager.allocate_range(eager_inode, chunk * 256 * 1024, 256 * 1024, 0.0)
        delayed.flush_delalloc(delayed_inode, 1.0)
        assert len(delayed_inode.extents) <= len(eager_inode.extents)

    def test_btree_directories_cheaper_for_huge_directories(self):
        xfs = XfsFileSystem(capacity_bytes=4 * GiB)
        ext2 = Ext2FileSystem(capacity_bytes=4 * GiB)
        for fs in (xfs, ext2):
            fs.mkdir("/big", 0.0)
            for index in range(800):
                fs.create(f"/big/f{index}", 0.0)
        assert xfs.lookup_cost("/big/f799").cpu_ns < ext2.lookup_cost("/big/f799").cpu_ns

    def test_log_commits_recorded(self):
        fs = XfsFileSystem(capacity_bytes=2 * GiB)
        fs.create("/f", 0.0)
        assert fs.stats.journal_commits >= 1
