"""Tests for the command-line interface."""

import pytest

import repro.cli as cli


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure99"])

    def test_unknown_fs_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure1", "--fs", "zfs"])


class TestTable1Command:
    def test_prints_the_table(self, capsys):
        assert cli.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Postmark" in output
        assert "Ad-hoc" in output
        assert "Legend" in output


class TestFigureCommands:
    """Figure commands are dispatched with stubbed harnesses (the real ones are
    exercised by tests/test_experiments.py and by the benchmarks)."""

    class _StubResult:
        def render(self):
            return "stub-render"

    def test_figure1_dispatch(self, monkeypatch, capsys):
        captured = {}

        def fake_run_figure1(fs_type, scale):
            captured["fs"] = fs_type
            captured["scale"] = scale
            return self._StubResult()

        monkeypatch.setattr(cli, "run_figure1", fake_run_figure1)
        assert cli.main(["figure1", "--fs", "xfs"]) == 0
        assert captured["fs"] == "xfs"
        assert captured["scale"].name == "default"
        assert "stub-render" in capsys.readouterr().out

    def test_paper_scale_flag(self, monkeypatch):
        captured = {}
        monkeypatch.setattr(
            cli, "run_figure3", lambda fs_type, scale: captured.update(scale=scale) or self._StubResult()
        )
        cli.main(["--paper-scale", "figure3"])
        assert captured["scale"].name == "paper"

    def test_figure2_default_filesystems(self, monkeypatch):
        captured = {}
        monkeypatch.setattr(
            cli,
            "run_figure2",
            lambda fs_types, scale: captured.update(fs=fs_types) or self._StubResult(),
        )
        cli.main(["figure2"])
        assert captured["fs"] == ("ext2", "ext3", "xfs")

    def test_figure2_explicit_filesystems(self, monkeypatch):
        captured = {}
        monkeypatch.setattr(
            cli,
            "run_figure2",
            lambda fs_types, scale: captured.update(fs=fs_types) or self._StubResult(),
        )
        cli.main(["figure2", "--fs", "ext2", "--fs", "xfs"])
        assert captured["fs"] == ("ext2", "xfs")

    def test_figure4_and_zoom_dispatch(self, monkeypatch):
        calls = []
        monkeypatch.setattr(cli, "run_figure4", lambda fs_type, scale: calls.append("f4") or self._StubResult())
        monkeypatch.setattr(
            cli, "run_transition_zoom", lambda fs_type, scale: calls.append("zoom") or self._StubResult()
        )
        cli.main(["figure4"])
        cli.main(["zoom"])
        assert calls == ["f4", "zoom"]

    def test_suite_command(self, monkeypatch, capsys):
        class _FakeSuite:
            def __init__(self, testbed=None, quick=False, n_workers=1, cache_dir=None, snapshot_path=None):
                self.quick = quick

            def run(self, fs_types):
                return {"fs": fs_types}

        monkeypatch.setattr(cli, "NanoBenchmarkSuite", _FakeSuite)
        monkeypatch.setattr(cli, "suite_report", lambda result: f"suite over {result['fs']}")
        assert cli.main(["suite", "--quick", "--fs", "ext2", "--scaled-testbed", "0.125"]) == 0
        assert "ext2" in capsys.readouterr().out


class TestParallelFlags:
    """--workers / --cache-dir / --no-cache reach the execution layer."""

    class _FakeSuite:
        captured = {}

        def __init__(self, testbed=None, quick=False, n_workers=1, cache_dir=None, snapshot_path=None):
            type(self).captured = {"n_workers": n_workers, "cache_dir": cache_dir}

        def run(self, fs_types):
            return {"fs": fs_types}

    def test_suite_workers_and_cache_dir(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "NanoBenchmarkSuite", self._FakeSuite)
        monkeypatch.setattr(cli, "suite_report", lambda result: "ok")
        assert cli.main(["suite", "--workers", "4", "--cache-dir", "/tmp/c"]) == 0
        assert self._FakeSuite.captured == {"n_workers": 4, "cache_dir": "/tmp/c"}

    def test_no_cache_overrides_cache_dir(self, monkeypatch):
        monkeypatch.setattr(cli, "NanoBenchmarkSuite", self._FakeSuite)
        monkeypatch.setattr(cli, "suite_report", lambda result: "ok")
        cli.main(["suite", "--cache-dir", "/tmp/c", "--no-cache"])
        assert self._FakeSuite.captured["cache_dir"] is None

    def test_survey_dispatch(self, monkeypatch, capsys):
        captured = {}

        class _FakeSurvey:
            def __init__(self, testbed=None, quick=False, n_workers=1, cache_dir=None, snapshot_path=None):
                captured.update(n_workers=n_workers, cache_dir=cache_dir, quick=quick)

            def run(self, fs_types):
                captured["fs"] = fs_types

                class _Result:
                    def render(self):
                        return "survey-render"

                return _Result()

        monkeypatch.setattr(cli, "MeasuredSurvey", _FakeSurvey)
        assert cli.main(["survey", "--quick", "--fs", "xfs", "--workers", "0"]) == 0
        assert captured["n_workers"] == 0
        assert captured["quick"] is True
        assert captured["fs"] == ("xfs",)
        assert "survey-render" in capsys.readouterr().out


class TestDeviceAndSchedulerFlags:
    """--device/--scheduler choices come from the registries, never a hardcoded list."""

    class _FakeSuite:
        captured = {}

        def __init__(self, testbed=None, quick=False, n_workers=1, cache_dir=None, snapshot_path=None):
            type(self).captured = {"testbed": testbed}

        def run(self, fs_types):
            return {"fs": fs_types}

    def test_choices_track_the_registries(self):
        from repro.storage.config import DEVICE_REGISTRY
        from repro.storage.device import SCHEDULER_REGISTRY

        assert cli.DEVICE_CHOICES == tuple(DEVICE_REGISTRY)
        assert cli.SCHEDULER_CHOICES == tuple(SCHEDULER_REGISTRY)
        assert "ssd-ftl-steady" in cli.DEVICE_CHOICES

    def test_suite_device_and_scheduler_reach_the_testbed(self, monkeypatch):
        monkeypatch.setattr(cli, "NanoBenchmarkSuite", self._FakeSuite)
        monkeypatch.setattr(cli, "suite_report", lambda result: "ok")
        assert (
            cli.main(
                ["suite", "--quick", "--device", "ssd-ftl", "--scheduler", "deadline"]
            )
            == 0
        )
        testbed = self._FakeSuite.captured["testbed"]
        assert testbed.device_kind == "ssd-ftl"
        assert testbed.io_scheduler == "deadline"

    def test_unregistered_device_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["suite", "--device", "floppy"])


class TestSsdSteadyCommand:
    def test_dispatch_and_render(self, monkeypatch, capsys):
        captured = {}

        class _StubResult:
            def render(self):
                return "ssd-steady-render"

        def fake_run(fs_type, workload, testbed, quick, n_workers, cache_dir):
            captured.update(
                fs_type=fs_type, workload=workload, quick=quick, n_workers=n_workers
            )
            return _StubResult()

        monkeypatch.setattr(cli, "run_fresh_vs_steady", fake_run)
        assert cli.main(["ssd-steady", "--quick", "--fs", "ext2", "--workers", "2"]) == 0
        assert captured == {
            "fs_type": "ext2",
            "workload": "postmark",
            "quick": True,
            "n_workers": 2,
        }
        assert "ssd-steady-render" in capsys.readouterr().out

    def test_unknown_workload_is_a_usage_error(self, capsys):
        assert cli.main(["ssd-steady", "--quick", "--workload", "no-such-workload"]) == 2
        assert "error" in capsys.readouterr().err
