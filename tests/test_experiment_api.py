"""Tests for the declarative experiment API (grid, experiment, registries, CLI).

The load-bearing guarantees of the redesign:

* grid expansion is the declared cartesian product, with the seed axis pooled
  into repetitions and config-field axes overriding the protocol per cell;
* an ``Experiment`` over the same cells as a ``NanoBenchmarkSuite`` run is
  **bit-identical** to it, serial and parallel, and shares its cache entries
  (cache keys unchanged);
* ``ResultFrame`` round-trips through JSONL and CSV and pivots faithfully;
* the legacy entry points are thin deprecation shims over the same engine.
"""

from __future__ import annotations

import io

import pytest

import repro.cli as cli
from repro.core.benchmark import NanoBenchmark
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame, rows_for_run, run_metrics
from repro.core.parallel import group_label
from repro.core.persistence import run_result_to_dict
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.core.suite import NanoBenchmarkSuite
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload, stat_workload

MiB = 1024 * 1024


def quick_config(**overrides):
    values = dict(
        duration_s=0.5,
        repetitions=2,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
    )
    values.update(overrides)
    return BenchmarkConfig(**values)


@pytest.fixture
def testbed():
    return scaled_testbed(1.0 / 16.0)


@pytest.fixture
def benchmarks():
    return [
        NanoBenchmark(
            name="inmemory",
            description="cached reads",
            workload_factory=lambda: random_read_workload(2 * MiB),
            config=quick_config(),
        ),
        NanoBenchmark(
            name="stat",
            description="stat scan",
            workload_factory=lambda: stat_workload(file_count=50, directories=5),
            config=quick_config(warmup_mode=WarmupMode.NONE),
        ),
    ]


def dicts(repetitions):
    return [run_result_to_dict(run) for run in repetitions]


class TestParameterGrid:
    def test_cartesian_product_and_order(self):
        grid = ParameterGrid.of(workload=("a", "b"), fs=("ext2", "xfs"))
        points = grid.points()
        assert len(points) == len(grid) == 4
        # Last axis fastest (workload-major), like the legacy suite loop.
        assert points == [
            {"workload": "a", "fs": "ext2"},
            {"workload": "a", "fs": "xfs"},
            {"workload": "b", "fs": "ext2"},
            {"workload": "b", "fs": "xfs"},
        ]

    def test_scalars_promote_and_ranges_accepted(self):
        grid = ParameterGrid.of(fs="ext2", seed=range(3))
        assert grid.axis("fs") == ("ext2",)
        assert grid.axis("seed") == (0, 1, 2)

    def test_exclude_and_with_axis(self):
        grid = ParameterGrid.of(fs=("ext2",), seed=(1, 2, 3))
        assert grid.points(exclude=("seed",)) == [{"fs": "ext2"}]
        widened = grid.with_axis("fs", ("ext2", "xfs"))
        assert len(widened) == 6 and len(grid) == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid.of(fs=())
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_describe_counts_grid_points_and_measurements(self, testbed, benchmarks):
        grid = ParameterGrid.of(fs=("ext2", "xfs"), seed=(0, 1, 2))
        assert "= 6 grid points" in grid.describe()
        # The experiment reports the true repetition total (cells x reps),
        # which the grid alone cannot know without a seed axis.
        experiment = Experiment(
            ParameterGrid.of(workload=benchmarks, fs=("ext2",)), testbed=testbed
        )
        assert "= 4 measurements" in experiment.describe()  # 2 cells x 2 reps


class TestExperimentExpansion:
    def test_unknown_axis_rejected_up_front(self, testbed):
        with pytest.raises(ValueError, match="unknown grid axis"):
            Experiment(ParameterGrid.of(fs=("ext2",), warp_factor=(9,)), testbed=testbed)

    def test_unknown_names_rejected(self, testbed):
        with pytest.raises(ValueError, match="unknown fs"):
            Experiment(ParameterGrid.of(fs=("zfs",)), testbed=testbed).cells()
        with pytest.raises(ValueError, match="unknown workload"):
            Experiment(ParameterGrid.of(workload=("no-such",)), testbed=testbed).cells()
        with pytest.raises(ValueError, match="unknown device"):
            Experiment(ParameterGrid.of(device=("tape",)), testbed=testbed).cells()
        with pytest.raises(ValueError, match="unknown scheduler"):
            Experiment(ParameterGrid.of(scheduler=("cfq",)), testbed=testbed).cells()

    def test_seed_axis_pools_into_repetitions(self, testbed, benchmarks):
        experiment = Experiment(
            ParameterGrid.of(workload=[benchmarks[0]], fs=("ext2",), seed=(7, 9, 20)),
            testbed=testbed,
        )
        cells = experiment.cells()
        assert len(cells) == 1
        assert cells[0].seeds == (7, 9, 20)
        units = experiment.work_units()
        assert [unit.seed for unit in units] == [7, 9, 20]
        assert [unit.repetition for unit in units] == [0, 1, 2]

    def test_enum_axis_values_record_their_enum_value(self, testbed, benchmarks):
        experiment = Experiment(
            ParameterGrid.of(
                workload=[benchmarks[0]],
                fs=("ext2",),
                warmup_mode=(WarmupMode.NONE, WarmupMode.PREWARM),
            ),
            testbed=testbed,
        )
        cells = experiment.cells()
        # Labels and frame columns carry "none"/"prewarm", never
        # "WarmupMode.NONE" (WarmupMode is a str-subclass enum).
        assert [cell.axes["warmup_mode"] for cell in cells] == ["none", "prewarm"]
        assert cells[0].label.endswith("#warmup_mode=none")
        assert [cell.config.warmup_mode for cell in cells] == [
            WarmupMode.NONE,
            WarmupMode.PREWARM,
        ]

    def test_config_field_axis_overrides_protocol(self, testbed, benchmarks):
        experiment = Experiment(
            ParameterGrid.of(workload=[benchmarks[0]], fs=("ext2",), duration_s=(0.25, 0.75)),
            testbed=testbed,
        )
        cells = experiment.cells()
        assert [cell.config.duration_s for cell in cells] == [0.25, 0.75]
        # Varying extra axes land in the cell labels, so cells stay distinct.
        assert cells[0].label != cells[1].label
        assert "duration_s=0.25" in cells[0].label

    def test_testbed_axes_derive_per_cell_machines(self, testbed):
        experiment = Experiment(
            ParameterGrid.of(
                workload=("random-read-cached",),
                fs=("ext2",),
                device=("ssd",),
                scheduler=("deadline",),
                cache_mb=(8,),
            ),
            config=quick_config(),
            testbed=testbed,
        )
        cell = experiment.cells()[0]
        assert cell.testbed.device_kind == "ssd"
        assert cell.testbed.io_scheduler == "deadline"
        assert cell.testbed.page_cache_bytes == 8 * MiB
        # Registry workloads size off the *base* testbed, so testbed axes
        # vary the machine under a fixed workload.
        expected = max(2 * MiB, int(testbed.page_cache_bytes * 0.25))
        assert cell.spec.fileset.size_distribution.mean() == pytest.approx(expected)

    def test_int_overrides_coerce_to_float_fields(self, testbed, benchmarks):
        # '--axis duration_s=2' parses as int; the field is float.  Without
        # coercion the canonical hash of 2 differs from 2.0 and the same
        # grid declared with floats would miss the cache.
        int_axis = Experiment(
            ParameterGrid.of(workload=[benchmarks[0]], fs=("ext2",), duration_s=(2,)),
            testbed=testbed,
        )
        cell = int_axis.cells()[0]
        assert cell.config.duration_s == 2.0 and isinstance(cell.config.duration_s, float)
        float_axis = Experiment(
            ParameterGrid.of(workload=[benchmarks[0]], fs=("ext2",), duration_s=(2.0,)),
            testbed=testbed,
        )
        assert [u.key() for u in int_axis.work_units()] == [
            u.key() for u in float_axis.work_units()
        ]
        # Int fields stay ints; bools stay bools.
        reps = Experiment(
            ParameterGrid.of(
                workload=[benchmarks[0]], fs=("ext2",), repetitions=(3,), cold_cache=(True,)
            ),
            testbed=testbed,
        ).cells()[0]
        assert reps.config.repetitions == 3 and isinstance(reps.config.repetitions, int)
        assert reps.config.cold_cache is True

    def test_render_keeps_workload_names_with_at_signs(self, testbed):
        spec_a = random_read_workload(2 * MiB, name="mix@v1")
        spec_b = random_read_workload(2 * MiB, name="mix@v2")
        outcome = Experiment(
            ParameterGrid.of(workload=(spec_a, spec_b), fs=("ext2",), duration_s=(0.25, 0.5)),
            config=quick_config(repetitions=1),
            testbed=testbed,
        ).run()
        rendered = outcome.render()
        assert "mix@v1#duration_s=0.25" in rendered
        assert "mix@v2#duration_s=0.5" in rendered

    def test_cache_mb_sweep_keeps_the_working_set_fixed(self, testbed):
        experiment = Experiment(
            ParameterGrid.of(
                workload=("random-read-cached",), fs=("ext2",), cache_mb=(4, 16)
            ),
            config=quick_config(),
            testbed=testbed,
        )
        cells = experiment.cells()
        sizes = {cell.spec.fileset.size_distribution.mean() for cell in cells}
        assert len(sizes) == 1  # the axis varies the cache, not the file

    def test_fractional_cache_mb_rejected(self, testbed):
        with pytest.raises(ValueError, match="whole MiB"):
            Experiment(
                ParameterGrid.of(fs=("ext2",), cache_mb=(64.5,)), testbed=testbed
            ).cells()
        # Whole-number floats are fine (CLI parses 64.0 as float).
        cell = Experiment(
            ParameterGrid.of(
                workload=("random-read-cached",), fs=("ext2",), cache_mb=(8.0,)
            ),
            config=quick_config(),
            testbed=testbed,
        ).cells()[0]
        assert cell.testbed.page_cache_bytes == 8 * MiB

    def test_seed_and_repetitions_axes_conflict(self, testbed):
        with pytest.raises(ValueError, match="seed axis or a repetitions axis"):
            Experiment(
                ParameterGrid.of(fs=("ext2",), seed=(0, 1), repetitions=(3,)),
                testbed=testbed,
            )

    def test_registry_workload_resolves_by_name(self, testbed):
        experiment = Experiment(
            ParameterGrid.of(workload=("postmark",), fs=("ext4",)),
            config=quick_config(),
            testbed=testbed,
        )
        cell = experiment.cells()[0]
        assert cell.axes["workload"] == "postmark"
        assert cell.spec.name == "postmark"
        assert cell.label == "postmark@ext4"

    def test_duplicate_labels_disambiguated(self, testbed):
        spec = random_read_workload(2 * MiB)
        clone = random_read_workload(4 * MiB, name=spec.name)
        experiment = Experiment(
            ParameterGrid.of(workload=(spec, clone), fs=("ext2",)),
            config=quick_config(),
            testbed=testbed,
        )
        labels = [cell.label for cell in experiment.cells()]
        assert len(set(labels)) == 2


class TestSuiteEquivalence:
    """The acceptance criterion: Experiment vs NanoBenchmarkSuite, bit-identical."""

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_grid_matches_suite_cells(self, testbed, benchmarks, n_workers):
        fs_types = ("ext2", "xfs")
        suite = NanoBenchmarkSuite(benchmarks, testbed=testbed, n_workers=n_workers)
        suite_result = suite.run(fs_types)

        experiment = Experiment(
            ParameterGrid.of(workload=benchmarks, fs=fs_types, seed=(42, 43)),
            testbed=testbed,
            n_workers=n_workers,
        )
        outcome = experiment.run()
        for benchmark in benchmarks:
            for fs_type in fs_types:
                assert dicts(suite_result.result_for(benchmark.name, fs_type)) == dicts(
                    outcome.sets[group_label(benchmark.name, fs_type)]
                ), (benchmark.name, fs_type, n_workers)

    def test_experiment_serial_matches_parallel(self, testbed, benchmarks):
        grid = ParameterGrid.of(workload=benchmarks, fs=("ext2", "xfs"), seed=(0, 1))
        serial = Experiment(grid, testbed=testbed, n_workers=1).run()
        parallel = Experiment(grid, testbed=testbed, n_workers=2).run()
        assert serial.labels() == parallel.labels()
        for label in serial.labels():
            assert dicts(serial.sets[label]) == dicts(parallel.sets[label]), label
        assert serial.frame == parallel.frame

    def test_cache_keys_unchanged_suite_and_experiment_share_entries(
        self, tmp_path, testbed, benchmarks
    ):
        cache_dir = str(tmp_path / "cache")
        suite = NanoBenchmarkSuite(
            benchmarks, testbed=testbed, n_workers=1, cache_dir=cache_dir
        )
        suite.run(("ext2",))

        experiment = Experiment(
            ParameterGrid.of(workload=benchmarks, fs=("ext2",)),
            testbed=testbed,
            n_workers=1,
            cache_dir=cache_dir,
        )
        outcome = experiment.run()
        assert outcome.cache_stats is not None
        assert outcome.cache_stats.misses == 0
        assert outcome.cache_stats.hits == sum(len(c.seeds) for c in outcome.cells)

    def test_streaming_callbacks_fire_per_unit_and_cell(self, testbed, benchmarks):
        events = {"units": 0, "cells": []}
        experiment = Experiment(
            ParameterGrid.of(workload=benchmarks, fs=("ext2",)), testbed=testbed
        )
        outcome = experiment.run(
            on_unit=lambda unit, run, cached: events.__setitem__(
                "units", events["units"] + 1
            ),
            on_cell=lambda cell, reps: events["cells"].append((cell.label, len(reps))),
        )
        assert events["units"] == len(experiment.work_units())
        assert events["cells"] == [(cell.label, len(cell.seeds)) for cell in outcome.cells]

    def test_result_for_matches_axes(self, testbed, benchmarks):
        outcome = Experiment(
            ParameterGrid.of(workload=benchmarks, fs=("ext2", "xfs")), testbed=testbed
        ).run()
        repetitions = outcome.result_for(workload="stat", fs="xfs")
        assert dicts(repetitions) == dicts(outcome.sets[group_label("stat", "xfs")])
        with pytest.raises(KeyError):
            outcome.result_for(workload="stat", fs="ext3")
        with pytest.raises(KeyError):
            outcome.result_for(fs="ext2")  # two workloads match


class TestResultFrame:
    def make_frame(self, testbed):
        outcome = Experiment(
            ParameterGrid.of(
                workload=[
                    NanoBenchmark(
                        name="mini",
                        description="cached reads",
                        workload_factory=lambda: random_read_workload(2 * MiB),
                        config=quick_config(),
                    )
                ],
                fs=("ext2", "xfs"),
            ),
            name="frame-test",
            testbed=testbed,
        ).run()
        return outcome.frame

    def test_tidy_shape(self, testbed):
        frame = self.make_frame(testbed)
        # 2 fs x 2 repetitions x len(run_metrics) rows.
        metric_count = len(frame.metrics())
        assert len(frame) == 2 * 2 * metric_count
        assert set(["experiment", "fs", "workload", "seed", "repetition", "metric", "value"]) <= set(
            frame.columns()
        )

    def test_filter_group_summary(self, testbed):
        frame = self.make_frame(testbed)
        ext2 = frame.filter(fs="ext2", metric="throughput_ops_s")
        assert len(ext2) == 2
        groups = dict(frame.group_by("fs"))
        assert set(groups) == {("ext2",), ("xfs",)}
        summary = frame.summary(metric="throughput_ops_s", fs="ext2")
        assert summary.n == 2 and summary.mean > 0

    def test_pivot_mean(self, testbed):
        frame = self.make_frame(testbed)
        pivot = frame.filter(metric="throughput_ops_s").pivot(index="workload", columns="fs")
        assert pivot.row_keys == [("mini",)]
        assert pivot.col_keys == ["ext2", "xfs"]
        expected = frame.summary(metric="throughput_ops_s", fs="ext2").mean
        assert pivot.value("mini", "ext2") == pytest.approx(expected)
        rendered = pivot.render(column_header=lambda fs: f"{fs} (ops/s)")
        assert "ext2 (ops/s)" in rendered and "mini" in rendered

    def test_pivot_rejects_non_numeric_for_mean(self):
        frame = ResultFrame([{"a": 1, "metric": "m", "value": "not-a-number"}])
        with pytest.raises(TypeError, match="non-numeric"):
            frame.pivot(index="a", columns="metric")
        assert frame.pivot(index="a", columns="metric", aggregate="first").value(1, "m") == (
            "not-a-number"
        )

    def test_jsonl_roundtrip(self, testbed, tmp_path):
        frame = self.make_frame(testbed)
        path = str(tmp_path / "frame.jsonl")
        frame.to_jsonl(path)
        assert ResultFrame.from_jsonl(path) == frame

    def test_csv_roundtrip(self, testbed, tmp_path):
        frame = self.make_frame(testbed)
        path = str(tmp_path / "frame.csv")
        frame.to_csv(path)
        assert ResultFrame.from_csv(path) == frame

    def test_csv_roundtrip_none_and_strings(self):
        frame = ResultFrame(
            [{"snapshot": None, "fs": "ext2", "metric": "m", "value": 1.5, "flag": True}]
        )
        buffer = io.StringIO(frame.to_csv_text())
        assert ResultFrame.from_csv(buffer) == frame

    def test_rows_for_run_covers_metrics(self, testbed):
        from repro.core.runner import run_single_repetition

        run = run_single_repetition(
            "ext2", random_read_workload(2 * MiB), testbed=testbed, config=quick_config()
        )
        rows = rows_for_run({"fs": "ext2"}, run)
        assert {row["metric"] for row in rows} == set(run_metrics(run))
        assert all(row["seed"] == run.seed for row in rows)

    def test_frame_concatenation(self):
        a = ResultFrame([{"x": 1}])
        b = ResultFrame([{"x": 2}])
        assert len(a + b) == 2


class TestDeprecationShims:
    """The legacy entry points still work -- as declared shims."""

    def test_run_figure1_warns_and_delegates(self, testbed):
        from repro.experiments import run_figure1
        from repro.experiments.config import ExperimentScale

        scale = ExperimentScale(
            name="unit",
            figure1_duration_s=0.5,
            figure1_repetitions=2,
            figure1_sizes_mb=(2, 4),
            figure2_duration_s=60.0,
            figure2_file_mb=26,
            figure2_testbed_scale=1.0 / 16.0,
            figure3_ops=100,
            figure3_sizes_mb=(2, 4),
            figure4_duration_s=60.0,
            figure4_file_mb=20,
            interval_s=5.0,
        )
        with pytest.warns(DeprecationWarning, match="Experiment"):
            result = run_figure1(fs_type="ext2", testbed=testbed, scale=scale, seed=3)
        assert len(result.rows()) == 2
        frame = result.to_frame()
        assert frame.filter(metric="throughput_ops_s", file_size_mb=2).summary().n == 2

    def test_run_aged_vs_fresh_shim_uses_snapshot_axis(self):
        # Covered end-to-end by tests/test_aging.py; here we only assert the
        # shim is declared deprecated without paying for an aging run.
        import inspect

        from repro.aging.experiment import run_aged_vs_fresh

        assert "deprecation shim" in inspect.getsource(run_aged_vs_fresh)
        assert "ParameterGrid.of" in inspect.getsource(run_aged_vs_fresh)

    def test_suite_as_experiment_roundtrip(self, testbed, benchmarks):
        suite = NanoBenchmarkSuite(benchmarks, testbed=testbed)
        experiment = suite.as_experiment(("ext2", "ext2", "xfs"))
        labels = [cell.label for cell in experiment.cells()]
        # Duplicate fs dropped, workload-major order preserved.
        assert labels == [
            "inmemory@ext2",
            "inmemory@xfs",
            "stat@ext2",
            "stat@xfs",
        ]


class TestCliRunAndList:
    def test_list_prints_every_registry(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        for token in ("ext2", "ext4", "postmark", "hdd", "ssd", "noop", "deadline",
                      "figure1", "aged-vs-fresh", "survey"):
            assert token in output, token

    def test_run_executes_grid_and_writes_jsonl(self, capsys, tmp_path):
        out = str(tmp_path / "results.jsonl")
        code = cli.main(
            [
                "run",
                "--axis", "fs=ext2",
                "--axis", "workload=random-read-cached",
                "--axis", "seed=0..1",
                "--axis", "duration_s=0.5",
                "--axis", "warmup_mode=none",
                "--scaled-testbed", "0.0625",
                "--out", out,
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "random-read-cached" in captured.out
        assert "wrote" in captured.out
        frame = ResultFrame.from_jsonl(out)
        assert frame.unique("seed") == [0, 1]
        assert frame.unique("fs") == ["ext2"]

    def test_run_writes_csv_when_asked(self, tmp_path):
        out = str(tmp_path / "results.csv")
        code = cli.main(
            [
                "run", "--quiet",
                "--axis", "fs=ext2",
                "--axis", "workload=random-read-cached",
                "--axis", "seed=3",
                "--axis", "duration_s=0.5",
                "--scaled-testbed", "0.0625",
                "--out", out,
            ]
        )
        assert code == 0
        assert len(ResultFrame.from_csv(out)) > 0

    def test_axis_value_coercion(self):
        # 'none' only means Python None on the snapshot axis; enum-valued
        # config fields (warmup_mode=none) must keep the string.
        assert cli._parse_axis("warmup_mode=none") == ("warmup_mode", ["none"])
        assert cli._parse_axis("snapshot=fresh,/tmp/x.json") == (
            "snapshot",
            [None, "/tmp/x.json"],
        )
        assert cli._parse_axis("cold_cache=true,false") == ("cold_cache", [True, False])
        assert cli._parse_axis("seed=0..2,9") == ("seed", [0, 1, 2, 9])
        # '..' only means a range when both bounds are integers; relative
        # snapshot paths must survive as strings.
        assert cli._parse_axis("snapshot=../aged.snapshot.json") == (
            "snapshot",
            ["../aged.snapshot.json"],
        )
        with pytest.raises(SystemExit):
            cli.main(["run", "--axis", "seed=4..0"])

    def test_warmup_mode_axis_reaches_the_protocol(self, tmp_path):
        out = str(tmp_path / "r.jsonl")
        code = cli.main(
            [
                "run", "--quiet",
                "--axis", "fs=ext2",
                "--axis", "workload=random-read-cached",
                "--axis", "seed=1",
                "--axis", "duration_s=0.5",
                "--axis", "warmup_mode=none",
                "--scaled-testbed", "0.0625",
                "--out", out,
            ]
        )
        assert code == 0
        frame = ResultFrame.from_jsonl(out)
        # WarmupMode.NONE means no warm-up time at all; the steady-state
        # fall-through this guards against would report a long warm-up.
        assert frame.values(metric="warmup_duration_s") == [0.0]
        assert frame.unique("warmup_mode") == ["none"]

    def test_run_rejects_bad_axis(self, capsys):
        assert cli.main(["run", "--axis", "fs=zfs"]) == 2
        assert "unknown fs" in capsys.readouterr().err
        assert cli.main(["run", "--axis", "warp=1"]) == 2
        capsys.readouterr()
        # A wrongly-typed config override (noise wants an EnvironmentNoise
        # object) is a clean usage error, not a traceback.
        assert cli.main(["run", "--axis", "noise=off"]) == 2
        assert "fsbench-rocket: error:" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli.main(["run", "--axis", "malformed"])

    def test_run_uses_cache_across_invocations(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "run", "--quiet",
            "--axis", "fs=ext2",
            "--axis", "workload=random-read-cached",
            "--axis", "seed=0..1",
            "--axis", "duration_s=0.5",
            "--scaled-testbed", "0.0625",
            "--cache-dir", cache_dir,
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: 0 hits, 2 misses, 2 stores" in first
        assert cli.main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: 2 hits, 0 misses, 0 stores" in second


class TestRegistries:
    def test_workload_registry_factories_build_specs(self):
        from repro.storage.config import paper_testbed
        from repro.workloads import WORKLOAD_REGISTRY

        testbed = paper_testbed()
        for name, factory in WORKLOAD_REGISTRY.items():
            spec = factory(testbed)
            assert spec.name, name
            spec.validate()

    def test_register_workload_extends_the_grid(self, testbed):
        from repro.workloads import WORKLOAD_REGISTRY, register_workload

        register_workload("tiny-read", lambda tb: random_read_workload(2 * MiB))
        try:
            cell = Experiment(
                ParameterGrid.of(workload=("tiny-read",), fs=("ext2",)),
                config=quick_config(),
                testbed=testbed,
            ).cells()[0]
            assert cell.axes["workload"] == "tiny-read"
        finally:
            WORKLOAD_REGISTRY.pop("tiny-read", None)

    def test_device_registry_backs_testbed_builds(self):
        from repro.storage.config import DEVICE_REGISTRY, paper_testbed
        from repro.storage.disk import DeviceModel

        testbed = paper_testbed()
        for name, factory in DEVICE_REGISTRY.items():
            assert isinstance(factory(testbed), DeviceModel), name

    def test_scheduler_registry_matches_make_scheduler(self):
        from repro.storage.device import SCHEDULER_REGISTRY, make_scheduler

        for name in SCHEDULER_REGISTRY:
            assert type(make_scheduler(name)) is SCHEDULER_REGISTRY[name]
