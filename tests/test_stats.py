"""Tests for the statistics helpers."""

import statistics

import pytest

from repro.core.stats import (
    BIMODALITY_THRESHOLD,
    bimodality_coefficient,
    bootstrap_ci,
    coefficient_of_variation,
    confidence_interval,
    detect_outliers_iqr,
    fragility_index,
    overlapping_confidence_intervals,
    percentile,
    required_repetitions,
    speedup_with_uncertainty,
    summarize,
    welch_t_test,
)


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([10.0, 12.0, 11.0, 13.0, 9.0])
        assert summary.n == 5
        assert summary.mean == pytest.approx(11.0)
        assert summary.minimum == 9.0
        assert summary.maximum == 13.0
        assert summary.median == 11.0
        assert summary.ci95_low < summary.mean < summary.ci95_high

    def test_single_value(self):
        summary = summarize([42.0])
        assert summary.stddev == 0.0
        assert summary.ci95_low == summary.ci95_high == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_stddev_percent(self):
        summary = summarize([100.0, 110.0, 90.0])
        assert summary.relative_stddev_percent == pytest.approx(
            100.0 * statistics.stdev([100.0, 110.0, 90.0]) / 100.0
        )

    def test_format_contains_key_numbers(self):
        text = summarize([100.0, 105.0, 95.0]).format("ops/s")
        assert "ops/s" in text and "n=3" in text


class TestConfidenceIntervals:
    def test_interval_contains_true_mean_mostly(self):
        low, high = confidence_interval([10.0, 11.0, 9.0, 10.5, 9.5])
        assert low < 10.0 < high

    def test_more_samples_narrower_interval(self):
        wide = confidence_interval([10.0, 12.0, 8.0])
        narrow = confidence_interval([10.0, 12.0, 8.0] * 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_bootstrap_interval_brackets_mean(self):
        values = [100.0, 102.0, 98.0, 101.0, 99.0, 103.0]
        low, high = bootstrap_ci(values, resamples=500, seed=1)
        assert low <= statistics.fmean(values) <= high

    def test_bootstrap_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        low, high = bootstrap_ci(values, stat=statistics.median, resamples=300, seed=2)
        assert low <= 4.0 and high >= 2.0

    def test_bootstrap_invalid(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], resamples=10)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)

    def test_overlap_detection(self):
        a = [100.0, 101.0, 99.0, 100.5]
        b = [100.2, 101.2, 99.2, 100.7]
        far = [500.0, 501.0, 499.0, 500.5]
        assert overlapping_confidence_intervals(a, b)
        assert not overlapping_confidence_intervals(a, far)


class TestDescriptiveHelpers:
    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert coefficient_of_variation([10.0]) == 0.0
        assert coefficient_of_variation([10.0, 20.0]) > 0.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile(values, 150)

    def test_outlier_detection(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 300.0]
        outliers = detect_outliers_iqr(values)
        assert outliers == [6]

    def test_outlier_detection_small_samples(self):
        assert detect_outliers_iqr([1.0, 2.0]) == []


class TestBimodality:
    def test_unimodal_sample_below_threshold(self):
        values = [100.0 + (i % 7) for i in range(200)]
        assert bimodality_coefficient(values) < BIMODALITY_THRESHOLD + 0.15

    def test_strongly_bimodal_sample_above_threshold(self):
        values = [10.0] * 100 + [1000.0] * 100
        assert bimodality_coefficient(values) > BIMODALITY_THRESHOLD

    def test_tiny_or_constant_samples(self):
        assert bimodality_coefficient([1.0, 2.0]) == 0.0
        assert bimodality_coefficient([5.0] * 50) == 0.0


class TestFragilityIndex:
    def test_flat_curve_has_low_fragility(self):
        points = [(i, 100.0 + i * 0.1) for i in range(10)]
        assert fragility_index(points) < 0.05

    def test_cliff_has_high_fragility(self):
        points = [(1, 9700.0), (2, 9600.0), (3, 1000.0), (4, 300.0)]
        assert fragility_index(points) > 0.85

    def test_unordered_input_is_sorted_first(self):
        points = [(3, 1000.0), (1, 9700.0), (2, 9600.0)]
        assert fragility_index(points) == fragility_index(sorted(points))

    def test_degenerate_inputs(self):
        assert fragility_index([]) == 0.0
        assert fragility_index([(1, 5.0)]) == 0.0


class TestRequiredRepetitions:
    def test_low_variance_needs_few_repetitions(self):
        assert required_repetitions([100.0, 100.5, 99.5], target_relative_ci=0.05) <= 3

    def test_high_variance_needs_more_repetitions(self):
        noisy = [100.0, 150.0, 60.0, 130.0]
        stable = [100.0, 101.0, 99.0, 100.5]
        assert required_repetitions(noisy) > required_repetitions(stable)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            required_repetitions([1.0])
        with pytest.raises(ValueError):
            required_repetitions([1.0, 2.0], target_relative_ci=0.0)


class TestComparisons:
    def test_welch_t_test_detects_difference(self):
        a = [100.0, 101.0, 99.0, 100.0, 100.0]
        b = [200.0, 201.0, 199.0, 200.0, 200.0]
        t, p = welch_t_test(a, b)
        assert abs(t) > 10
        assert p < 0.001

    def test_welch_t_test_no_difference(self):
        a = [100.0, 105.0, 95.0, 102.0]
        b = [101.0, 104.0, 96.0, 103.0]
        _, p = welch_t_test(a, b)
        assert p > 0.05

    def test_welch_identical_constant_samples(self):
        t, p = welch_t_test([5.0, 5.0], [5.0, 5.0])
        assert t == 0.0 and p == 1.0

    def test_welch_requires_two_samples_each(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_speedup_with_uncertainty(self):
        baseline = [100.0, 102.0, 98.0]
        candidate = [200.0, 204.0, 196.0]
        point, low, high = speedup_with_uncertainty(baseline, candidate, resamples=300, seed=3)
        assert point == pytest.approx(2.0, rel=0.05)
        assert low <= point <= high

    def test_speedup_invalid(self):
        with pytest.raises(ValueError):
            speedup_with_uncertainty([], [1.0])
