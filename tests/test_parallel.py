"""Tests for the parallel execution engine and its result cache.

The load-bearing guarantees:

* parallel execution is **bit-identical** to serial execution (same seeds,
  same spreads, same histograms) for any worker count;
* the refactored suite path reproduces exactly what the old serial
  ``NanoBenchmark.run`` loop produced;
* the result cache serves previously measured cells and invalidates on any
  input change (spec, testbed, protocol, seed).
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.core.benchmark import NanoBenchmark
from repro.core.dimensions import Dimension, DimensionVector
from repro.core.parallel import (
    ParallelExecutor,
    ResultCache,
    WorkUnit,
    benchmark_units,
    cache_key,
    execute_unit,
)
from repro.core.persistence import run_result_to_dict
from repro.core.results import RepetitionSet, merge_repetition_sets
from repro.core.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    EnvironmentNoise,
    WarmupMode,
    run_single_repetition,
)
from repro.core.suite import NanoBenchmarkSuite
from repro.core.survey import MeasuredSurvey
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload, stat_workload

MiB = 1024 * 1024


def quick_config(**overrides):
    values = dict(
        duration_s=0.5,
        repetitions=3,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=0.25,
    )
    values.update(overrides)
    return BenchmarkConfig(**values)


@pytest.fixture
def testbed():
    return scaled_testbed(1.0 / 16.0)


@pytest.fixture
def nano():
    return NanoBenchmark(
        name="inmemory",
        description="random reads of a cached file",
        workload_factory=lambda: random_read_workload(2 * MiB),
        config=quick_config(),
    )


def dicts(repetitions: RepetitionSet):
    return [run_result_to_dict(run) for run in repetitions]


class TestRunSingleRepetition:
    def test_matches_runner_run_once(self, testbed):
        config = quick_config()
        spec = random_read_workload(2 * MiB)
        runner = BenchmarkRunner(fs_type="ext2", testbed=testbed, config=config)
        direct = runner.run_once(random_read_workload(2 * MiB), repetition=1)
        pure = run_single_repetition("ext2", spec, repetition=1, testbed=testbed, config=config)
        assert run_result_to_dict(direct) == run_result_to_dict(pure)

    def test_work_units_are_picklable(self, testbed, nano):
        units = benchmark_units(nano, "ext2", testbed=testbed)
        restored = pickle.loads(pickle.dumps(units))
        assert len(restored) == 3
        assert run_result_to_dict(execute_unit(restored[0])) == run_result_to_dict(
            execute_unit(units[0])
        )


class TestSerialParallelEquivalence:
    def test_parallel_is_bit_identical_to_serial(self, testbed, nano):
        units = benchmark_units(nano, "ext2", testbed=testbed)
        serial = ParallelExecutor(n_workers=1).run_repetition_sets(units)
        parallel = ParallelExecutor(n_workers=2).run_repetition_sets(units)
        assert serial.keys() == parallel.keys() == {"inmemory@ext2"}
        assert dicts(serial["inmemory@ext2"]) == dicts(parallel["inmemory@ext2"])

    def test_executor_path_matches_legacy_benchmark_run(self, testbed, nano):
        legacy = nano.run("ext2", testbed=testbed)
        via_units = ParallelExecutor(n_workers=1).run_repetition_sets(
            benchmark_units(nano, "ext2", testbed=testbed)
        )["inmemory@ext2"]
        assert legacy.label == via_units.label
        assert dicts(legacy) == dicts(via_units)

    def test_suite_parallel_matches_suite_serial(self, testbed):
        benchmarks = [
            NanoBenchmark(
                name="inmemory",
                description="cached reads",
                workload_factory=lambda: random_read_workload(2 * MiB),
                config=quick_config(repetitions=2),
            ),
            NanoBenchmark(
                name="stat",
                description="stat scan",
                workload_factory=lambda: stat_workload(file_count=50, directories=5),
                config=quick_config(repetitions=2, warmup_mode=WarmupMode.NONE),
            ),
        ]
        serial = NanoBenchmarkSuite(benchmarks, testbed=testbed, n_workers=1).run(("ext2", "xfs"))
        parallel = NanoBenchmarkSuite(benchmarks, testbed=testbed, n_workers=2).run(("ext2", "xfs"))
        assert serial.benchmark_names() == parallel.benchmark_names()
        assert serial.filesystems() == parallel.filesystems()
        for name in serial.benchmark_names():
            for fs_name in serial.filesystems():
                assert dicts(serial.result_for(name, fs_name)) == dicts(
                    parallel.result_for(name, fs_name)
                ), (name, fs_name)

    def test_nondeterministic_factory_keeps_one_spec_per_cell(self, testbed):
        # The serial loop builds one spec per (benchmark, fs) cell and reuses
        # it for every repetition; the unit expansion must do the same, or a
        # factory with construction-time randomness would break bit-identity.
        sizes = iter([2 * MiB, 3 * MiB, 5 * MiB])
        bench = NanoBenchmark(
            name="varying",
            description="factory output changes per call",
            workload_factory=lambda: random_read_workload(next(sizes)),
            config=quick_config(repetitions=2),
        )
        units = benchmark_units(bench, "ext2", testbed=testbed)
        assert units[0].spec is units[1].spec
        serial = BenchmarkRunner(fs_type="ext2", testbed=testbed, config=bench.config).run(
            units[0].spec, label="varying@ext2"
        )
        via_units = ParallelExecutor(n_workers=2).run_repetition_sets(units)["varying@ext2"]
        assert dicts(serial) == dicts(via_units)

    def test_duplicate_fs_types_collapse_like_the_serial_loop(self, testbed):
        benchmarks = [
            NanoBenchmark(
                name="inmemory",
                description="cached reads",
                workload_factory=lambda: random_read_workload(2 * MiB),
                config=quick_config(repetitions=2),
            )
        ]
        once = NanoBenchmarkSuite(benchmarks, testbed=testbed).run(("ext2",))
        doubled = NanoBenchmarkSuite(benchmarks, testbed=testbed).run(("ext2", "ext2"))
        assert len(doubled.result_for("inmemory", "ext2")) == 2
        assert dicts(once.result_for("inmemory", "ext2")) == dicts(
            doubled.result_for("inmemory", "ext2")
        )

    def test_noise_is_still_injected_per_repetition(self, testbed, nano):
        runs = ParallelExecutor(n_workers=2).run_units(
            benchmark_units(nano, "ext2", testbed=testbed)
        )
        cpu_factors = {run.environment["cpu_speed_factor"] for run in runs}
        assert len(cpu_factors) == len(runs)


class TestCacheKey:
    def test_stable_across_equal_configurations(self, testbed):
        config = quick_config()
        key_a = cache_key("ext2", random_read_workload(MiB), config, 42, testbed)
        key_b = cache_key("ext2", random_read_workload(MiB), config, 42, testbed)
        assert key_a == key_b

    def test_changes_with_every_input(self, testbed):
        config = quick_config()
        spec = random_read_workload(MiB)
        base = cache_key("ext2", spec, config, 42, testbed)
        assert cache_key("xfs", spec, config, 42, testbed) != base
        assert cache_key("ext2", random_read_workload(2 * MiB), config, 42, testbed) != base
        assert cache_key("ext2", spec, replace(config, duration_s=1.0), 42, testbed) != base
        assert cache_key("ext2", spec, config, 43, testbed) != base
        assert cache_key("ext2", spec, config, 42, scaled_testbed(1.0 / 8.0)) != base

    def test_noise_parameters_are_part_of_the_key(self, testbed):
        config = quick_config()
        quiet = replace(config, noise=EnvironmentNoise(enabled=False))
        spec = random_read_workload(MiB)
        assert cache_key("ext2", spec, config, 42, testbed) != cache_key(
            "ext2", spec, quiet, 42, testbed
        )

    def test_repetition_and_base_seed_normalise_to_effective_seed(self, testbed, nano):
        # Repetition 1 of a seed-42 run is the same measurement as
        # repetition 0 of a seed-43 run; they must share a cache entry.
        units_42 = benchmark_units(nano, "ext2", testbed=testbed)
        shifted = replace(nano.config, seed=43)
        units_43 = benchmark_units(nano, "ext2", testbed=testbed, config=shifted)
        assert units_42[1].key() == units_43[0].key()
        assert units_42[0].key() != units_43[0].key()

    def test_canonical_handles_mixed_type_dict_keys(self):
        from repro.core.parallel import _canonical

        # Mixed-type keys used to raise TypeError in sorted(value.items()).
        mixed = _canonical({1: "a", "1": "b", (2, 3): "c"})
        assert len(mixed) == 3
        # ...and {1: x} must not collide with {"1": x}.
        assert _canonical({1: "x"}) != _canonical({"1": "x"})
        # Same content, different insertion order: identical canonical form.
        assert _canonical({"b": 1, "a": 2}) == _canonical({"a": 2, "b": 1})

    def test_cache_format_version_bumped_for_canonical_change(self):
        from repro.core.parallel import CACHE_FORMAT_VERSION

        assert CACHE_FORMAT_VERSION >= 2


class TestResultCache:
    def test_roundtrip(self, tmp_path, testbed, nano):
        cache = ResultCache(str(tmp_path))
        unit = benchmark_units(nano, "ext2", testbed=testbed)[0]
        run = execute_unit(unit)
        cache.put(unit.key(), run)
        loaded = cache.get(unit.key())
        assert loaded is not None
        assert run_result_to_dict(loaded) == run_result_to_dict(run)
        assert len(cache) == 1

    def test_miss_on_unknown_and_corrupt_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        path = cache.path_for(key)
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("not json{")
        assert cache.get(key) is None
        assert cache.stats.misses == 2

    def test_second_run_is_served_entirely_from_cache(self, tmp_path, testbed, nano):
        units = benchmark_units(nano, "ext2", testbed=testbed)
        cache = ResultCache(str(tmp_path))
        executor = ParallelExecutor(n_workers=1, cache=cache)
        fresh = executor.run_units(units)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (0, 3, 3)
        cached = executor.run_units(units)
        assert (cache.stats.hits, cache.stats.stores) == (3, 3)
        assert [run_result_to_dict(run) for run in fresh] == [
            run_result_to_dict(run) for run in cached
        ]

    def test_cache_entries_survive_process_boundaries_logically(self, tmp_path, testbed, nano):
        # A different executor (and worker count) over the same directory
        # still hits: the key depends only on measurement inputs.
        units = benchmark_units(nano, "ext2", testbed=testbed)
        ParallelExecutor(n_workers=2, cache=ResultCache(str(tmp_path))).run_units(units)
        cache = ResultCache(str(tmp_path))
        ParallelExecutor(n_workers=1, cache=cache).run_units(units)
        assert (cache.stats.hits, cache.stats.misses) == (3, 0)

    def test_config_change_invalidates(self, tmp_path, testbed, nano):
        cache = ResultCache(str(tmp_path))
        executor = ParallelExecutor(n_workers=1, cache=cache)
        executor.run_units(benchmark_units(nano, "ext2", testbed=testbed))
        longer = replace(nano.config, duration_s=0.75)
        executor.run_units(
            benchmark_units(nano, "ext2", testbed=testbed, config=longer)
        )
        assert cache.stats.hits == 0
        assert cache.stats.stores == 6

    def test_cached_repetition_index_is_relabelled(self, tmp_path, testbed, nano):
        cache = ResultCache(str(tmp_path))
        executor = ParallelExecutor(n_workers=1, cache=cache)
        executor.run_units(benchmark_units(nano, "ext2", testbed=testbed))
        shifted = replace(nano.config, seed=nano.config.seed + 1, repetitions=2)
        runs = executor.run_units(
            benchmark_units(nano, "ext2", testbed=testbed, config=shifted)
        )
        # Seeds 43,44 were measured as repetitions 1,2 of the seed-42 run;
        # they come back relabelled as repetitions 0,1 of this run.
        assert cache.stats.hits == 2
        assert [run.repetition for run in runs] == [0, 1]
        assert [run.seed for run in runs] == [43, 44]

    def test_clear(self, tmp_path, testbed, nano):
        cache = ResultCache(str(tmp_path))
        ParallelExecutor(n_workers=1, cache=cache).run_units(
            benchmark_units(nano, "ext2", testbed=testbed)
        )
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupt_entry_is_counted_and_quarantined(self, tmp_path, caplog):
        import logging
        import os

        cache = ResultCache(str(tmp_path))
        key = "cd" + "1" * 62
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("not json{")
        with caplog.at_level(logging.WARNING, logger="repro.core.parallel"):
            assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        # The bad file is set aside, not left to masquerade as a miss forever.
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert any(path in record.getMessage() for record in caplog.records)
        # The next lookup is a plain miss: nothing left to re-quarantine.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_clear_removes_quarantined_entries_too(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        key = "ef" + "2" * 62
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{broken")
        cache.get(key)
        assert os.path.exists(path + ".corrupt")
        assert cache.clear() == 0  # no live entries
        assert not os.path.exists(path + ".corrupt")

    def test_cache_needs_a_directory_or_packs(self):
        with pytest.raises(ValueError):
            ResultCache()


class TestMergeHelpers:
    def test_merge_shards_reassembles_serial_order(self, testbed, nano):
        units = benchmark_units(nano, "ext2", testbed=testbed)
        runs = ParallelExecutor(n_workers=1).run_units(units)
        label = "inmemory@ext2"
        shard_a = RepetitionSet(label=label, runs=[runs[2]])
        shard_b = RepetitionSet(label=label, runs=[runs[0], runs[1]])
        merged = merge_repetition_sets([shard_a, shard_b])
        assert [run.repetition for run in merged] == [0, 1, 2]
        assert dicts(merged) == [run_result_to_dict(run) for run in runs]

    def test_merge_refuses_mixed_labels(self):
        with pytest.raises(ValueError):
            RepetitionSet(label="a").merge(RepetitionSet(label="b"))
        with pytest.raises(ValueError):
            merge_repetition_sets([])


class TestMeasuredSurvey:
    def test_runs_and_renders(self, testbed):
        survey = MeasuredSurvey(testbed=testbed, quick=True, n_workers=1)
        # Shrink the suite drastically so the test stays fast.
        survey.suite.benchmarks = [
            NanoBenchmark(
                name="inmemory",
                description="cached reads",
                workload_factory=lambda: random_read_workload(2 * MiB),
                dimensions=DimensionVector.of(isolates=[Dimension.CACHING]),
                config=quick_config(repetitions=2),
            )
        ]
        result = survey.run(("ext2",))
        report = result.render()
        assert "Measured dimension survey" in report
        assert "inmemory" in report
        assert "ext2" in report
        assert "+/-" in report

    def test_survey_uses_cache(self, tmp_path, testbed):
        def build(cache_dir):
            survey = MeasuredSurvey(
                testbed=testbed, quick=True, n_workers=1, cache_dir=cache_dir
            )
            survey.suite.benchmarks = [
                NanoBenchmark(
                    name="inmemory",
                    description="cached reads",
                    workload_factory=lambda: random_read_workload(2 * MiB),
                    config=quick_config(repetitions=2),
                )
            ]
            return survey

        cache_dir = str(tmp_path / "cache")
        first = build(cache_dir)
        executor = first.suite.make_executor()
        first.run(("ext2",), executor=executor)
        assert executor.cache.stats.stores == 2

        second = build(cache_dir)
        executor = second.suite.make_executor()
        second.run(("ext2",), executor=executor)
        assert (executor.cache.stats.hits, executor.cache.stats.misses) == (2, 0)


class TestExecutorEdgeCases:
    def test_invalid_config_fails_at_expansion_not_in_workers(self, testbed, nano):
        bad = replace(nano.config, repetitions=0)
        with pytest.raises(ValueError, match="repetitions"):
            benchmark_units(nano, "ext2", testbed=testbed, config=bad)

    def test_duplicate_benchmark_names_rejected(self, testbed, nano):
        clone = NanoBenchmark(
            name=nano.name,
            description="same name, different workload",
            workload_factory=lambda: stat_workload(file_count=10, directories=2),
            config=quick_config(repetitions=1),
        )
        with pytest.raises(ValueError, match="duplicate benchmark names"):
            NanoBenchmarkSuite([nano, clone], testbed=testbed)

    def test_empty_unit_list(self):
        assert ParallelExecutor(n_workers=2).run_units([]) == []
        assert ParallelExecutor(n_workers=2).run_repetition_sets([]) == {}

    def test_zero_workers_means_cpu_count(self):
        assert ParallelExecutor(n_workers=0).n_workers >= 1
        assert ParallelExecutor(n_workers=None).n_workers >= 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(n_workers=-1)

    def test_group_defaults_to_spec_and_fs(self, testbed):
        spec = random_read_workload(MiB)
        unit = WorkUnit(
            fs_type="ext2", spec=spec, config=quick_config(repetitions=1), testbed=testbed
        )
        sets = ParallelExecutor(n_workers=1).run_repetition_sets([unit])
        assert list(sets) == [f"{spec.name}@ext2"]
