"""Tests for the multi-client virtual-time concurrency subsystem.

Four load-bearing guarantees:

* **Determinism** -- multi-client interleaving is a pure function of
  (stack, spec, seed): same inputs give bit-identical serialized results,
  serial and parallel execution agree, and every registry workload drives
  identical op streams on identical stacks.
* **Backward compatibility** -- ``clients=1`` is the legacy path: cache
  keys, serialized payloads and measured numbers are byte-identical to the
  pre-concurrency repository (pinned against golden hashes).
* **Sensitivity** -- interleaving genuinely contends: adding clients
  changes device behaviour and degrades per-client throughput, so the
  event loop is not just N serial runs glued together.
* **Arithmetic** -- the per-client percentile/throughput math matches
  hand-computed fixtures.
"""

from __future__ import annotations

import hashlib
import io
import json
import random

import pytest

from repro.core.concurrency import (
    build_sessions,
    client_metrics,
    client_summary_metrics,
    derive_client_seed,
    nearest_rank_percentile,
    run_window,
)
from repro.core.parallel import WorkUnit, cache_key
from repro.core.persistence import (
    run_result_from_dict,
    run_result_to_dict,
    save_run_result,
)
from repro.core.runner import BenchmarkConfig, WarmupMode, run_single_repetition
from repro.fs.stack import build_stack
from repro.storage.config import scaled_testbed
from repro.workloads.micro import random_read_workload
from repro.workloads.registry import WORKLOAD_REGISTRY, postmark_workload

MiB = 1024 * 1024

# ----------------------------------------------------------------- goldens
# Pinned against the pre-concurrency repository (PR 5 HEAD): these keys and
# payload hashes must never change, or every cache entry and archived result
# silently diverges from its identity.
GOLDEN_KEY_EXT4_POSTMARK = "e84a62e530984408d1f1a1e58160ca91292d5bcd0392fdbf0e652d2c5f14789f"
GOLDEN_KEY_EXT2_RANDREAD = "5509b8bd08f29f5b433de1fee92dce12548f4c2eb3a0d385be7d471b3333f837"
GOLDEN_KEY_XFS_SNAPSHOT = "f264fd773d4a6c5f27876bd53b672ae40abc008ac768a4c743b34af13044edb0"
GOLDEN_KEY_EXT4_POSTMARK_C4 = "d1ca054a0481f30582b5106cb6b381040102a9757fcd8d2a930597732bfa1c92"
GOLDEN_RUN_SHA256 = "bfa10d8b6cb1e93e3e6f295f1fd5e3a6510048f5614aa9cce65a71a02f238140"


def small_spec(file_bytes: int = 4 * MiB):
    """A fast multi-client workload: random reads of one private file."""
    return random_read_workload(file_bytes, iosize=16 * 1024)


def concurrency_config(**overrides):
    values = dict(
        duration_s=0.5,
        repetitions=1,
        warmup_mode=WarmupMode.NONE,
        cold_cache=True,
    )
    values.update(overrides)
    return BenchmarkConfig(**values)


# ------------------------------------------------------------ seed derivation
class TestClientSeeds:
    def test_derived_seeds_are_pinned(self):
        # The hash is part of the determinism contract: changing it changes
        # every multi-client measurement ever taken.
        assert derive_client_seed(42, 0) == 812576017709259521
        assert derive_client_seed(42, 1) == 2778896940184265588
        assert derive_client_seed(42, 2) == 5233274272677491660

    def test_no_collision_with_repetition_arithmetic(self):
        # The runner uses seed + repetition; additive client seeds would make
        # client 1 of repetition 0 replay client 0 of repetition 1.
        assert derive_client_seed(42, 1) != derive_client_seed(43, 0)

    def test_seeds_fit_in_63_bits(self):
        for index in range(64):
            seed = derive_client_seed(7, index)
            assert 0 <= seed < 2**63

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_client_seed(42, -1)

    def test_streams_pairwise_independent(self):
        # No 5-draw subsequence of any client's first 1000 draws appears in
        # any other client's first 1000 draws: the streams are not shifted
        # copies of each other (which seed+i correlation could produce).
        streams = []
        for index in range(6):
            rng = random.Random(derive_client_seed(42, index))
            draws = [round(rng.random(), 12) for _ in range(1000)]
            streams.append({tuple(draws[i : i + 5]) for i in range(len(draws) - 4)})
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not (streams[i] & streams[j])


# --------------------------------------------------------------- percentiles
class TestPercentileMath:
    def test_nearest_rank_fixtures(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        assert nearest_rank_percentile(values, 10.0) == 10.0
        assert nearest_rank_percentile(values, 50.0) == 50.0
        assert nearest_rank_percentile(values, 95.0) == 100.0
        assert nearest_rank_percentile(values, 99.0) == 100.0
        assert nearest_rank_percentile(values, 100.0) == 100.0

    def test_ties_collapse(self):
        assert nearest_rank_percentile([5.0, 5.0, 7.0, 7.0], 50.0) == 5.0
        assert nearest_rank_percentile([5.0, 5.0, 7.0, 7.0], 75.0) == 7.0

    def test_single_sample_reports_itself_everywhere(self):
        for pct in (50.0, 95.0, 99.0, 100.0):
            assert nearest_rank_percentile([42.0], pct) == 42.0

    def test_empty_and_invalid(self):
        assert nearest_rank_percentile([], 95.0) == 0.0
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 101.0)

    def test_client_metrics_fixture(self):
        rows = client_metrics([[400.0, 100.0, 300.0, 200.0], [50.0]], duration_s=2.0)
        first, second = rows
        assert first["client"] == 0.0
        assert first["operations"] == 4.0
        assert first["throughput_ops_s"] == 2.0
        assert first["mean_latency_ns"] == 250.0
        assert first["p50_latency_ns"] == 200.0
        assert first["p95_latency_ns"] == 400.0
        assert first["p99_latency_ns"] == 400.0
        assert second["operations"] == 1.0
        assert second["throughput_ops_s"] == 0.5
        assert second["p50_latency_ns"] == 50.0
        assert second["p95_latency_ns"] == 50.0

    def test_client_metrics_empty_client(self):
        (row,) = client_metrics([[]], duration_s=2.0)
        assert row["operations"] == 0.0
        assert row["mean_latency_ns"] == 0.0
        assert row["p95_latency_ns"] == 0.0

    def test_client_summary_fixture(self):
        rows = client_metrics([[400.0, 100.0, 300.0, 200.0], [50.0]], duration_s=2.0)
        summary = client_summary_metrics(rows)
        assert summary["clients"] == 2.0
        assert summary["client_throughput_min_ops_s"] == 0.5
        assert summary["client_p50_latency_ns"] == 125.0
        assert summary["client_p95_latency_ns"] == 225.0
        assert summary["client_p99_latency_ns"] == 225.0
        assert summary["client_p95_latency_ns_worst"] == 400.0
        assert client_summary_metrics([]) == {}


# ------------------------------------------------------- cache-key identity
class TestCacheKeyCompatibility:
    def test_golden_keys_unchanged(self):
        assert (
            cache_key("ext4", postmark_workload(), BenchmarkConfig(), seed=42)
            == GOLDEN_KEY_EXT4_POSTMARK
        )
        assert (
            cache_key(
                "ext2",
                random_read_workload(8 * MiB),
                BenchmarkConfig(duration_s=2.0, repetitions=2),
                seed=7,
                testbed=scaled_testbed(0.0625),
            )
            == GOLDEN_KEY_EXT2_RANDREAD
        )
        assert (
            cache_key(
                "xfs",
                postmark_workload(),
                BenchmarkConfig(),
                seed=43,
                snapshot_fingerprint="abc123",
            )
            == GOLDEN_KEY_XFS_SNAPSHOT
        )

    def test_explicit_clients_one_is_the_legacy_key(self):
        assert (
            cache_key("ext4", postmark_workload(), BenchmarkConfig(clients=1), seed=42)
            == GOLDEN_KEY_EXT4_POSTMARK
        )

    def test_multi_client_key_differs_and_is_stable(self):
        assert (
            cache_key("ext4", postmark_workload(), BenchmarkConfig(clients=4), seed=42)
            == GOLDEN_KEY_EXT4_POSTMARK_C4
        )
        assert GOLDEN_KEY_EXT4_POSTMARK_C4 != GOLDEN_KEY_EXT4_POSTMARK

    def test_work_unit_key_matches_with_and_without_clients_field(self):
        spec = postmark_workload()
        bare = WorkUnit(fs_type="ext4", spec=spec, config=BenchmarkConfig(seed=42))
        explicit = WorkUnit(
            fs_type="ext4", spec=spec, config=BenchmarkConfig(seed=42, clients=1)
        )
        assert bare.key() == explicit.key() == GOLDEN_KEY_EXT4_POSTMARK


# -------------------------------------------------- backward-compat results
class TestLegacyResultIdentity:
    def test_single_client_payload_is_byte_identical_to_seed(self):
        # The exact serialized bytes of a clients=1 measurement, pinned
        # against the pre-concurrency repository.
        run = run_single_repetition(
            "ext4",
            postmark_workload(file_count=120),
            repetition=0,
            testbed=scaled_testbed(0.0625),
            config=BenchmarkConfig(duration_s=2.0, repetitions=1),
        )
        buffer = io.StringIO()
        save_run_result(run, buffer)
        digest = hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_RUN_SHA256
        assert run.client_metrics is None
        assert "client_metrics" not in run_result_to_dict(run)

    def test_config_rejects_bad_client_counts(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(clients=0).validate()


# --------------------------------------------------------- determinism
class TestMultiClientDeterminism:
    def _run(self, clients: int, seed: int = 11):
        return run_single_repetition(
            "ext4",
            small_spec(),
            repetition=0,
            testbed=scaled_testbed(1.0 / 16.0),
            config=concurrency_config(seed=seed, clients=clients),
        )

    def test_same_seed_is_bit_identical(self):
        first = json.dumps(run_result_to_dict(self._run(clients=3)), sort_keys=True)
        second = json.dumps(run_result_to_dict(self._run(clients=3)), sort_keys=True)
        assert first == second

    def test_different_seeds_differ(self):
        first = json.dumps(run_result_to_dict(self._run(clients=3, seed=11)), sort_keys=True)
        second = json.dumps(run_result_to_dict(self._run(clients=3, seed=12)), sort_keys=True)
        assert first != second

    def test_client_metrics_account_for_every_operation(self):
        run = self._run(clients=4)
        assert run.client_metrics is not None
        assert len(run.client_metrics) == 4
        assert [row["client"] for row in run.client_metrics] == [0.0, 1.0, 2.0, 3.0]
        assert sum(row["operations"] for row in run.client_metrics) == run.operations
        assert run.clients == 4

    def test_multi_client_payload_round_trips(self):
        run = self._run(clients=2)
        payload = run_result_to_dict(run)
        assert "client_metrics" in payload
        restored = run_result_from_dict(payload)
        assert run_result_to_dict(restored) == payload


class TestRegistryDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
    def test_identical_stacks_replay_identical_op_streams(self, name, tiny_testbed):
        # Every registry workload, same seed on freshly-built identical
        # stacks: the op stream (type, latency, completion time, thread,
        # bytes) must match element for element.  This is the property the
        # event loop's clock rewinding relies on.
        from repro.workloads.spec import WorkloadEngine

        spec = WORKLOAD_REGISTRY[name](tiny_testbed)
        streams = []
        for _ in range(2):
            stack = build_stack("ext4", testbed=tiny_testbed, seed=5)
            records = []
            engine = WorkloadEngine(
                stack,
                spec,
                seed=1234,
                on_op=lambda record: records.append(
                    (
                        record.op,
                        record.latency_ns,
                        record.end_time_ns,
                        record.thread,
                        record.bytes_moved,
                    )
                ),
            )
            engine.setup()
            engine.run(max_ops=25)
            streams.append(records)
        assert streams[0] == streams[1]
        assert len(streams[0]) == 25


# ------------------------------------------------------ event-loop behaviour
class TestEventLoop:
    def _sessions(self, clients: int, tiny_testbed):
        stack = build_stack("ext4", testbed=tiny_testbed, seed=5)
        sessions = build_sessions(stack, small_spec(), base_seed=11, clients=clients)
        for session in sessions:
            session.engine.setup()
            session.ready_ns = stack.clock.now_ns
        return stack, sessions

    def test_requires_a_bound(self, tiny_testbed):
        stack, sessions = self._sessions(2, tiny_testbed)
        with pytest.raises(ValueError):
            run_window(sessions, stack.clock)
        with pytest.raises(ValueError):
            run_window([], stack.clock, max_ops=1)

    def test_window_executes_and_advances_clock(self, tiny_testbed):
        stack, sessions = self._sessions(2, tiny_testbed)
        before = stack.clock.now_ns
        executed = run_window(sessions, stack.clock, max_ops=40)
        assert executed == 40
        assert stack.clock.now_ns == max(s.ready_ns for s in sessions)
        assert stack.clock.now_ns > before
        assert all(s.engine.ops_executed > 0 for s in sessions)

    def test_duration_window_respects_deadline(self, tiny_testbed):
        stack, sessions = self._sessions(2, tiny_testbed)
        origin = stack.clock.now_ns
        run_window(sessions, stack.clock, duration_s=0.05)
        # Every issued op started before the deadline; cursors may overhang
        # by at most one operation's service time.
        assert all(s.ready_ns >= origin for s in sessions)
        assert min(s.ready_ns for s in sessions) >= origin + 0.05 * 1e9

    def test_interleaving_is_contended_not_concatenated(self, tiny_testbed):
        # A 4-client window is not four serial runs: each client executes
        # fewer ops per unit of virtual time than an uncontended client
        # because the shared device queue pushes its completions out.
        stack, sessions = self._sessions(1, tiny_testbed)
        run_window(sessions, stack.clock, duration_s=0.2)
        solo_ops = sessions[0].engine.ops_executed

        stack4, sessions4 = self._sessions(4, tiny_testbed)
        run_window(sessions4, stack4.clock, duration_s=0.2)
        per_client = [s.engine.ops_executed for s in sessions4]
        assert max(per_client) < solo_ops
        # ... and nobody starves: the min-cursor policy is fair.
        assert min(per_client) > 0


# ----------------------------------------------- serial vs parallel identity
class TestSerialParallelIdentity:
    @pytest.mark.slow
    def test_frames_identical_across_worker_counts(self, tmp_path):
        from repro.core.experiment import Experiment, ParameterGrid

        def outcome(n_workers):
            return Experiment(
                grid=ParameterGrid.of(
                    fs=["ext4"], workload=[small_spec()], clients=[1, 2]
                ),
                config=concurrency_config(repetitions=2),
                testbed=scaled_testbed(1.0 / 16.0),
                n_workers=n_workers,
            ).run()

        serial = outcome(1).frame.rows
        parallel = outcome(2).frame.rows
        assert serial == parallel
        assert {row["clients"] for row in parallel} == {1, 2}
