"""Tests for the mechanical disk, SSD and RAM disk models."""

import random

import pytest

from repro.storage.clock import NS_PER_MS
from repro.storage.disk import (
    MAXTOR_7L250S0,
    DiskGeometry,
    MechanicalDisk,
    RamDisk,
    SolidStateDisk,
)


@pytest.fixture
def rng():
    return random.Random(3)


class TestDiskGeometry:
    def test_paper_geometry_is_valid(self):
        MAXTOR_7L250S0.validate()

    def test_rotation_time_for_7200_rpm(self):
        assert MAXTOR_7L250S0.rotation_time_ns() == pytest.approx(60.0 / 7200 * 1e9)

    def test_inconsistent_seek_times_rejected(self):
        bad = DiskGeometry(avg_seek_ms=1.0, track_to_track_seek_ms=5.0, full_stroke_seek_ms=10.0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_transfer_rates_rejected(self):
        bad = DiskGeometry(max_transfer_mb_s=10.0, min_transfer_mb_s=50.0)
        with pytest.raises(ValueError):
            bad.validate()


class TestMechanicalDisk:
    def test_random_read_latency_in_mechanical_range(self, rng):
        disk = MechanicalDisk()
        # Random 8 KiB reads across the whole device: several ms each.
        latencies = []
        for _ in range(200):
            offset = rng.randrange(0, disk.capacity_bytes - 8192, 4096)
            latencies.append(disk.read(offset, 8192, rng))
        mean_ms = sum(latencies) / len(latencies) / NS_PER_MS
        assert 3.0 <= mean_ms <= 30.0

    def test_sequential_reads_hit_track_cache(self, rng):
        disk = MechanicalDisk()
        first = disk.read(0, 64 * 1024, rng)
        second = disk.read(64 * 1024, 64 * 1024, rng)
        # The second read is served from the drive's segment cache.
        assert second < first
        assert disk.stats.track_cache_hits >= 1

    def test_overwrite_invalidates_track_cache(self, rng):
        """A read after an overlapping write must hit the media, not the cache."""
        disk = MechanicalDisk()
        disk.read(0, 64 * 1024, rng)  # fills the segment cache from offset 0
        hits_before = disk.stats.track_cache_hits
        disk.write(0, 4096, rng)  # overwrites the cached range
        stale_read = disk.read(0, 64 * 1024, rng)
        assert disk.stats.track_cache_hits == hits_before
        # Re-read now hits the freshly refilled cache and is much cheaper.
        fresh_read = disk.read(0, 64 * 1024, rng)
        assert disk.stats.track_cache_hits == hits_before + 1
        assert fresh_read < stale_read

    def test_overwrite_keeps_cached_prefix(self, rng):
        """Only the range from the write onward is invalidated."""
        disk = MechanicalDisk()
        disk.read(0, 1024 * 1024, rng)  # cache spans [0, >=1 MiB)
        disk.write(512 * 1024, 4096, rng)
        hits_before = disk.stats.track_cache_hits
        disk.read(0, 256 * 1024, rng)  # before the write: still cached
        assert disk.stats.track_cache_hits == hits_before + 1
        disk.read(512 * 1024, 4096, rng)  # the overwritten range: not cached
        assert disk.stats.track_cache_hits == hits_before + 1

    def test_write_before_cache_start_invalidates_from_start(self, rng):
        disk = MechanicalDisk()
        disk.read(1024 * 1024, 64 * 1024, rng)
        hits_before = disk.stats.track_cache_hits
        # A write straddling the cache start poisons the whole segment.
        disk.write(1024 * 1024 - 4096, 8192, rng)
        disk.read(1024 * 1024 + 32 * 1024, 4096, rng)
        assert disk.stats.track_cache_hits == hits_before

    def test_write_cache_destage_counts_its_seek(self):
        class DestageRng:
            """random() -> 0.0 forces the 2% destage branch; uniform -> 0."""

            def random(self):
                return 0.0

            def uniform(self, low, high):
                return 0.0

        disk = MechanicalDisk(write_cache_enabled=True)
        disk._head_offset = disk.capacity_bytes // 2  # far from the write
        seeks_before = disk.stats.seeks
        disk.write(0, 4096, DestageRng())
        assert disk.stats.seeks == seeks_before + 1

    def test_short_seeks_cheaper_than_full_stroke(self, rng):
        disk = MechanicalDisk()
        near = disk._seek_time_ns(0, 1024 * 1024)
        far = disk._seek_time_ns(0, disk.capacity_bytes - 1)
        assert near < far

    def test_zoned_transfer_rate_slower_at_inner_tracks(self):
        disk = MechanicalDisk()
        outer = disk._transfer_rate_bytes_per_ns(0)
        inner = disk._transfer_rate_bytes_per_ns(disk.capacity_bytes - 1)
        assert outer > inner

    def test_write_cache_makes_writes_cheap(self, rng):
        cached = MechanicalDisk(write_cache_enabled=True)
        uncached = MechanicalDisk(write_cache_enabled=False)
        cached_latency = sum(cached.write(i * 8192, 8192, rng) for i in range(100))
        uncached_latency = sum(uncached.write(i * 8192, 8192, rng) for i in range(100))
        assert cached_latency < uncached_latency

    def test_flush_costs_more_with_write_cache(self, rng):
        disk = MechanicalDisk(write_cache_enabled=True)
        assert disk.flush_latency_ns(rng) > 0

    def test_out_of_range_request_rejected(self, rng):
        disk = MechanicalDisk()
        with pytest.raises(ValueError):
            disk.read(disk.capacity_bytes, 4096, rng)
        with pytest.raises(ValueError):
            disk.read(-1, 4096, rng)
        with pytest.raises(ValueError):
            disk.read(0, 0, rng)

    def test_stats_accumulate(self, rng):
        disk = MechanicalDisk()
        disk.read(0, 4096, rng)
        disk.write(8192, 4096, rng)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1
        assert disk.stats.bytes_read == 4096
        assert disk.stats.bytes_written == 4096
        assert disk.stats.busy_time_ns > 0

    def test_reset_state_clears_stats_and_position(self, rng):
        disk = MechanicalDisk()
        disk.read(disk.capacity_bytes // 2, 4096, rng)
        disk.reset_state()
        assert disk.stats.reads == 0
        assert disk._head_offset == 0


class TestSolidStateDisk:
    def test_read_latency_near_configured_value(self, rng):
        ssd = SolidStateDisk(read_latency_us=80.0)
        latencies = [ssd.read(i * 4096, 4096, rng) for i in range(100)]
        mean_us = sum(latencies) / len(latencies) / 1000.0
        assert 70.0 <= mean_us <= 120.0

    def test_writes_slower_than_reads(self, rng):
        ssd = SolidStateDisk()
        reads = sum(ssd.read(i * 4096, 4096, rng) for i in range(200))
        writes = sum(ssd.write(i * 4096, 4096, rng) for i in range(200))
        assert writes > reads

    def test_large_transfer_uses_channels(self, rng):
        ssd = SolidStateDisk(channels=8)
        small = ssd.read(0, 4096, rng)
        large = ssd.read(0, 8 * 4096, rng)
        # 8 pages over 8 channels should not cost 8x a single page.
        assert large < small * 4

    def test_random_faster_than_mechanical_disk(self, rng):
        ssd = SolidStateDisk()
        disk = MechanicalDisk()
        ssd_total = sum(
            ssd.read(rng.randrange(0, 10**9, 4096), 8192, rng) for _ in range(50)
        )
        disk_total = sum(
            disk.read(rng.randrange(0, 10**9, 4096), 8192, rng) for _ in range(50)
        )
        assert ssd_total < disk_total / 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SolidStateDisk(channels=0)
        with pytest.raises(ValueError):
            SolidStateDisk(gc_probability=1.5)


class TestRamDisk:
    def test_latency_scales_with_size(self, rng):
        ram = RamDisk()
        small = ram.read(0, 4096, rng)
        large = ram.read(0, 1024 * 1024, rng)
        assert large > small

    def test_much_faster_than_disk(self, rng):
        ram = RamDisk()
        assert ram.read(0, 8192, rng) < 100_000  # < 0.1 ms

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            RamDisk(bandwidth_gb_s=0)
