"""Tests for the flash subsystem: FTL mechanics, discard plumbing, device registry.

Unit tests use a deliberately tiny :class:`FlashGeometry` (a few MiB) so GC
pressure is reached in milliseconds; the integration tests drive the FTL
through full stacks on shrunken testbeds.
"""

import random
from dataclasses import replace

import pytest

from repro.core.runner import BenchmarkConfig, WarmupMode, run_single_repetition
from repro.fs.stack import build_stack
from repro.storage.config import (
    DEVICE_REGISTRY,
    TestbedConfig,
    scaled_testbed,
    ssd_ftl_testbed,
    ssd_testbed,
)
from repro.storage.device import BlockDevice, IORequest, IOScheduler
from repro.storage.disk import RamDisk, SolidStateDisk
from repro.storage.flash import (
    FlashGeometry,
    FlashTranslationLayer,
    default_flash_geometry,
    precondition_ssd,
)

KiB = 1024
MiB = 1024 * KiB


def tiny_geometry(**overrides) -> FlashGeometry:
    """A 16 MiB device with 128 KiB blocks: GC pressure within ~100 writes."""
    parameters = dict(
        capacity_bytes=16 * MiB,
        page_bytes=16 * KiB,
        pages_per_block=8,
        over_provisioning=0.25,
        gc_low_watermark_blocks=3,
        gc_high_watermark_blocks=6,
    )
    parameters.update(overrides)
    return FlashGeometry(**parameters)


@pytest.fixture
def rng():
    return random.Random(7)


class TestFlashGeometry:
    def test_derived_quantities(self):
        geometry = tiny_geometry()
        assert geometry.logical_pages == 16 * MiB // (16 * KiB)
        assert geometry.block_bytes == 128 * KiB
        assert geometry.physical_pages == geometry.physical_blocks * 8
        assert geometry.spare_blocks > geometry.gc_high_watermark_blocks

    def test_rejects_zero_over_provisioning(self):
        with pytest.raises(ValueError):
            tiny_geometry(over_provisioning=0.0).validate()

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            tiny_geometry(gc_low_watermark_blocks=6, gc_high_watermark_blocks=3).validate()

    def test_rejects_op_smaller_than_watermarks(self):
        with pytest.raises(ValueError):
            tiny_geometry(over_provisioning=0.01).validate()

    def test_default_geometry_scales_watermarks(self):
        small = default_flash_geometry(1024 ** 3)
        small.validate()
        assert small.gc_low_watermark_blocks < small.gc_high_watermark_blocks


class TestFtlMechanics:
    def test_fresh_writes_have_unit_write_amplification(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        for index in range(64):
            ftl.write(index * 16 * KiB, 16 * KiB, rng)
        assert ftl.stats.write_amplification == 1.0
        assert ftl.stats.gc_runs == 0
        assert ftl.stats.pages_programmed == 64

    def test_overwrite_invalidates_not_grows(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        for _ in range(10):
            ftl.write(0, 16 * KiB, rng)
        assert ftl.utilization() == pytest.approx(1 / ftl.geometry.logical_pages)
        assert ftl.stats.pages_programmed == 10

    def test_sub_page_write_programs_whole_page(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        ftl.write(0, 4 * KiB, rng)
        assert ftl.stats.pages_programmed == 1

    @pytest.mark.parametrize("policy", ["greedy", "cost-benefit"])
    def test_gc_reclaims_under_pressure(self, policy, rng):
        ftl = FlashTranslationLayer(tiny_geometry(), gc_policy=policy)
        geometry = ftl.geometry
        # Fill the logical space, then keep overwriting: the fresh pool
        # drains and GC must kick in.
        for index in range(geometry.logical_pages):
            ftl.write(index * geometry.page_bytes, geometry.page_bytes, rng)
        for _ in range(4 * geometry.physical_pages):
            ftl.write(rng.randrange(geometry.logical_pages) * geometry.page_bytes,
                      geometry.page_bytes, rng)
        assert ftl.stats.gc_runs > 0
        assert ftl.stats.erases > 0
        assert ftl.stats.gc_time_ns > 0
        assert ftl.stats.write_amplification > 1.0
        assert ftl.free_physical_blocks() > 0
        wear = ftl.wear_summary()
        assert wear["total_erases"] == ftl.stats.erases
        assert wear["max_erases"] >= wear["mean_erases"]

    def test_gc_pause_lands_on_triggering_write(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        geometry = ftl.geometry
        latencies = []
        for _ in range(5 * geometry.physical_pages):
            offset = rng.randrange(geometry.logical_pages) * geometry.page_bytes
            latencies.append(ftl.write(offset, geometry.page_bytes, rng))
        # Writes that triggered GC carry the erase latency on top of the
        # program: the spread must exceed one erase.
        assert max(latencies) - min(latencies) >= geometry.erase_latency_ms * 1e6

    def test_unknown_gc_policy_rejected(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(tiny_geometry(), gc_policy="random")

    def test_deterministic_without_shared_rng(self):
        """FTL service times depend only on the device's own call sequence."""

        def drive(extra_rng_draws: int):
            ftl = FlashTranslationLayer(tiny_geometry())
            shared = random.Random(1)
            out = []
            for index in range(3 * ftl.geometry.physical_pages):
                for _ in range(extra_rng_draws):
                    shared.random()  # other stack components consuming rng
                offset = (index * 7) % ftl.geometry.logical_pages * ftl.geometry.page_bytes
                out.append(ftl.write(offset, ftl.geometry.page_bytes, shared))
            return out

        assert drive(0) == drive(3)

    def test_reset_state_restores_fresh_device(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        for index in range(ftl.geometry.logical_pages):
            ftl.write(index * ftl.geometry.page_bytes, ftl.geometry.page_bytes, rng)
        ftl.reset_state()
        assert ftl.utilization() == 0.0
        assert ftl.stats.pages_programmed == 0
        assert ftl.free_physical_blocks() == ftl.geometry.physical_blocks - 1


class TestFtlDiscard:
    def test_discard_unmaps_whole_pages(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        page = ftl.geometry.page_bytes
        for index in range(8):
            ftl.write(index * page, page, rng)
        ftl.discard(0, 4 * page, rng)
        assert ftl.utilization() == pytest.approx(4 / ftl.geometry.logical_pages)
        assert ftl.stats.discards == 1
        assert ftl.stats.bytes_discarded == 4 * page

    def test_partial_page_discard_keeps_mapping(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        page = ftl.geometry.page_bytes
        ftl.write(0, page, rng)
        ftl.discard(0, page // 2, rng)
        assert ftl.utilization() == pytest.approx(1 / ftl.geometry.logical_pages)

    def test_discard_lowers_gc_cost(self, rng):
        """TRIMmed space is space GC does not have to relocate."""

        def churn(issue_discards: bool) -> float:
            ftl = FlashTranslationLayer(tiny_geometry())
            geometry = ftl.geometry
            local = random.Random(3)
            for index in range(geometry.logical_pages):
                ftl.write(index * geometry.page_bytes, geometry.page_bytes, local)
            for round_ in range(3 * geometry.physical_pages):
                page = local.randrange(geometry.logical_pages)
                if issue_discards and round_ % 2 == 0:
                    ftl.discard(page * geometry.page_bytes, geometry.page_bytes, local)
                else:
                    ftl.write(page * geometry.page_bytes, geometry.page_bytes, local)
            return ftl.stats.pages_moved

        assert churn(issue_discards=True) < churn(issue_discards=False)


class TestFtlSnapshot:
    def test_export_restore_round_trip_is_bit_identical(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        geometry = ftl.geometry
        for _ in range(4 * geometry.physical_pages):
            ftl.write(rng.randrange(geometry.logical_pages) * geometry.page_bytes,
                      geometry.page_bytes, rng)
        state = ftl.export_state()
        other = FlashTranslationLayer(tiny_geometry())
        other.restore_state(state)
        assert other.export_state() == state

    def test_restored_device_behaves_identically(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        geometry = ftl.geometry
        for _ in range(4 * geometry.physical_pages):
            ftl.write(rng.randrange(geometry.logical_pages) * geometry.page_bytes,
                      geometry.page_bytes, rng)
        state = ftl.export_state()

        def drive(model):
            return [
                model.write((index * 11) % geometry.logical_pages * geometry.page_bytes,
                            geometry.page_bytes, random.Random(0))
                for index in range(200)
            ]

        first = FlashTranslationLayer(tiny_geometry())
        first.restore_state(state)
        second = FlashTranslationLayer(tiny_geometry())
        second.restore_state(state)
        assert drive(first) == drive(second)

    def test_geometry_mismatch_rejected(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        state = ftl.export_state()
        other = FlashTranslationLayer(tiny_geometry(capacity_bytes=8 * MiB))
        with pytest.raises(ValueError):
            other.restore_state(state)

    def test_restore_adopts_recorded_gc_policy(self, rng):
        source = FlashTranslationLayer(tiny_geometry(), gc_policy="cost-benefit")
        source.write(0, 16 * KiB, rng)
        state = source.export_state()
        target = FlashTranslationLayer(tiny_geometry())  # greedy by default
        target.restore_state(state)
        assert target.gc_policy == "cost-benefit"
        assert target.export_state() == state

    def test_restore_rejects_unknown_gc_policy(self, rng):
        ftl = FlashTranslationLayer(tiny_geometry())
        state = ftl.export_state()
        state["gc_policy"] = "lifo"
        with pytest.raises(ValueError):
            ftl.restore_state(state)


class TestPreconditioning:
    def test_reaches_steady_state_with_wa_above_one(self):
        ftl = FlashTranslationLayer(tiny_geometry(capacity_bytes=64 * MiB))
        report = precondition_ssd(ftl, churn_pages_per_round=512)
        assert report.reached_steady
        assert report.final_write_amplification > 1.0
        assert report.utilization == pytest.approx(0.85, abs=0.02)
        # Telemetry is reset, state is not.
        assert ftl.stats.pages_programmed == 0
        assert ftl.utilization() > 0.8

    def test_preconditioning_is_deterministic(self):
        def build():
            ftl = FlashTranslationLayer(tiny_geometry(capacity_bytes=32 * MiB))
            precondition_ssd(ftl, churn_pages_per_round=256)
            return ftl.export_state()

        assert build() == build()

    def test_rejects_non_ftl_models(self):
        with pytest.raises(TypeError):
            precondition_ssd(SolidStateDisk())

    def test_rejects_bad_arguments(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        with pytest.raises(ValueError):
            precondition_ssd(ftl, target_utilization=0.0)
        with pytest.raises(ValueError):
            precondition_ssd(ftl, churn_pages_per_round=0)


class TestBlockLayerDiscard:
    def test_discards_do_not_merge_with_writes(self):
        requests = [
            IORequest(0, 4096, is_write=True),
            IORequest(4096, 4096, is_discard=True),
            IORequest(8192, 4096, is_discard=True),
        ]
        merged = IOScheduler.merge_adjacent(requests)
        assert len(merged) == 2
        assert merged[1].is_discard and merged[1].nbytes == 8192

    def test_write_and_discard_mutually_exclusive(self):
        with pytest.raises(ValueError):
            IORequest(0, 4096, is_write=True, is_discard=True)

    def test_block_device_routes_discards(self, rng):
        device = BlockDevice(FlashTranslationLayer(tiny_geometry()))
        page = 16 * KiB
        device.write(0, page, rng)
        device.submit([IORequest(0, page, is_discard=True)], rng)
        assert device.stats.discard_requests == 1
        assert device.model.stats.discards == 1
        assert device.supports_discard

    def test_discard_noop_on_non_supporting_device(self, rng):
        device = BlockDevice(RamDisk())
        assert not device.supports_discard
        assert device.discard(0, 4096, rng) == 0.0
        assert device.stats.requests == 0


class TestSolidStateDiskSeedIsolation:
    def test_legacy_default_draws_from_shared_rng(self):
        """The documented legacy behaviour: cost depends on the shared stream."""

        def drive(extra_draws: int):
            ssd = SolidStateDisk()
            shared = random.Random(5)
            for _ in range(extra_draws):
                shared.random()
            return ssd.write_latency_ns(0, 4096, shared)

        assert drive(0) != drive(1)

    def test_seed_isolated_cost_depends_on_call_order_alone(self):
        def drive(extra_draws: int):
            ssd = SolidStateDisk(rng_seed=11)
            shared = random.Random(5)
            out = []
            for _ in range(50):
                for _ in range(extra_draws):
                    shared.random()
                out.append(ssd.write_latency_ns(0, 4096, shared))
            return out

        assert drive(0) == drive(2)

    def test_reset_state_reseeds_private_rng(self):
        ssd = SolidStateDisk(rng_seed=11)
        shared = random.Random(5)
        first = [ssd.write_latency_ns(0, 4096, shared) for _ in range(10)]
        ssd.reset_state()
        second = [ssd.write_latency_ns(0, 4096, shared) for _ in range(10)]
        assert first == second


class TestDeviceRegistry:
    """Every registered device kind constructs, serves sane latencies, and
    (when stateful) round-trips its snapshot state."""

    @pytest.mark.parametrize("kind", sorted(DEVICE_REGISTRY))
    def test_construct_and_latency_sanity(self, kind, rng):
        testbed = replace(scaled_testbed(0.0625), device_kind=kind)
        testbed.validate()
        model = testbed.build_device_model()
        read = model.read(0, 4096, rng)
        write = model.write(0, 4096, rng)
        assert 0 < read < 1e9
        assert 0 < write < 1e9
        assert model.stats.reads == 1 and model.stats.writes == 1
        assert model.capacity_bytes > 0

    @pytest.mark.parametrize("kind", sorted(DEVICE_REGISTRY))
    def test_snapshot_round_trip_where_stateful(self, kind, rng):
        testbed = replace(scaled_testbed(0.0625), device_kind=kind)
        model = testbed.build_device_model()
        if not callable(getattr(model, "export_state", None)):
            pytest.skip(f"{kind} is stateless")
        model.write(0, 64 * KiB, rng)
        state = model.export_state()
        twin = testbed.build_device_model()
        twin.restore_state(state)
        assert twin.export_state() == state

    def test_steady_kind_starts_preconditioned(self):
        testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl-steady")
        model = testbed.build_device_model()
        assert model.utilization() > 0.8
        assert model.stats.pages_programmed == 0  # telemetry reset, state kept
        fresh = replace(testbed, device_kind="ssd-ftl-fresh").build_device_model()
        assert fresh.utilization() == 0.0

    def test_ssd_testbeds_validate(self):
        assert ssd_testbed().device_kind == "ssd"
        assert isinstance(ssd_testbed().build_device_model(), SolidStateDisk)
        assert ssd_ftl_testbed().device_kind == "ssd-ftl-fresh"
        assert ssd_ftl_testbed(steady=True).device_kind == "ssd-ftl-steady"
        for steady in (False, True):
            ssd_ftl_testbed(steady=steady).validate()

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError):
            TestbedConfig(device_kind="nvme-zns").validate()


class TestDiscardThroughTheStack:
    @pytest.fixture
    def ftl_stack(self):
        testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl")
        return build_stack("ext4", testbed=testbed, seed=7)

    def _populate(self, stack, count=6, size=256 * KiB):
        vfs = stack.vfs
        vfs.mkdirs_uncharged("/d")
        for index in range(count):
            fd = vfs.open(f"/d/f{index}", create=True)
            # fallocate first so delalloc file systems materialise real
            # extents before writeback (otherwise the data lands before the
            # reservation resolves and there is nothing for TRIM to unmap).
            vfs.fallocate(fd, size)
            vfs.write(fd, size)
            vfs.fsync(fd)
            vfs.close(fd)
        # Push the data (not just the journal) to the device: discards can
        # only unmap pages the device actually holds.
        vfs.sync()

    def test_unlink_issues_discards_to_ftl(self, ftl_stack):
        self._populate(ftl_stack)
        before = ftl_stack.device.model.utilization()
        for index in range(6):
            ftl_stack.vfs.unlink(f"/d/f{index}")
        assert ftl_stack.vfs.stats.discards_issued > 0
        assert ftl_stack.vfs.stats.discards_dropped == 0
        assert ftl_stack.device.model.stats.discards > 0
        assert ftl_stack.device.model.utilization() < before

    def test_truncate_issues_discards_and_frees_blocks(self, ftl_stack):
        self._populate(ftl_stack, count=1, size=512 * KiB)
        fs = ftl_stack.fs
        free_before = fs.free_blocks()
        latency = ftl_stack.vfs.truncate("/d/f0", 64 * KiB)
        assert latency > 0
        assert fs.free_blocks() > free_before
        assert fs.resolve("/d/f0").size_bytes == 64 * KiB
        assert ftl_stack.vfs.stats.truncates == 1
        assert ftl_stack.device.model.stats.discards > 0

    def test_truncate_extends_as_hole(self, ftl_stack):
        self._populate(ftl_stack, count=1, size=64 * KiB)
        blocks_before = fs_blocks = ftl_stack.fs.resolve("/d/f0").blocks_allocated()
        ftl_stack.vfs.truncate("/d/f0", 1 * MiB)
        inode = ftl_stack.fs.resolve("/d/f0")
        assert inode.size_bytes == 1 * MiB
        assert inode.blocks_allocated() == blocks_before

    def test_discards_dropped_on_non_trim_devices(self):
        stack = build_stack("ext4", testbed=scaled_testbed(0.0625), seed=7)
        self._populate(stack, count=3)
        for index in range(3):
            stack.vfs.unlink(f"/d/f{index}")
        assert stack.vfs.stats.discards_issued == 0
        assert stack.vfs.stats.discards_dropped > 0
        assert stack.device.stats.discard_requests == 0

    @pytest.mark.parametrize("fs_type", ["ext2", "ext3", "ext4", "xfs"])
    def test_every_filesystem_free_path_emits_discards(self, fs_type):
        testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl")
        stack = build_stack(fs_type, testbed=testbed, seed=7)
        self._populate(stack, count=2)
        for index in range(2):
            stack.vfs.unlink(f"/d/f{index}")
        assert stack.vfs.stats.discards_issued > 0

    def test_delalloc_truncate_trims_reservation(self, ftl_stack):
        vfs = ftl_stack.vfs
        fs = ftl_stack.fs
        vfs.mkdirs_uncharged("/d")
        fd = vfs.open("/d/delalloc", create=True)
        vfs.write(fd, 512 * KiB)  # reserved, not yet allocated (ext4 delalloc)
        assert fs.delalloc_reserved_bytes() > 0
        vfs.truncate("/d/delalloc", 0)
        assert fs.delalloc_reserved_bytes() == 0
        vfs.close(fd)


class TestStackSnapshotWithDevice:
    def test_ftl_stack_snapshot_round_trip(self):
        from repro.aging.snapshot import restore_stack, snapshot_stack

        testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl")
        stack = build_stack("ext4", testbed=testbed, seed=7)
        vfs = stack.vfs
        vfs.mkdirs_uncharged("/d")
        for index in range(8):
            fd = vfs.open(f"/d/f{index}", create=True)
            vfs.write(fd, 128 * KiB)
            vfs.fsync(fd)
            vfs.close(fd)
        vfs.unlink("/d/f0")
        vfs.sync()
        snapshot = snapshot_stack(stack)
        assert "device" in snapshot.data
        restored = snapshot_stack(restore_stack(snapshot, restore_rng=True))
        assert restored.fingerprint == snapshot.fingerprint

    def test_legacy_device_snapshot_omits_device_section(self):
        from repro.aging.snapshot import snapshot_stack

        stack = build_stack("ext2", testbed=scaled_testbed(0.0625), seed=7)
        snapshot = snapshot_stack(stack)
        assert "device" not in snapshot.data


class TestFreshVsSteadyExperiment:
    def test_quick_run_shows_divergence(self):
        from repro.experiments.ssd_steady import run_fresh_vs_steady

        result = run_fresh_vs_steady(
            fs_type="ext4", quick=True, testbed=scaled_testbed(0.0625)
        )
        assert result.steady_write_amplification > 1.0
        assert result.fresh_write_amplification == pytest.approx(1.0, abs=0.01)
        assert result.slowdown_factor > 1.02
        assert all(result.checks().values())
        rendered = result.render()
        assert "fresh" in rendered and "steady" in rendered

    @pytest.mark.slow
    def test_serial_equals_parallel(self):
        from repro.experiments.ssd_steady import run_fresh_vs_steady

        def frame_rows(n_workers):
            result = run_fresh_vs_steady(
                fs_type="ext2",
                workload="create-delete",
                quick=True,
                testbed=scaled_testbed(0.0625),
                n_workers=n_workers,
            )
            return result.frame.rows

        assert frame_rows(1) == frame_rows(2)

    def test_device_axis_separates_cache_keys(self):
        from repro.core.parallel import cache_key
        from repro.core.runner import BenchmarkConfig
        from repro.workloads.micro import sequential_read_workload

        spec = sequential_read_workload(8 * MiB)
        base = scaled_testbed(0.0625)
        keys = {
            cache_key("ext2", spec, BenchmarkConfig(), 42,
                      replace(base, device_kind=kind))
            for kind in ("ssd", "ssd-ftl", "ssd-ftl-fresh", "ssd-ftl-steady")
        }
        assert len(keys) == 4


class TestRunnerTelemetry:
    def test_ftl_runs_report_flash_environment(self):
        testbed = replace(scaled_testbed(0.0625), device_kind="ssd-ftl-steady")
        from repro.workloads.registry import WORKLOAD_REGISTRY

        spec = WORKLOAD_REGISTRY["create-delete"](testbed)
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE
        )
        run = run_single_repetition("ext4", spec, 0, testbed, config)
        assert "device_write_amplification" in run.environment
        assert run.environment["device_write_amplification"] >= 1.0

    def test_legacy_runs_keep_environment_keys_unchanged(self):
        testbed = scaled_testbed(0.0625)
        from repro.workloads.registry import WORKLOAD_REGISTRY

        spec = WORKLOAD_REGISTRY["create-delete"](testbed)
        config = BenchmarkConfig(
            duration_s=1.0, repetitions=1, warmup_mode=WarmupMode.NONE
        )
        run = run_single_repetition("ext2", spec, 0, testbed, config)
        assert sorted(run.environment) == ["cpu_speed_factor", "page_cache_bytes"]
