"""Tests for the block-group and extent allocators."""

import pytest

from repro.fs.allocation import BlockGroupAllocator, ExtentAllocator, FreeExtentMap
from repro.fs.base import NoSpaceError


class TestFreeExtentMap:
    def test_initially_one_run(self):
        free_map = FreeExtentMap(100, first_block=10)
        assert free_map.runs() == [(10, 100)]
        assert free_map.free_blocks == 100

    def test_take_from_front_of_run(self):
        free_map = FreeExtentMap(100)
        start, count = free_map.take_from_run(0, 10)
        assert (start, count) == (0, 10)
        assert free_map.runs() == [(10, 90)]

    def test_take_whole_run_removes_it(self):
        free_map = FreeExtentMap(10)
        free_map.take_from_run(0, 10)
        assert len(free_map) == 0
        assert free_map.free_blocks == 0

    def test_release_coalesces_with_neighbours(self):
        free_map = FreeExtentMap(100)
        free_map.take_from_run(0, 50)
        free_map.release(0, 25)
        free_map.release(25, 25)
        assert free_map.runs() == [(0, 100)]

    def test_double_free_detected(self):
        free_map = FreeExtentMap(100)
        free_map.take_from_run(0, 10)
        free_map.release(0, 10)
        with pytest.raises(ValueError):
            free_map.release(0, 10)

    def test_find_first_fit_honours_goal(self):
        free_map = FreeExtentMap(1000)
        free_map.take_from_run(0, 500)  # free space now starts at 500
        index = free_map.find_first_fit(10, goal_block=600)
        assert index is not None

    def test_largest_run(self):
        free_map = FreeExtentMap(100)
        free_map.take_from_run(0, 40)
        assert free_map.largest_run() == 60


class TestBlockGroupAllocator:
    def test_allocate_and_free_round_trip(self):
        allocator = BlockGroupAllocator(total_blocks=100_000, blocks_per_group=10_000)
        before = allocator.free_blocks
        runs = allocator.allocate(500)
        assert sum(count for _, count in runs) == 500
        assert allocator.free_blocks == before - 500
        for start, count in runs:
            allocator.free(start, count)
        assert allocator.free_blocks == before

    def test_small_allocation_is_contiguous(self):
        allocator = BlockGroupAllocator(total_blocks=100_000, blocks_per_group=10_000)
        runs = allocator.allocate(100)
        assert len(runs) == 1

    def test_allocation_larger_than_group_splits(self):
        allocator = BlockGroupAllocator(total_blocks=100_000, blocks_per_group=10_000)
        runs = allocator.allocate(25_000)
        assert len(runs) >= 3
        assert sum(count for _, count in runs) == 25_000
        assert allocator.stats.split_allocations == 1

    def test_goal_block_groups_related_allocations(self):
        allocator = BlockGroupAllocator(total_blocks=100_000, blocks_per_group=10_000)
        first = allocator.allocate(10, goal_block=55_000)
        second = allocator.allocate(10, goal_block=first[0][0] + first[0][1])
        assert allocator.group_of_block(second[0][0]) == allocator.group_of_block(first[0][0])

    def test_out_of_space(self):
        allocator = BlockGroupAllocator(total_blocks=2_000, blocks_per_group=1_000, reserved_blocks=100)
        with pytest.raises(NoSpaceError):
            allocator.allocate(5_000)

    def test_failed_allocation_rolls_back(self):
        allocator = BlockGroupAllocator(total_blocks=2_000, blocks_per_group=1_000, reserved_blocks=100)
        free_before = allocator.free_blocks
        with pytest.raises(NoSpaceError):
            allocator.allocate(free_before + 1)
        assert allocator.free_blocks == free_before

    def test_allocations_never_overlap(self):
        allocator = BlockGroupAllocator(total_blocks=50_000, blocks_per_group=5_000)
        seen = set()
        for _ in range(50):
            for start, count in allocator.allocate(137):
                for block in range(start, start + count):
                    assert block not in seen
                    seen.add(block)

    def test_reserved_blocks_never_handed_out(self):
        allocator = BlockGroupAllocator(total_blocks=10_000, blocks_per_group=1_000, reserved_blocks=256)
        runs = allocator.allocate(5_000)
        assert min(start for start, _ in runs) >= 256

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BlockGroupAllocator(total_blocks=100, blocks_per_group=0)
        with pytest.raises(ValueError):
            BlockGroupAllocator(total_blocks=10, reserved_blocks=20)
        allocator = BlockGroupAllocator(total_blocks=10_000)
        with pytest.raises(ValueError):
            allocator.allocate(0)
        with pytest.raises(ValueError):
            allocator.free(0, 0)


class TestExtentAllocator:
    def test_large_allocation_stays_contiguous(self):
        allocator = ExtentAllocator(total_blocks=1_000_000, allocation_groups=4)
        runs = allocator.allocate(200_000)
        assert len(runs) == 1

    def test_contiguity_better_than_block_groups(self):
        """The XFS-style allocator should fragment a large file less."""
        extent_allocator = ExtentAllocator(total_blocks=500_000, allocation_groups=4)
        group_allocator = BlockGroupAllocator(total_blocks=500_000, blocks_per_group=32_768)
        extent_runs = extent_allocator.allocate(150_000)
        group_runs = group_allocator.allocate(150_000)
        assert len(extent_runs) <= len(group_runs)

    def test_allocate_and_free_round_trip(self):
        allocator = ExtentAllocator(total_blocks=100_000)
        before = allocator.free_blocks
        runs = allocator.allocate(5_000)
        for start, count in runs:
            allocator.free(start, count)
        assert allocator.free_blocks == before

    def test_max_extent_cap_respected(self):
        allocator = ExtentAllocator(total_blocks=1_000_000, max_extent_blocks=10_000)
        runs = allocator.allocate(35_000)
        assert all(count <= 10_000 for _, count in runs)
        assert sum(count for _, count in runs) == 35_000

    def test_out_of_space(self):
        allocator = ExtentAllocator(total_blocks=10_000)
        with pytest.raises(NoSpaceError):
            allocator.allocate(20_000)

    def test_allocations_never_overlap(self):
        allocator = ExtentAllocator(total_blocks=100_000, allocation_groups=4)
        seen = set()
        for _ in range(40):
            for start, count in allocator.allocate(953):
                for block in range(start, start + count):
                    assert block not in seen
                    seen.add(block)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExtentAllocator(total_blocks=100, allocation_groups=0)
        with pytest.raises(ValueError):
            ExtentAllocator(total_blocks=100, reserved_blocks=200)
