"""Tests for stack construction."""

import pytest

from repro.fs.ext2 import Ext2FileSystem
from repro.fs.stack import FS_REGISTRY, build_stack
from repro.storage.cache import CachePolicy
from repro.storage.config import scaled_testbed

MiB = 1024 * 1024


class TestBuildStack:
    def test_registry_contains_the_case_study_filesystems_plus_ext4(self):
        assert set(FS_REGISTRY) == {"ext2", "ext3", "ext4", "xfs"}

    @pytest.mark.parametrize("fs_type", ["ext2", "ext3", "ext4", "xfs"])
    def test_builds_each_filesystem(self, fs_type):
        stack = build_stack(fs_type, testbed=scaled_testbed(1.0 / 16.0))
        assert stack.fs_name == fs_type
        assert stack.cache.capacity_pages == stack.testbed.page_cache_pages
        assert stack.device.capacity_bytes == stack.fs.capacity_bytes

    def test_unknown_fs_rejected(self):
        with pytest.raises(ValueError):
            build_stack("zfs")

    def test_custom_fs_factory(self):
        stack = build_stack(
            fs_factory=lambda capacity, block: Ext2FileSystem(capacity, block, blocks_per_group=8192),
            testbed=scaled_testbed(1.0 / 16.0),
        )
        assert isinstance(stack.fs, Ext2FileSystem)

    def test_same_seed_same_behaviour(self):
        def run(seed):
            stack = build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0), seed=seed)
            vfs = stack.vfs
            vfs.create("/f")
            fd = vfs.open("/f")
            vfs.fallocate(fd, 4 * MiB, charge_time=False)
            return [vfs.read(fd, 8192, offset=(i * 37 % 500) * 8192) for i in range(50)]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_cache_policy_from_testbed(self):
        testbed = scaled_testbed(1.0 / 16.0).with_cache_policy(CachePolicy.ARC)
        stack = build_stack("ext2", testbed=testbed)
        assert stack.cache.policy_name == CachePolicy.ARC

    def test_describe_mentions_fs_and_testbed(self):
        stack = build_stack("xfs", testbed=scaled_testbed(1.0 / 16.0))
        assert "xfs" in stack.describe()

    def test_reset_statistics(self):
        stack = build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0))
        vfs = stack.vfs
        vfs.create("/f")
        fd = vfs.open("/f")
        vfs.fallocate(fd, 1 * MiB, charge_time=False)
        vfs.read(fd, 8192, offset=0)
        stack.reset_statistics()
        assert stack.cache.stats.accesses == 0
        assert stack.device.stats.requests == 0
        assert stack.vfs.stats.reads == 0

    def test_drop_caches_leaves_clean_empty_cache(self):
        stack = build_stack("ext2", testbed=scaled_testbed(1.0 / 16.0))
        vfs = stack.vfs
        vfs.create("/f")
        fd = vfs.open("/f")
        vfs.write(fd, 64 * 1024, offset=0)
        stack.drop_caches()
        assert len(stack.cache) == 0
        assert stack.cache.dirty_pages == 0
