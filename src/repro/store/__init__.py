"""repro.store: the packed, compressed, integrity-checked result store.

A ``.frpack`` artifact turns a sprawling loose result cache -- one JSON
file per measured cell -- into a single distributable file a whole fleet
can share, merge and verify: sorted ``(cache key -> canonical run
payload)`` records in independently compressed blocks, with a checksum on
every structure and a whole-file SHA-256 fingerprint.  See
:mod:`repro.store.format` for the byte layout and
``docs/architecture.md`` section 10 for the rationale.

The public surface:

* :class:`~repro.store.reader.PackReader` / :func:`~repro.store.reader.verify_pack`
* :class:`~repro.store.writer.PackWriter` and the ``pack_*`` front ends
* :func:`~repro.store.merge.merge_packs`
* the ``fsbench-rocket results`` / ``cache`` verbs (:mod:`repro.store.commands`)
* the read-through cache tier: ``ResultCache(..., pack_paths=[...])``
"""

from repro.store.format import (
    DEFAULT_BLOCK_BYTES,
    DEFAULT_LEVEL,
    StoreConflictError,
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
)
from repro.store.merge import merge_packs
from repro.store.reader import PackReader, VerifyReport, verify_pack
from repro.store.writer import (
    PackSummary,
    PackWriter,
    pack_result_cache,
    pack_runs_jsonl,
    write_pack,
)

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "DEFAULT_LEVEL",
    "PackReader",
    "PackSummary",
    "PackWriter",
    "StoreConflictError",
    "StoreCorruptionError",
    "StoreError",
    "StoreFormatError",
    "VerifyReport",
    "merge_packs",
    "pack_result_cache",
    "pack_runs_jsonl",
    "verify_pack",
    "write_pack",
]
