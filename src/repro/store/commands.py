"""CLI verbs of the packed result store.

``fsbench-rocket results <verb>`` is the operational face of
:mod:`repro.store`::

    fsbench-rocket results pack --cache-dir .fsbench-cache --out campaign.frpack
    fsbench-rocket results merge --out all.frpack shard1.frpack shard2.frpack
    fsbench-rocket results verify campaign.frpack
    fsbench-rocket results query campaign.frpack --where fs=ext4
    fsbench-rocket results export campaign.frpack --out frame.jsonl

plus ``fsbench-rocket cache <dir>``, the loose-cache maintenance verb
(inspect, integrity-scan, ``--clear``).

Everything here is glue: argument parsing and rendering.  The work happens
in :mod:`repro.store.writer`, :mod:`repro.store.reader` and
:mod:`repro.store.merge`; queries land in a
:class:`~repro.core.frame.ResultFrame`, so the same filters, pivots and
JSONL/CSV round-trips apply to packed results as to live experiment runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Iterable, Optional, Tuple

from repro.core.frame import ResultFrame, rows_for_run
from repro.core.persistence import run_from_payload
from repro.store.format import DEFAULT_BLOCK_BYTES, DEFAULT_LEVEL, StoreError
from repro.store.merge import merge_packs
from repro.store.reader import PackReader, verify_pack
from repro.store.writer import pack_result_cache, pack_runs_jsonl


def _parse_where(text: str) -> Tuple[str, Any]:
    """argparse type for --where: ``COLUMN=VALUE`` with scalar coercion."""
    name, sep, raw = text.partition("=")
    name = name.strip()
    raw = raw.strip()
    if not sep or not name or not raw:
        raise argparse.ArgumentTypeError("expected COLUMN=VALUE (e.g. fs=ext4)")
    lowered = raw.lower()
    if lowered == "true":
        return name, True
    if lowered == "false":
        return name, False
    try:
        return name, int(raw)
    except ValueError:
        pass
    try:
        return name, float(raw)
    except ValueError:
        return name, raw


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def add_store_subparsers(subparsers) -> None:
    """Register the ``results`` and ``cache`` subcommands on the CLI parser."""
    results = subparsers.add_parser(
        "results",
        help="pack, merge, verify, query and export .frpack result artifacts",
    )
    verbs = results.add_subparsers(dest="verb", required=True)

    pack = verbs.add_parser(
        "pack", help="build a pack from a loose cache directory or a runs JSONL"
    )
    source = pack.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="loose ResultCache directory to pack (every <key>.json entry)",
    )
    source.add_argument(
        "--runs",
        metavar="JSONL",
        help='runs JSONL to pack (lines of {"key": ..., "run": ...}, '
        "as written by 'results export --runs')",
    )
    pack.add_argument("--out", required=True, metavar="PACK", help="output .frpack path")
    _add_pack_options(pack)

    merge = verbs.add_parser(
        "merge", help="union N shard packs (dedup by key, conflicts are fatal)"
    )
    merge.add_argument("sources", nargs="+", metavar="PACK", help="shard packs to merge")
    merge.add_argument("--out", required=True, metavar="PACK", help="output .frpack path")
    _add_pack_options(merge)

    verify = verbs.add_parser(
        "verify", help="full integrity audit: fingerprint, header/index/block checksums"
    )
    verify.add_argument("pack", metavar="PACK", help="pack to audit")

    query = verbs.add_parser(
        "query", help="read packed cells into a result frame and render or write it"
    )
    query.add_argument("pack", metavar="PACK", help="pack to query")
    query.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="KEY",
        help="exact cache key to fetch (repeatable; default: every record)",
    )
    query.add_argument(
        "--prefix", default=None, metavar="HEX", help="cache-key prefix to fetch"
    )
    query.add_argument(
        "--where",
        action="append",
        type=_parse_where,
        default=[],
        metavar="COLUMN=VALUE",
        help="keep only frame rows matching this column value (repeatable)",
    )
    query.add_argument(
        "--metric",
        default="throughput_ops_s",
        metavar="NAME",
        help="metric rendered in the summary table (default throughput_ops_s)",
    )
    query.add_argument(
        "--experiment",
        default=None,
        metavar="NAME",
        help="experiment name recorded in the frame rows",
    )
    query.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the frame here (.csv writes CSV, anything else JSONL) "
        "instead of rendering a table",
    )

    export = verbs.add_parser(
        "export", help="dump a pack as a frame JSONL/CSV or as re-packable run records"
    )
    export.add_argument("pack", metavar="PACK", help="pack to export")
    export.add_argument("--out", required=True, metavar="PATH", help="output path")
    export.add_argument(
        "--runs",
        action="store_true",
        help='write raw {"key", "run"} JSONL (re-packable via \'results pack --runs\') '
        "instead of the tidy frame",
    )
    export.add_argument(
        "--experiment",
        default=None,
        metavar="NAME",
        help="experiment name recorded in the frame rows (frame export only)",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or clear a loose result-cache directory"
    )
    cache.add_argument("cache_dir", metavar="DIR", help="cache directory")
    cache.add_argument(
        "--clear", action="store_true", help="delete every entry (quarantined ones too)"
    )


def _add_pack_options(parser) -> None:
    parser.add_argument(
        "--level",
        type=int,
        default=DEFAULT_LEVEL,
        choices=range(0, 10),
        metavar="0-9",
        help=f"zlib compression level (default {DEFAULT_LEVEL})",
    )
    parser.add_argument(
        "--block-bytes",
        type=_positive_int,
        default=DEFAULT_BLOCK_BYTES,
        metavar="N",
        help=f"uncompressed block size target in bytes (default {DEFAULT_BLOCK_BYTES})",
    )
    parser.add_argument(
        "--block-records",
        type=_positive_int,
        default=None,
        metavar="N",
        help="also cut a block every N records (default: size-based only)",
    )


# ------------------------------------------------------------------ helpers
def pack_records(
    reader: PackReader,
    keys: Iterable[str] = (),
    prefix: Optional[str] = None,
) -> Iterable[Tuple[str, bytes]]:
    """The selected ``(key, payload)`` records of a pack, in key order."""
    keys = list(keys)
    if keys:
        for key in sorted(set(keys)):
            payload = reader.get(key)
            if payload is not None:
                yield key, payload
    elif prefix is not None:
        yield from reader.iter_prefix(prefix)
    else:
        yield from reader


def frame_from_pack(
    reader: PackReader,
    keys: Iterable[str] = (),
    prefix: Optional[str] = None,
    experiment: Optional[str] = None,
) -> ResultFrame:
    """Build a tidy frame from packed cells.

    Rows carry the axes recoverable from the payload itself (``fs``,
    ``workload``, plus the per-run ``seed``/``repetition``) and the given
    experiment name -- the same columns an fs x workload
    :class:`~repro.core.experiment.Experiment` emits, which is what makes
    the pack-vs-live frame equality check possible at all.
    """
    frame = ResultFrame()
    for key, payload in pack_records(reader, keys=keys, prefix=prefix):
        run = run_from_payload(payload)
        axes: dict = {}
        if experiment is not None:
            axes["experiment"] = experiment
        axes["fs"] = run.fs_name
        axes["workload"] = run.workload_name
        frame.extend(rows_for_run(axes, run))
    return frame


def _write_frame(frame: ResultFrame, out: str) -> None:
    if out.endswith(".csv"):
        frame.to_csv(out)
    else:
        frame.to_jsonl(out)
    print(f"wrote {len(frame)} records -> {out}")


# --------------------------------------------------------------------- verbs
def run_results(args) -> int:
    """Dispatch ``fsbench-rocket results <verb>``."""
    try:
        if args.verb == "pack":
            if args.cache_dir:
                summary = pack_result_cache(
                    args.cache_dir,
                    args.out,
                    level=args.level,
                    block_bytes=args.block_bytes,
                    block_records=args.block_records,
                )
            else:
                summary = pack_runs_jsonl(
                    args.runs,
                    args.out,
                    level=args.level,
                    block_bytes=args.block_bytes,
                    block_records=args.block_records,
                )
            print(summary.render())
            return 0
        if args.verb == "merge":
            summary = merge_packs(
                args.out,
                args.sources,
                level=args.level,
                block_bytes=args.block_bytes,
                block_records=args.block_records,
            )
            print(f"merged {len(args.sources)} packs:")
            print(summary.render())
            return 0
        if args.verb == "verify":
            report = verify_pack(args.pack)
            print(report.render())
            return 0 if report.ok else 1
        if args.verb == "query":
            with PackReader(args.pack) as reader:
                frame = frame_from_pack(
                    reader,
                    keys=args.key,
                    prefix=args.prefix,
                    experiment=args.experiment,
                )
            for column, value in args.where:
                frame = frame.filter(**{column: value})
            if args.out:
                _write_frame(frame, args.out)
                return 0
            if not len(frame):
                print("no matching records")
                return 0
            table = frame.filter(metric=args.metric).pivot(
                index="workload", columns="fs"
            )
            print(f"{args.metric} (mean over matching repetitions):")
            print(
                table.render(
                    index_headers=["workload"],
                    value_format="{:.1f}",
                    missing="-",
                )
            )
            return 0
        if args.verb == "export":
            with PackReader(args.pack) as reader:
                if args.runs:
                    count = 0
                    with open(args.out, "w") as handle:
                        for key, payload in reader:
                            document = json.loads(payload.decode("utf-8"))
                            handle.write(
                                json.dumps(
                                    {"key": key, "run": document}, sort_keys=True
                                )
                                + "\n"
                            )
                            count += 1
                    print(f"wrote {count} run records -> {args.out}")
                    return 0
                frame = frame_from_pack(reader, experiment=args.experiment)
            _write_frame(frame, args.out)
            return 0
    except (StoreError, FileNotFoundError, ValueError) as error:
        print(f"fsbench-rocket: error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unknown results verb {args.verb!r}")


def run_cache(args) -> int:
    """Dispatch ``fsbench-rocket cache``: inspect, scan, or clear."""
    from repro.core.parallel import ResultCache
    from repro.store.writer import iter_cache_entries

    if not os.path.isdir(args.cache_dir):
        print(
            f"fsbench-rocket: error: cache directory not found: {args.cache_dir}",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {args.cache_dir}")
        return 0

    entries = list(iter_cache_entries(args.cache_dir))
    total_bytes = 0
    quarantined = 0
    for directory, _, files in os.walk(args.cache_dir):
        for name in files:
            if name.endswith(".json") or name.endswith(".json.corrupt"):
                total_bytes += os.path.getsize(os.path.join(directory, name))
            if name.endswith(".json.corrupt"):
                quarantined += 1
    # A full read-back scan: every entry is loaded through the persistence
    # layer, so unreadable ones are counted and quarantined right here.
    for key, _ in entries:
        cache.get(key)
    print(f"{args.cache_dir}: {len(entries)} entries, {total_bytes} bytes")
    print(
        f"  scan: {cache.stats.hits} readable, {cache.stats.corrupt} corrupt "
        f"(quarantined now), {quarantined} quarantined earlier"
    )
    print(
        f"  stats: hits={cache.stats.hits} misses={cache.stats.misses} "
        f"stores={cache.stats.stores} corrupt={cache.stats.corrupt}"
    )
    if cache.stats.corrupt:
        print("  corrupt entries were renamed to <key>.json.corrupt")
    return 0
