"""Reading and auditing ``.frpack`` result packs.

Two consumers live here with deliberately different temperaments:

* :class:`PackReader` is the hot path -- open once, binary-search the block
  index, decompress only the touched blocks.  Any integrity failure it
  meets *raises*; it never hands back bytes it cannot vouch for.
* :func:`verify_pack` is the audit path -- read the whole file, check every
  structure (magic, header CRC, footer, whole-file fingerprint, index CRC,
  every block CRC and its decoded contents), and *collect* the failures
  into a report instead of stopping at the first, so one pass localises
  all the damage.

The reader keeps a ``blocks_read`` counter (blocks actually decompressed)
precisely so tests can assert the access-granularity claim: a point lookup
on a multi-block pack inflates exactly one block, a miss that binary search
can rule out inflates none.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import IO, Iterator, List, Optional, Tuple

from repro.core.persistence import run_from_payload
from repro.core.results import RunResult
from repro.store.format import (
    FOOTER_FINGERPRINTED,
    FOOTER_SIZE,
    StoreCorruptionError,
    StoreFormatError,
    decode_footer,
    decode_index,
    decode_preamble,
    decode_records,
)


class PackReader:
    """Random and streaming access to one ``.frpack`` file.

    Opening validates the preamble, footer, and index; record payloads are
    checked lazily, block by block, as they are first touched.  A single
    most-recently-used decompressed block is cached, which is the natural
    fit for both point lookups with locality and in-order scans.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.blocks_read = 0
        self._handle: Optional[IO[bytes]] = open(path, "rb")
        try:
            self._size = os.fstat(self._handle.fileno()).st_size
            if self._size < FOOTER_SIZE:
                raise StoreFormatError(f"{path}: file too short to be a pack")
            preamble = self._handle.read(min(self._size, 1 << 16))
            self.header, self._data_start = decode_preamble(preamble)
            self._handle.seek(self._size - FOOTER_SIZE)
            index_offset, index_len, index_crc, self._fingerprint = decode_footer(
                self._handle.read(FOOTER_SIZE)
            )
            footer_start = self._size - FOOTER_SIZE
            if not (self._data_start <= index_offset and index_offset + index_len == footer_start):
                raise StoreCorruptionError(f"{path}: index offset/length out of bounds")
            self._handle.seek(index_offset)
            index_bytes = self._handle.read(index_len)
            if len(index_bytes) != index_len:
                raise StoreCorruptionError(f"{path}: truncated index")
            actual_crc = zlib.crc32(index_bytes)
            if actual_crc != index_crc:
                raise StoreCorruptionError(
                    f"{path}: index CRC mismatch "
                    f"(stored {index_crc:#010x}, computed {actual_crc:#010x})"
                )
            self._entries, self._record_count = decode_index(index_bytes)
            self._check_index_invariants(index_offset)
            self._first_keys = [entry.first_key for entry in self._entries]
            self._cached_block: Optional[int] = None
            self._cached_records: List[Tuple[str, bytes]] = []
        except Exception:
            self._handle.close()
            self._handle = None
            raise

    def _check_index_invariants(self, index_offset: int) -> None:
        expected_offset = self._data_start
        previous_last: Optional[str] = None
        total = 0
        for number, entry in enumerate(self._entries):
            if entry.offset != expected_offset:
                raise StoreCorruptionError(
                    f"{self.path}: block {number} offset {entry.offset}, expected {expected_offset}"
                )
            if entry.first_key > entry.last_key or entry.n_records <= 0:
                raise StoreCorruptionError(f"{self.path}: block {number} index entry is malformed")
            if previous_last is not None and entry.first_key <= previous_last:
                raise StoreCorruptionError(
                    f"{self.path}: block {number} keys overlap the previous block"
                )
            previous_last = entry.last_key
            expected_offset += entry.comp_len
            total += entry.n_records
        if expected_offset != index_offset:
            raise StoreCorruptionError(f"{self.path}: block region does not reach the index")
        if total != self._record_count:
            raise StoreCorruptionError(
                f"{self.path}: index record count {self._record_count} != block total {total}"
            )

    # -------------------------------------------------------------- access
    def _load_block(self, number: int) -> List[Tuple[str, bytes]]:
        if self._cached_block == number:
            return self._cached_records
        if self._handle is None:
            raise RuntimeError("reader is closed")
        entry = self._entries[number]
        self._handle.seek(entry.offset)
        compressed = self._handle.read(entry.comp_len)
        if len(compressed) != entry.comp_len:
            raise StoreCorruptionError(f"{self.path}: block {number} truncated")
        actual_crc = zlib.crc32(compressed)
        if actual_crc != entry.crc:
            raise StoreCorruptionError(
                f"{self.path}: block {number} CRC mismatch "
                f"(stored {entry.crc:#010x}, computed {actual_crc:#010x})"
            )
        try:
            raw = zlib.decompress(compressed)
        except zlib.error as error:
            raise StoreCorruptionError(
                f"{self.path}: block {number} failed to decompress: {error}"
            ) from None
        if len(raw) != entry.raw_len:
            raise StoreCorruptionError(
                f"{self.path}: block {number} inflated to {len(raw)} bytes, "
                f"index says {entry.raw_len}"
            )
        records = decode_records(raw)
        if len(records) != entry.n_records:
            raise StoreCorruptionError(
                f"{self.path}: block {number} holds {len(records)} records, "
                f"index says {entry.n_records}"
            )
        if records[0][0] != entry.first_key or records[-1][0] != entry.last_key:
            raise StoreCorruptionError(
                f"{self.path}: block {number} key boundaries disagree with the index"
            )
        for (key_a, _), (key_b, _) in zip(records, records[1:]):
            if key_b <= key_a:
                raise StoreCorruptionError(f"{self.path}: block {number} keys are not ascending")
        self.blocks_read += 1
        self._cached_block = number
        self._cached_records = records
        return records

    def get(self, key: str) -> Optional[bytes]:
        """Point lookup: the payload for ``key``, or ``None``.

        Binary search picks the single candidate block from the index; if
        the index already rules the key out, nothing is decompressed.
        """
        number = bisect_right(self._first_keys, key) - 1
        if number < 0:
            return None
        entry = self._entries[number]
        if key > entry.last_key:
            return None
        for record_key, payload in self._load_block(number):
            if record_key == key:
                return payload
            if record_key > key:
                break
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def get_run(self, key: str) -> Optional[RunResult]:
        """Point lookup decoded into a :class:`RunResult`."""
        payload = self.get(key)
        return run_from_payload(payload) if payload is not None else None

    def __iter__(self) -> Iterator[Tuple[str, bytes]]:
        """Stream every record in key order, one block in memory at a time."""
        for number in range(len(self._entries)):
            yield from self._load_block(number)

    def iter_prefix(self, prefix: str) -> Iterator[Tuple[str, bytes]]:
        """Stream records whose key starts with ``prefix``, skipping blocks
        the index proves are entirely outside the range."""
        start = bisect_right(self._first_keys, prefix) - 1
        for number in range(max(start, 0), len(self._entries)):
            entry = self._entries[number]
            if entry.first_key > prefix and not entry.first_key.startswith(prefix):
                break
            if entry.last_key < prefix:
                continue
            for key, payload in self._load_block(number):
                if key.startswith(prefix):
                    yield key, payload
                elif key > prefix:
                    return

    def __len__(self) -> int:
        return self._record_count

    @property
    def fingerprint(self) -> str:
        """The pack's whole-file SHA-256, hex-encoded."""
        return self._fingerprint.hex()

    @property
    def n_blocks(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PackReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ------------------------------------------------------------------- verify
@dataclass
class VerifyReport:
    """Outcome of a full-pack audit: every failure found, localised."""

    path: str
    records: int = 0
    blocks: int = 0
    size_bytes: int = 0
    fingerprint: str = ""
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if self.ok:
            return (
                f"{self.path}: OK -- {self.records} records in {self.blocks} blocks, "
                f"{self.size_bytes} bytes, sha256:{self.fingerprint}"
            )
        lines = [f"{self.path}: CORRUPT -- {len(self.errors)} problem(s)"]
        lines.extend(f"  {error}" for error in self.errors)
        return "\n".join(lines)


def verify_pack(path: str) -> VerifyReport:
    """Audit every integrity structure of a pack; never raises on damage.

    Checks, in dependency order: both magics, the header CRC and contents,
    the footer, the whole-file fingerprint, the index CRC, its internal
    invariants, then every block (CRC, decompression, raw length, record
    framing, key ordering, record count).  Later stages are skipped when an
    earlier stage they depend on already failed.
    """
    report = VerifyReport(path=path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        report.errors.append(f"unreadable: {error}")
        return report
    report.size_bytes = len(data)

    try:
        header, data_start = decode_preamble(data)
    except (StoreFormatError, StoreCorruptionError) as error:
        report.errors.append(f"header: {error}")
        return report

    if len(data) < data_start + FOOTER_SIZE:
        report.errors.append("footer: file truncated before the footer")
        return report
    footer_start = len(data) - FOOTER_SIZE
    try:
        index_offset, index_len, index_crc, fingerprint = decode_footer(data[footer_start:])
    except StoreCorruptionError as error:
        report.errors.append(f"footer: {error}")
        return report

    actual_fingerprint = hashlib.sha256(data[: footer_start + FOOTER_FINGERPRINTED]).digest()
    report.fingerprint = actual_fingerprint.hex()
    if actual_fingerprint != fingerprint:
        report.errors.append(
            f"fingerprint: sha256 mismatch (stored {fingerprint.hex()}, "
            f"computed {actual_fingerprint.hex()})"
        )

    if not (data_start <= index_offset and index_offset + index_len == footer_start):
        report.errors.append("index: offset/length out of bounds")
        return report
    index_bytes = data[index_offset : index_offset + index_len]
    actual_crc = zlib.crc32(index_bytes)
    if actual_crc != index_crc:
        report.errors.append(
            f"index: CRC mismatch (stored {index_crc:#010x}, computed {actual_crc:#010x})"
        )
        return report
    try:
        entries, record_count = decode_index(index_bytes)
    except StoreCorruptionError as error:
        report.errors.append(f"index: {error}")
        return report
    report.blocks = len(entries)
    report.records = record_count

    expected_offset = data_start
    previous_last: Optional[str] = None
    total_records = 0
    structure_broken = False
    for number, entry in enumerate(entries):
        if entry.offset != expected_offset:
            report.errors.append(
                f"block {number}: offset {entry.offset}, expected {expected_offset}"
            )
            structure_broken = True
            break
        expected_offset += entry.comp_len
        if expected_offset > index_offset:
            report.errors.append(f"block {number}: extends past the index")
            structure_broken = True
            break
        if previous_last is not None and entry.first_key <= previous_last:
            report.errors.append(f"block {number}: keys overlap the previous block")
        compressed = data[entry.offset : entry.offset + entry.comp_len]
        block_crc = zlib.crc32(compressed)
        if block_crc != entry.crc:
            report.errors.append(
                f"block {number}: CRC mismatch "
                f"(stored {entry.crc:#010x}, computed {block_crc:#010x})"
            )
            previous_last = entry.last_key
            total_records += entry.n_records
            continue
        try:
            raw = zlib.decompress(compressed)
        except zlib.error as error:
            report.errors.append(f"block {number}: failed to decompress: {error}")
            previous_last = entry.last_key
            total_records += entry.n_records
            continue
        if len(raw) != entry.raw_len:
            report.errors.append(
                f"block {number}: inflated to {len(raw)} bytes, index says {entry.raw_len}"
            )
        try:
            records = decode_records(raw)
        except StoreCorruptionError as error:
            report.errors.append(f"block {number}: {error}")
            previous_last = entry.last_key
            total_records += entry.n_records
            continue
        if len(records) != entry.n_records:
            report.errors.append(
                f"block {number}: holds {len(records)} records, index says {entry.n_records}"
            )
        if records and (records[0][0] != entry.first_key or records[-1][0] != entry.last_key):
            report.errors.append(f"block {number}: key boundaries disagree with the index")
        for (key_a, _), (key_b, _) in zip(records, records[1:]):
            if key_b <= key_a:
                report.errors.append(f"block {number}: keys are not ascending")
                break
        previous_last = entry.last_key
        total_records += entry.n_records
    if not structure_broken:
        if expected_offset != index_offset:
            report.errors.append("blocks: block region does not reach the index")
        if total_records != record_count:
            report.errors.append(
                f"records: index claims {record_count}, blocks hold {total_records}"
            )
    return report
