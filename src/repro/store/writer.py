"""Streaming writer for ``.frpack`` result packs.

The writer is single-pass: it emits the preamble immediately, buffers
records into blocks, compresses and flushes each block as it fills, and
finishes with the index and footer -- never seeking backwards, never
holding more than one block of records in memory.  Output lands in a
temporary file that is atomically renamed on :meth:`PackWriter.finish`, so
a crashed or aborted pack never leaves a half-written artifact behind.

Determinism matters here: the same sorted record sequence with the same
compression parameters yields byte-identical packs regardless of how the
records arrived (direct pack, merge of shards, re-export).  zlib at a fixed
level is deterministic, the header carries no timestamps, and the block
cut points depend only on the records -- that is the property the merge
round-trip tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import IO, Iterable, List, Optional, Tuple

from repro.core.parallel import CACHE_FORMAT_VERSION
from repro.core.persistence import canonical_run_payload, load_run_result, run_from_payload
from repro.store.format import (
    DEFAULT_BLOCK_BYTES,
    DEFAULT_LEVEL,
    FOOTER_FINGERPRINTED,
    MAGIC_END,
    BlockEntry,
    StoreConflictError,
    encode_footer_prefix,
    encode_index,
    encode_preamble,
    encode_records,
)

logger = logging.getLogger(__name__)


@dataclass
class PackSummary:
    """What a finished pack contains, for CLI reporting and tests."""

    path: str
    records: int = 0
    duplicates: int = 0
    skipped: int = 0
    blocks: int = 0
    data_bytes: int = 0
    raw_bytes: int = 0
    fingerprint: str = ""
    skipped_paths: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"packed {self.records} records into {self.blocks} blocks at {self.path}",
            f"  compressed {self.raw_bytes} -> {self.data_bytes} bytes"
            + (f" ({self.data_bytes / self.raw_bytes:.2f}x)" if self.raw_bytes else ""),
            f"  fingerprint sha256:{self.fingerprint}",
        ]
        if self.duplicates:
            lines.append(f"  {self.duplicates} duplicate records dropped (identical payloads)")
        if self.skipped:
            lines.append(f"  {self.skipped} corrupt source entries skipped")
        return "\n".join(lines)


class PackWriter:
    """Write sorted ``(key, payload)`` records into one ``.frpack`` file.

    Keys must arrive in ascending order.  A repeated key is dropped when its
    payload is byte-identical to the previous one (counted as a duplicate)
    and rejected with :class:`StoreConflictError` otherwise; an out-of-order
    key is a caller bug and raises ``ValueError``.
    """

    def __init__(
        self,
        path: str,
        level: int = DEFAULT_LEVEL,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        block_records: Optional[int] = None,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if block_records is not None and block_records <= 0:
            raise ValueError("block_records must be positive when given")
        self.path = path
        self.level = level
        self.block_bytes = block_bytes
        self.block_records = block_records
        self.summary = PackSummary(path=path)
        self._entries: List[BlockEntry] = []
        self._pending: List[Tuple[str, bytes]] = []
        self._pending_bytes = 0
        self._last_key: Optional[str] = None
        self._last_payload: Optional[bytes] = None
        self._sha = hashlib.sha256()
        self._offset = 0
        self._finished = False
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, self._temp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        self._handle: Optional[IO[bytes]] = os.fdopen(fd, "wb")
        self._emit(encode_preamble(level, CACHE_FORMAT_VERSION))

    # ------------------------------------------------------------- plumbing
    def _emit(self, data: bytes) -> None:
        assert self._handle is not None
        self._handle.write(data)
        self._sha.update(data)
        self._offset += len(data)

    def add(self, key: str, payload: bytes) -> None:
        """Append one record; see the class docstring for ordering rules."""
        if self._finished:
            raise RuntimeError("writer already finished")
        if self._last_key is not None:
            if key < self._last_key:
                raise ValueError(
                    f"keys must be added in ascending order: {key!r} after {self._last_key!r}"
                )
            if key == self._last_key:
                if payload == self._last_payload:
                    self.summary.duplicates += 1
                    return
                raise StoreConflictError(key, "duplicate key with differing payloads")
        self._pending.append((key, payload))
        self._pending_bytes += len(payload) + len(key) + 6
        self._last_key = key
        self._last_payload = payload
        self.summary.records += 1
        if self._pending_bytes >= self.block_bytes or (
            self.block_records is not None and len(self._pending) >= self.block_records
        ):
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._pending:
            return
        raw = encode_records(self._pending)
        compressed = zlib.compress(raw, self.level)
        self._entries.append(
            BlockEntry(
                first_key=self._pending[0][0],
                last_key=self._pending[-1][0],
                offset=self._offset,
                comp_len=len(compressed),
                raw_len=len(raw),
                crc=zlib.crc32(compressed),
                n_records=len(self._pending),
            )
        )
        self._emit(compressed)
        self.summary.blocks += 1
        self.summary.data_bytes += len(compressed)
        self.summary.raw_bytes += len(raw)
        self._pending = []
        self._pending_bytes = 0

    # ------------------------------------------------------------ lifecycle
    def finish(self) -> PackSummary:
        """Flush, write index and footer, fsync, and rename into place."""
        if self._finished:
            return self.summary
        self._flush_block()
        index = encode_index(self._entries, self.summary.records)
        index_offset = self._offset
        self._emit(index)
        self._emit(encode_footer_prefix(index_offset, len(index), zlib.crc32(index)))
        # Everything emitted so far -- including the footer's first
        # FOOTER_FINGERPRINTED bytes -- is covered by the fingerprint.
        fingerprint = self._sha.digest()
        assert self._handle is not None
        self._handle.write(fingerprint + MAGIC_END)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(self._temp_path, self.path)
        self._finished = True
        self.summary.fingerprint = fingerprint.hex()
        return self.summary

    def abort(self) -> None:
        """Discard the temporary file without producing a pack."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if not self._finished and os.path.exists(self._temp_path):
            os.unlink(self._temp_path)

    def __enter__(self) -> "PackWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.abort()


# --------------------------------------------------------------- front ends
def write_pack(
    path: str,
    records: Iterable[Tuple[str, bytes]],
    sort: bool = True,
    level: int = DEFAULT_LEVEL,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    block_records: Optional[int] = None,
) -> PackSummary:
    """Pack an iterable of ``(key, payload)`` records.

    With ``sort=True`` (the default) the records are materialised and sorted
    by key first; pass ``sort=False`` for an already-sorted stream.
    """
    if sort:
        records = sorted(records, key=lambda record: record[0])
    with PackWriter(
        path, level=level, block_bytes=block_bytes, block_records=block_records
    ) as writer:
        for key, payload in records:
            writer.add(key, payload)
    return writer.summary


def iter_cache_entries(cache_dir: str):
    """Yield ``(key, entry_path)`` for every loose entry in a cache dir."""
    for bucket in sorted(os.listdir(cache_dir)):
        bucket_path = os.path.join(cache_dir, bucket)
        if not os.path.isdir(bucket_path):
            continue
        for name in sorted(os.listdir(bucket_path)):
            if name.endswith(".json"):
                yield name[: -len(".json")], os.path.join(bucket_path, name)


def pack_result_cache(
    cache_dir: str,
    out_path: str,
    level: int = DEFAULT_LEVEL,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    block_records: Optional[int] = None,
) -> PackSummary:
    """Pack a loose :class:`~repro.core.parallel.ResultCache` directory.

    Each ``<key[:2]>/<key>.json`` entry is loaded through the persistence
    layer and re-encoded with :func:`canonical_run_payload`, so the pack is
    canonical even if the loose files differ in whitespace.  Corrupt loose
    entries are skipped with a warning and counted in ``summary.skipped``
    (packing is exactly the moment to notice them, not to propagate them).
    """
    if not os.path.isdir(cache_dir):
        raise FileNotFoundError(f"cache directory not found: {cache_dir}")
    with PackWriter(
        out_path, level=level, block_bytes=block_bytes, block_records=block_records
    ) as writer:
        for key, entry_path in iter_cache_entries(cache_dir):
            try:
                run = load_run_result(entry_path)
            except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
                logger.warning("skipping corrupt cache entry %s", entry_path)
                writer.summary.skipped += 1
                writer.summary.skipped_paths.append(entry_path)
                continue
            writer.add(key, canonical_run_payload(run))
    return writer.summary


def pack_runs_jsonl(
    jsonl_path: str,
    out_path: str,
    level: int = DEFAULT_LEVEL,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    block_records: Optional[int] = None,
) -> PackSummary:
    """Pack a JSONL export of ``{"key": ..., "run": <wrapped document>}`` lines.

    This is the inverse of ``fsbench-rocket results export --runs``: each
    line's run document is validated by a decode/re-encode round-trip
    through the canonical encoder before it is packed.
    """
    records: List[Tuple[str, bytes]] = []
    with open(jsonl_path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                payload = json.dumps(
                    entry["run"], sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                run = run_from_payload(payload)
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
                raise ValueError(f"{jsonl_path}:{line_number}: bad run record: {error}") from None
            records.append((key, canonical_run_payload(run)))
    return write_pack(
        out_path,
        records,
        sort=True,
        level=level,
        block_bytes=block_bytes,
        block_records=block_records,
    )
