"""On-disk layout of ``.frpack`` packed result artifacts.

A pack is a read-optimized archive of sorted ``(cache key -> canonical run
payload)`` records, borrowed from the ZS archival format: records are
grouped into independently zlib-compressed blocks so a point or range read
decompresses only the blocks it touches, every structure carries its own
checksum so corruption is *detected, never silently returned*, and a
whole-file SHA-256 fingerprint names the artifact's exact contents.

Byte layout (all integers big-endian, offsets from the start of the file)::

    0           MAGIC            8 bytes  b"FRPACK\\x00\\x01" (last byte:
                                          container format version)
    8           header_len       u32
    12          header JSON      compact UTF-8, sorted keys
    12+H        header_crc       u32      crc32 of the header JSON bytes
    16+H        blocks           concatenated zlib streams
    ...         index JSON       compact UTF-8, sorted keys
    ...         footer           60 bytes, fixed:
                  index_offset   u64
                  index_len      u64
                  index_crc      u32      crc32 of the index JSON bytes
                  fingerprint    32 bytes sha256 of file[0 : footer+20]
                  MAGIC_END      8 bytes  b"FRPKEND\\n"

The header holds only *static* metadata (format version, the
``CACHE_FORMAT_VERSION`` the payloads were keyed under, the compression
scheme and level), so it can be written before the first record and a pack
of the same records is byte-identical no matter how it was produced --
which is what lets ``merge`` prove itself against a direct pack.  Counts
and the block index live in the index document at the tail, where a
single-pass streaming writer can put them.

Each index entry is ``[first_key, last_key, offset, comp_len, raw_len,
crc32, n_records]``: first/last keys make point lookups a binary search
that skips blocks without decompressing them, and the per-block CRC is over
the *compressed* bytes so damage is caught before inflating garbage.

Inside a decompressed block, records are length-prefixed::

    u16 key_len | key (ASCII) | u32 payload_len | payload

Keys are strictly ascending across the whole pack (the cache keys this
format exists for are 64-char SHA-256 hex strings, but any ASCII string up
to 64 KiB works); a duplicate key is only legal when its payload is
byte-identical, which is the dedup/conflict rule ``merge`` relies on.

Integrity coverage is total: every byte before the fingerprint field is
covered by the SHA-256, a flip inside the stored fingerprint itself fails
the fingerprint comparison, and a flip in the trailing magic fails the
end-marker check -- so ``verify`` catches any single-byte corruption, and
the CRC ladder (header, index, per-block) localises it.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

MAGIC = b"FRPACK\x00\x01"
MAGIC_END = b"FRPKEND\n"
FORMAT_VERSION = 1
COMPRESSION = "zlib"

#: Default zlib level: 6 is zlib's own default, the usual speed/size knee.
DEFAULT_LEVEL = 6
#: Default uncompressed block size target.  Result payloads run 1-4 KiB, so
#: this packs tens of records per block: large enough to compress well,
#: small enough that a point read inflates only a sliver of the file.
DEFAULT_BLOCK_BYTES = 64 * 1024

_U32 = struct.Struct(">I")
_KEY_LEN = struct.Struct(">H")
_FOOTER = struct.Struct(">QQI32s8s")
FOOTER_SIZE = _FOOTER.size  # 60
#: Bytes of the footer covered by the fingerprint (everything before it).
FOOTER_FINGERPRINTED = 20

#: Upper bound on the header document; anything larger is not a pack.
MAX_HEADER_BYTES = 1 << 20


# ------------------------------------------------------------------- errors
class StoreError(Exception):
    """Base class of every packed-store failure."""


class StoreFormatError(StoreError):
    """The file is not a pack, or uses a newer format than supported."""


class StoreCorruptionError(StoreError):
    """An integrity check failed: the bytes cannot be trusted."""


class StoreConflictError(StoreError):
    """The same cache key appeared with two different payloads."""

    def __init__(self, key: str, detail: str = "") -> None:
        self.key = key
        message = f"conflicting payloads for key {key}"
        super().__init__(f"{message}: {detail}" if detail else message)


# -------------------------------------------------------------- block index
@dataclass(frozen=True)
class BlockEntry:
    """One row of the block index."""

    first_key: str
    last_key: str
    offset: int
    comp_len: int
    raw_len: int
    crc: int
    n_records: int

    def to_row(self) -> List:
        return [
            self.first_key,
            self.last_key,
            self.offset,
            self.comp_len,
            self.raw_len,
            self.crc,
            self.n_records,
        ]

    @classmethod
    def from_row(cls, row: Sequence) -> "BlockEntry":
        if len(row) != 7:
            raise StoreCorruptionError(f"malformed index row: {row!r}")
        first_key, last_key, offset, comp_len, raw_len, crc, n_records = row
        if not (isinstance(first_key, str) and isinstance(last_key, str)):
            raise StoreCorruptionError(f"malformed index row keys: {row!r}")
        try:
            return cls(
                first_key=first_key,
                last_key=last_key,
                offset=int(offset),
                comp_len=int(comp_len),
                raw_len=int(raw_len),
                crc=int(crc),
                n_records=int(n_records),
            )
        except (TypeError, ValueError):
            raise StoreCorruptionError(f"malformed index row: {row!r}") from None


# ----------------------------------------------------------- record framing
def encode_records(records: Sequence[Tuple[str, bytes]]) -> bytes:
    """Frame ``(key, payload)`` records into one raw (uncompressed) block."""
    parts: List[bytes] = []
    for key, payload in records:
        encoded_key = key.encode("ascii")
        parts.append(_KEY_LEN.pack(len(encoded_key)))
        parts.append(encoded_key)
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_records(raw: bytes) -> List[Tuple[str, bytes]]:
    """Invert :func:`encode_records`; truncation or garbage raises."""
    records: List[Tuple[str, bytes]] = []
    view = memoryview(raw)
    position = 0
    total = len(raw)
    while position < total:
        if position + _KEY_LEN.size > total:
            raise StoreCorruptionError("truncated record: key length cut off")
        (key_len,) = _KEY_LEN.unpack_from(view, position)
        position += _KEY_LEN.size
        if position + key_len + _U32.size > total:
            raise StoreCorruptionError("truncated record: key or payload length cut off")
        try:
            key = bytes(view[position : position + key_len]).decode("ascii")
        except UnicodeDecodeError:
            raise StoreCorruptionError("record key is not ASCII") from None
        position += key_len
        (payload_len,) = _U32.unpack_from(view, position)
        position += _U32.size
        if position + payload_len > total:
            raise StoreCorruptionError("truncated record: payload cut off")
        records.append((key, bytes(view[position : position + payload_len])))
        position += payload_len
    return records


# --------------------------------------------------------- header and index
def header_document(level: int, cache_format_version: int) -> dict:
    """The static metadata document written at the front of every pack."""
    return {
        "cache_format_version": int(cache_format_version),
        "compression": COMPRESSION,
        "format": "frpack",
        "format_version": FORMAT_VERSION,
        "level": int(level),
    }


def encode_preamble(level: int, cache_format_version: int) -> bytes:
    """MAGIC + length-prefixed header JSON + header CRC, ready to write."""
    header = json.dumps(
        header_document(level, cache_format_version), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return MAGIC + _U32.pack(len(header)) + header + _U32.pack(zlib.crc32(header))


def decode_preamble(data: bytes) -> Tuple[dict, int]:
    """Parse and integrity-check the preamble of ``data``.

    Returns ``(header document, offset of the first block)``.  Raises
    :class:`StoreFormatError` for not-a-pack/unsupported-version and
    :class:`StoreCorruptionError` for a failed CRC or unparseable header.
    """
    if len(data) < len(MAGIC) + _U32.size:
        raise StoreFormatError("file too short to be a pack")
    if data[: len(MAGIC) - 1] != MAGIC[:-1]:
        raise StoreFormatError("bad magic: not an .frpack file")
    if data[len(MAGIC) - 1] != MAGIC[-1]:
        raise StoreFormatError(
            f"unsupported container version {data[len(MAGIC) - 1]} (supported: {MAGIC[-1]})"
        )
    (header_len,) = _U32.unpack_from(data, len(MAGIC))
    if header_len > MAX_HEADER_BYTES:
        raise StoreCorruptionError(f"implausible header length {header_len}")
    header_start = len(MAGIC) + _U32.size
    header_end = header_start + header_len
    if len(data) < header_end + _U32.size:
        raise StoreCorruptionError("truncated header")
    header_bytes = data[header_start:header_end]
    (stored_crc,) = _U32.unpack_from(data, header_end)
    actual_crc = zlib.crc32(header_bytes)
    if stored_crc != actual_crc:
        raise StoreCorruptionError(
            f"header CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise StoreCorruptionError("header is not valid JSON") from None
    if not isinstance(header, dict) or header.get("format") != "frpack":
        raise StoreFormatError("header does not describe an frpack file")
    if int(header.get("format_version", -1)) > FORMAT_VERSION:
        raise StoreFormatError(
            f"pack format version {header.get('format_version')} is newer than "
            f"supported ({FORMAT_VERSION})"
        )
    if header.get("compression") != COMPRESSION:
        raise StoreFormatError(f"unsupported compression {header.get('compression')!r}")
    return header, header_end + _U32.size


def encode_index(entries: Sequence[BlockEntry], record_count: int) -> bytes:
    """The index document: block table plus total record count."""
    document = {
        "blocks": [entry.to_row() for entry in entries],
        "record_count": int(record_count),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_index(data: bytes) -> Tuple[List[BlockEntry], int]:
    """Invert :func:`encode_index` (CRC checking is the caller's job)."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise StoreCorruptionError("index is not valid JSON") from None
    if not isinstance(document, dict) or "blocks" not in document:
        raise StoreCorruptionError("index document lacks a block table")
    entries = [BlockEntry.from_row(row) for row in document["blocks"]]
    try:
        record_count = int(document["record_count"])
    except (KeyError, TypeError, ValueError):
        raise StoreCorruptionError("index document lacks a record count") from None
    return entries, record_count


def encode_footer_prefix(index_offset: int, index_len: int, index_crc: int) -> bytes:
    """The fingerprint-covered first 20 bytes of the footer."""
    return struct.pack(">QQI", index_offset, index_len, index_crc)


def decode_footer(data: bytes) -> Tuple[int, int, int, bytes]:
    """Parse the 60-byte footer: ``(index_offset, index_len, index_crc,
    fingerprint)``.  The trailing magic is checked here."""
    if len(data) != FOOTER_SIZE:
        raise StoreCorruptionError(f"footer must be {FOOTER_SIZE} bytes, got {len(data)}")
    index_offset, index_len, index_crc, fingerprint, magic_end = _FOOTER.unpack(data)
    if magic_end != MAGIC_END:
        raise StoreCorruptionError("bad end marker: truncated or overwritten pack")
    return index_offset, index_len, index_crc, fingerprint
