"""Merging ``.frpack`` shards into one pack.

A distributed campaign produces one pack per shard; :func:`merge_packs`
unions them into a single artifact with a k-way heap merge over the
shards' sorted record streams.  Dedup and conflict detection fall out of
the writer's ordering rule: when the same cache key surfaces from two
shards, identical payloads collapse to one record and differing payloads
raise :class:`~repro.store.format.StoreConflictError` -- a determinism
violation worth stopping the presses for, since two machines claiming the
same measurement cell must have produced byte-identical results.

Because the writer is deterministic, merging N shards yields a pack
byte-identical to packing all the records directly with the same
compression parameters -- the property the round-trip tests pin down.
"""

from __future__ import annotations

import heapq
from contextlib import ExitStack
from typing import Optional, Sequence

from repro.store.format import DEFAULT_BLOCK_BYTES, DEFAULT_LEVEL
from repro.store.reader import PackReader
from repro.store.writer import PackSummary, PackWriter


def merge_packs(
    out_path: str,
    sources: Sequence[str],
    level: int = DEFAULT_LEVEL,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    block_records: Optional[int] = None,
) -> PackSummary:
    """Union N shard packs into ``out_path``; see the module docstring."""
    if not sources:
        raise ValueError("merge needs at least one source pack")
    with ExitStack() as stack:
        readers = [stack.enter_context(PackReader(source)) for source in sources]
        writer = stack.enter_context(
            PackWriter(out_path, level=level, block_bytes=block_bytes, block_records=block_records)
        )
        for key, payload in heapq.merge(*readers, key=lambda record: record[0]):
            writer.add(key, payload)
    return writer.summary
