"""Determinism-hazard rules: wall clock, ambient entropy, set-order leaks.

The paper's complaint is *unstated nondeterminism*; this repo's physics run
entirely on a virtual clock and explicitly-seeded ``random.Random``
instances.  These rules ban the leak paths back to ambient state:

* **DET001** -- wall-clock / entropy APIs (``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*``, ...).  Any of these makes a
  measurement depend on when or where it ran.
* **DET002** -- the module-level ``random.*`` functions.  They draw from one
  hidden process-global generator, so results depend on every other draw in
  the process; only explicit ``random.Random(seed)`` instances are allowed.
* **DET003** -- iterating a ``set``/``frozenset`` where order can escape.
  Set iteration order is randomized across interpreter runs (string hash
  randomization), so a loop over a set that appends, writes, charges costs
  or builds a list is a run-to-run divergence waiting to happen.  Iteration
  is fine when the consumer is order-insensitive (``sorted``, ``sum``,
  ``min``/``max``, ``any``/``all``, building another set).
* **DET004** -- ``id()``.  CPython ids are addresses: keying, sorting or
  branching on them imports allocator state into the measurement.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterator, Optional, Set

from repro.lint.base import Rule, register_rule
from repro.lint.config import LintConfig
from repro.lint.model import Finding, ModuleInfo, ProjectIndex, parent_of

#: Fully-qualified callables whose results depend on wall-clock time or
#: ambient entropy.  ``secrets.`` is matched as a prefix.
WALL_CLOCK_AND_ENTROPY = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

ENTROPY_PREFIXES = ("secrets.",)

#: Consumers for which iteration order provably cannot escape.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)

#: Calls that materialise their argument's iteration order.
ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})


def _import_bindings(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted import they stand for.

    ``import time`` -> ``{"time": "time"}``; ``from datetime import datetime``
    -> ``{"datetime": "datetime.datetime"}``; aliases follow the alias.
    """
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bindings[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return bindings


def _resolve_call_name(node: ast.AST, bindings: Dict[str, str]) -> Optional[str]:
    """Dotted name of a called expression with imports resolved."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = bindings.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _enclosing_symbol(node: ast.AST) -> str:
    """``Class.method`` / ``function`` / ``<module>`` context of a node."""
    names = []
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(current.name)
        current = parent_of(current)
    return ".".join(reversed(names)) if names else "<module>"


def _module_allowed(module: ModuleInfo, patterns) -> bool:
    return any(
        fnmatch(module.rel, pattern) or fnmatch(module.rel, f"*/{pattern}")
        for pattern in patterns
    )


@register_rule
class WallClockRule(Rule):
    """No wall-clock or entropy API inside the simulation tree."""

    rule_id = "DET001"
    contract = (
        "no wall-clock/entropy API (time.time, datetime.now, os.urandom, "
        "uuid.uuid4, secrets.*) outside the configured allowlist"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for module in index.modules:
            if _module_allowed(module, config.determinism_allow):
                continue
            bindings = _import_bindings(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _resolve_call_name(node.func, bindings)
                if name is None:
                    continue
                if name in WALL_CLOCK_AND_ENTROPY or name.startswith(ENTROPY_PREFIXES):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{_enclosing_symbol(node)}",
                        f"call to {name}() makes results depend on wall-clock "
                        "time or ambient entropy",
                        hint="charge the virtual clock / derive from the run's seed; "
                        "or allowlist this file under [rules.determinism] allow",
                    )


@register_rule
class GlobalRandomRule(Rule):
    """Only explicit ``random.Random(seed)`` instances; never the module API."""

    rule_id = "DET002"
    contract = (
        "no module-level random.* calls: all randomness flows from explicit, "
        "seeded random.Random instances"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for module in index.modules:
            if _module_allowed(module, config.determinism_allow):
                continue
            bindings = _import_bindings(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _resolve_call_name(node.func, bindings)
                if name is None or not name.startswith("random."):
                    continue
                tail = name.split(".", 1)[1]
                if tail in ("Random", "SystemRandom"):
                    # Random(seed) is the sanctioned construction;
                    # SystemRandom is DET001's finding, not a double report.
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"{_enclosing_symbol(node)}",
                    f"call to {name}() draws from the hidden process-global "
                    "generator; results then depend on every other draw",
                    hint="thread an explicit random.Random(seed) instance through",
                )


class _SetTypes:
    """Per-module inference of which names/attributes hold sets."""

    def __init__(self, module: ModuleInfo) -> None:
        self.self_attrs: Dict[str, Set[str]] = {}  # class name -> set attrs
        self._collect(module.tree)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        text = ast.dump(annotation)
        return any(
            marker in text
            for marker in ("'Set'", "'set'", "'FrozenSet'", "'frozenset'", "'AbstractSet'")
        )

    def _is_set_literalish(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                attrs = self.self_attrs.setdefault(node.name, set())
                for sub in ast.walk(node):
                    target = None
                    value: Optional[ast.AST] = None
                    annotation = None
                    if isinstance(sub, ast.AnnAssign):
                        target, value, annotation = sub.target, sub.value, sub.annotation
                    elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target, value = sub.targets[0], sub.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if (annotation is not None and self._is_set_annotation(annotation)) or (
                            value is not None and self._is_set_literalish(value)
                        ):
                            attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Stored on the node itself (like the parent links) so the
                # lookup never keys a dict by object identity.
                names: Set[str] = set()
                node.lint_set_locals = names  # type: ignore[attr-defined]
                arguments = node.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    if arg.annotation is not None and self._is_set_annotation(
                        arg.annotation
                    ):
                        names.add(arg.arg)
                for sub in node.body:
                    for stmt in ast.walk(sub):
                        target = None
                        value = None
                        annotation = None
                        if isinstance(stmt, ast.AnnAssign):
                            target, value, annotation = stmt.target, stmt.value, stmt.annotation
                        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                            target, value = stmt.targets[0], stmt.value
                        if isinstance(target, ast.Name):
                            if (
                                annotation is not None and self._is_set_annotation(annotation)
                            ) or (value is not None and self._is_set_literalish(value)):
                                names.add(target.id)

    # ---------------------------------------------------------------- query
    def _enclosing(self, node: ast.AST):
        func = None
        cls = None
        current = parent_of(node)
        while current is not None:
            if func is None and isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = current
            if cls is None and isinstance(current, ast.ClassDef):
                cls = current
            current = parent_of(current)
        return func, cls

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            # s.difference(...), s.union(...): still a set if the receiver is.
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "difference",
                "union",
                "intersection",
                "symmetric_difference",
                "copy",
            ):
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.Name):
            func, _ = self._enclosing(node)
            return func is not None and node.id in getattr(func, "lint_set_locals", ())
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            _, cls = self._enclosing(node)
            return cls is not None and node.attr in self.self_attrs.get(cls.name, set())
        return False


def _comprehension_consumer(node: ast.AST) -> Optional[str]:
    """Name of the call directly consuming a comprehension/genexp, if any."""
    parent = parent_of(node)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        if node in parent.args:
            return parent.func.id
    return None


@register_rule
class SetIterationRule(Rule):
    """Set iteration order must not escape into ordering-sensitive code."""

    rule_id = "DET003"
    contract = (
        "no iteration over set/frozenset values where order can escape "
        "(hash randomization makes it differ across interpreter runs)"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for module in index.modules:
            if _module_allowed(module, config.determinism_allow):
                continue
            types = _SetTypes(module)
            for node in ast.walk(module.tree):
                yield from self._check_node(module, types, node)

    def _check_node(self, module, types: _SetTypes, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.For) and types.is_set_expr(node.iter):
            yield self._finding(module, node.iter, "for-loop body")
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            # A set comprehension rebuilds a set: order cannot escape it.
            consumer = _comprehension_consumer(node)
            if consumer in ORDER_INSENSITIVE_CONSUMERS:
                return
            for generator in node.generators:
                if types.is_set_expr(generator.iter):
                    what = {
                        ast.ListComp: "list comprehension",
                        ast.DictComp: "dict comprehension",
                        ast.GeneratorExp: f"generator consumed by {consumer or 'unknown code'}",
                    }[type(node)]
                    yield self._finding(module, generator.iter, what)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ORDER_MATERIALIZERS
            and node.args
            and types.is_set_expr(node.args[0])
        ):
            yield self._finding(module, node.args[0], f"{node.func.id}()")

    def _finding(self, module, node: ast.AST, sink: str) -> Finding:
        return self.finding(
            module,
            node.lineno,
            _enclosing_symbol(node),
            f"iteration over a set feeds {sink}; set order is randomized "
            "across interpreter runs",
            hint="wrap the set in sorted(...) (or restructure so only "
            "order-insensitive reductions see it)",
        )


@register_rule
class IdKeyRule(Rule):
    """``id()`` results (memory addresses) must not enter the computation."""

    rule_id = "DET004"
    contract = "no use of id(): object addresses vary across runs and processes"

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for module in index.modules:
            if _module_allowed(module, config.determinism_allow):
                continue
            shadowed = {
                target.id
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Assign)
                for target in node.targets
                if isinstance(target, ast.Name) and target.id == "id"
            }
            if "id" in shadowed:
                continue  # a local rebinding; not the builtin
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        _enclosing_symbol(node),
                        "id() returns a memory address: keying or ordering by it "
                        "imports allocator state into the result",
                        hint="key by a stable identity (name, number, explicit counter)",
                    )
