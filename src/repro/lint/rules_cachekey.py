"""Cache-key hygiene: every ``BenchmarkConfig`` field has decided semantics.

:func:`repro.core.parallel.cache_key` treats a cache hit as *exactly as
trustworthy as a fresh measurement*, which is only sound if every
configuration field that can change a measurement reaches the hashed
payload.  The failure mode is additive: someone grows ``BenchmarkConfig`` by
a field, the canonicaliser picks it up automatically -- unless they also
copy the normalise/strip pattern for it, in which case nothing checks that
the choice was deliberate.  KEY001 makes the choice explicit: each field
must be classified in ``lint.toml`` (``[rules.cache-key]``) into exactly one
bucket, and the classification must agree with what ``cache_key()``'s code
actually does:

* ``keyed`` -- hashed into the payload untouched (physics inputs);
* ``normalized`` -- canonicalised away via ``replace(config, field=...)``
  (``seed``, ``repetitions``: the key identifies the *cell*, not the rep);
* ``stripped`` -- popped from the payload (``trace`` is observability, not
  physics; ``clients`` is re-keyed at top level only when > 1 to keep old
  single-client keys valid).

An unclassified field, a stale classification, or a mismatch between the
documented bucket and the code is each a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.base import Rule, register_rule
from repro.lint.config import LintConfig
from repro.lint.model import (
    ClassInfo,
    Finding,
    ModuleInfo,
    ProjectIndex,
    _dotted_tail,
    parent_of,
)

#: The dataclass whose fields the rule audits and the function that keys it.
CONFIG_CLASS = "BenchmarkConfig"
KEY_FUNCTION = "cache_key"


def _find_function(
    index: ProjectIndex, name: str
) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
    matches: List[Tuple[ModuleInfo, ast.FunctionDef]] = []
    for module in index.modules:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                matches.append((module, node))
    return matches[0] if len(matches) == 1 else None


def _replace_kwargs(func: ast.FunctionDef) -> Set[str]:
    """Keyword names of any ``replace(config, ...)``-style call in ``func``."""
    kwargs: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "replace"
        ):
            kwargs.update(kw.arg for kw in node.keywords if kw.arg is not None)
    return kwargs


def _pop_literals(func: ast.FunctionDef) -> Set[str]:
    """String literals passed to ``<payload>.pop("...")`` calls in ``func``."""
    popped: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            popped.add(node.args[0].value)
    return popped


@register_rule
class CacheKeyHygieneRule(Rule):
    """``BenchmarkConfig`` fields vs the documented cache-key classification."""

    rule_id = "KEY001"
    contract = (
        "every BenchmarkConfig field is classified keyed/normalized/stripped "
        "in lint.toml, and cache_key() implements that classification"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        config_class = index.find_class(CONFIG_CLASS)
        if config_class is None:
            return  # partial tree (fixtures/tests) without the config class
        fields = config_class.annotated_field_names()
        buckets = config.cache_key_buckets
        classified = {}
        for bucket, names in sorted(buckets.items()):
            for name in names:
                classified.setdefault(name, []).append(bucket)

        for name in fields:
            owners = classified.get(name, [])
            if not owners:
                yield self._field_finding(
                    config_class,
                    name,
                    f"BenchmarkConfig.{name} is not classified in the cache-key "
                    "contract (keyed / normalized / stripped)",
                    hint="decide its key semantics and add it to the matching "
                    "bucket under [rules.cache-key] in lint.toml",
                )
            elif len(owners) > 1:
                yield self._field_finding(
                    config_class,
                    name,
                    f"BenchmarkConfig.{name} is classified in multiple cache-key "
                    f"buckets ({', '.join(owners)})",
                    hint="a field has exactly one key semantics; keep one bucket",
                )
        for name, owners in sorted(classified.items()):
            if name not in fields:
                yield self._field_finding(
                    config_class,
                    name,
                    f"cache-key bucket '{owners[0]}' names '{name}', which is "
                    "not a BenchmarkConfig field",
                    hint="remove the stale entry from [rules.cache-key]",
                )

        located = _find_function(index, KEY_FUNCTION)
        if located is None:
            return  # partial tree without the key function
        module, func = located
        normalized_in_code = _replace_kwargs(func) & set(fields)
        stripped_in_code = _pop_literals(func) & set(fields)

        for name in fields:
            owners = classified.get(name, [])
            bucket = owners[0] if len(owners) == 1 else None
            if bucket == "normalized" and name not in normalized_in_code:
                yield self._code_finding(
                    module,
                    func,
                    name,
                    f"'{name}' is documented as normalized but cache_key() does "
                    "not rewrite it via replace(config, ...)",
                )
            elif bucket == "stripped" and name not in stripped_in_code:
                yield self._code_finding(
                    module,
                    func,
                    name,
                    f"'{name}' is documented as stripped but cache_key() does "
                    "not pop it from the payload",
                )
            elif bucket == "keyed" and (
                name in normalized_in_code or name in stripped_in_code
            ):
                yield self._code_finding(
                    module,
                    func,
                    name,
                    f"'{name}' is documented as keyed but cache_key() rewrites "
                    "or strips it, so it never reaches the hash",
                )

    # ------------------------------------------------------------- helpers
    def _field_finding(
        self, config_class: ClassInfo, name: str, message: str, hint: str
    ) -> Finding:
        line = config_class.class_attrs.get(name, config_class.node.lineno)
        return self.finding(
            config_class.module,
            line,
            f"{CONFIG_CLASS}.{name}",
            message,
            hint=hint,
        )

    def _code_finding(
        self, module: ModuleInfo, func: ast.FunctionDef, name: str, message: str
    ) -> Finding:
        return self.finding(
            module,
            func.lineno,
            f"{KEY_FUNCTION}.{name}",
            message,
            hint="make the code and the [rules.cache-key] classification agree "
            "(and bump CACHE_FORMAT_VERSION if key contents change)",
        )


#: The module allowed to encode result documents, and its encoder functions.
CANONICAL_MODULE_SUFFIX = "core/persistence.py"
RESULT_ENCODERS = ("run_result_to_dict", "repetition_set_to_dict", "sweep_to_dict")
WRAP_FUNCTION = "_wrap"
SERIALIZERS = ("dump", "dumps")


def _enclosing_serializer_call(node: ast.AST) -> Optional[ast.Call]:
    """The nearest ancestor ``*.dump(s)(...)`` call of ``node``, if any."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, ast.Call) and _dotted_tail(current.func) in SERIALIZERS:
            return current
        current = parent_of(current)
    return None


@register_rule
class CanonicalEncoderRule(Rule):
    """Result payloads are encoded by ``core/persistence`` alone.

    The packed store's dedup/conflict rule (and ``explain``'s bit-identity
    check) only hold if every byte encoding of a run is produced by *one*
    encoder -- ``canonical_run_payload`` / ``save_run_result`` in
    :mod:`repro.core.persistence`.  A second serialization path (calling
    ``json.dumps`` on ``run_result_to_dict(...)`` output directly, or
    reaching for the private ``_wrap``) can differ in separators, key order
    or wrapping and will split one measurement into two
    "conflicting" payloads.  KEY002 flags both patterns anywhere outside
    the persistence module itself.
    """

    rule_id = "KEY002"
    contract = (
        "cache/result payloads are serialized only by the canonical encoder "
        "in repro.core.persistence, never re-encoded ad hoc"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for module in index.modules:
            if module.rel.endswith(CANONICAL_MODULE_SUFFIX):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                tail = _dotted_tail(node.func)
                if tail == WRAP_FUNCTION and isinstance(
                    node.func, (ast.Name, ast.Attribute)
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        tail,
                        "calls the persistence layer's private _wrap(): result "
                        "documents must be produced by its public encoders",
                        hint="use canonical_run_payload/save_run_result (or the "
                        "matching save_* function) from repro.core.persistence",
                    )
                elif tail in RESULT_ENCODERS:
                    serializer = _enclosing_serializer_call(node)
                    if serializer is None:
                        continue  # in-memory use (e.g. dict equality) is fine
                    yield self.finding(
                        module,
                        node.lineno,
                        tail,
                        f"serializes {tail}() output with "
                        f"{_dotted_tail(serializer.func)}() instead of the "
                        "canonical encoder, so the bytes can drift from every "
                        "other copy of the same measurement",
                        hint="encode through canonical_run_payload/save_run_result "
                        "in repro.core.persistence; byte-level dedup and "
                        "bit-identity checks depend on a single encoder",
                    )
