"""Snapshot-completeness rules: exported state must cover mutable state.

:func:`repro.aging.snapshot.snapshot_stack` serialises the stack by asking
each stateful layer for its ``export_state()`` (or, for allocators,
``export_free_state()``) document.  The golden-hash tests prove that a
*particular* snapshot round-trips bit-identically; these rules prove the
structural half the hashes cannot: that every mutable attribute a
participating class creates in ``__init__`` is either part of its
export/restore pair or explicitly annotated ``# lint: ephemeral``.

Without this check, adding ``self._new_cursor = 0`` to the FTL (say) and
forgetting the export hook silently reintroduces the paper's hidden state:
snapshots of two differently-used devices would compare equal and share a
cache key while behaving differently.

* **SNAP001** -- for every class whose MRO defines an export/restore pair,
  each mutable ``__init__``-assigned attribute (transitively through
  ``self._init_*()`` helpers and ``super().__init__``) must be referenced in
  the export or restore body, or carry ``# lint: ephemeral``.
* **SNAP002** -- the classes ``snapshot_stack`` relies on (configured under
  ``[rules.snapshot] required``) must actually define the pair; a rename or
  refactor cannot silently drop a layer out of the contract.

"Mutable" is decided statically: the attribute is re-assigned in some other
method, or its initial value is a mutable container (literal, comprehension,
``list``/``dict``/``set``/``bytearray``/``deque`` call, or a list-building
``+``/``*`` expression).  Plain config scalars assigned once from
constructor parameters are not state and are skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Rule, register_rule
from repro.lint.config import LintConfig
from repro.lint.model import ClassInfo, Finding, ProjectIndex

#: Recognised export/restore method pairs, in precedence order.
STATE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("export_state", "restore_state"),
    ("export_free_state", "restore_free_state"),
)

MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)


@dataclass
class _AttrOrigin:
    """Where an ``__init__``-path attribute assignment happened."""

    owner: ClassInfo
    lineno: int
    value: Optional[ast.AST]


def _is_mutable_container(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CONSTRUCTORS
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mult)):
        return _is_mutable_container(node.left) or _is_mutable_container(node.right)
    return False


def _self_attr_assignments(func: ast.FunctionDef) -> List[Tuple[str, int, Optional[ast.AST]]]:
    out: List[Tuple[str, int, Optional[ast.AST]]] = []
    for node in ast.walk(func):
        targets: List[Tuple[ast.expr, Optional[ast.AST]]] = []
        if isinstance(node, ast.Assign):
            targets = [(target, node.value) for target in node.targets]
        elif isinstance(node, ast.AnnAssign):
            targets = [(node.target, node.value)]
        elif isinstance(node, ast.AugAssign):
            targets = [(node.target, None)]
        for target, value in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append((target.attr, node.lineno, value))
    return out


def _self_method_calls(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.<method>()`` calls made anywhere in ``func``."""
    calls: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def _self_attr_references(func: ast.FunctionDef) -> Set[str]:
    """Every ``self.<attr>`` read or written in ``func``."""
    refs: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            refs.add(node.attr)
    return refs


class _ClassStateModel:
    """Init-path attribute map and export coverage for one participant."""

    def __init__(self, index: ProjectIndex, info: ClassInfo, pair: Tuple[str, str]) -> None:
        self.index = index
        self.info = info
        self.pair = pair
        self.mro = index.mro(info)
        self.init_attrs: Dict[str, _AttrOrigin] = {}
        self.init_method_names: Set[str] = set()
        self.reassigned_elsewhere: Set[str] = set()
        self.covered: Set[str] = set()
        self._build()

    # ------------------------------------------------------------ building
    def _init_chain(self) -> List[Tuple[ClassInfo, ast.FunctionDef]]:
        """Every ``__init__`` in the MRO plus the ``self._helper()`` methods
        those inits call (the FTL's ``_init_mapping`` pattern)."""
        chain: List[Tuple[ClassInfo, ast.FunctionDef]] = []
        visited: Set[Tuple[str, str]] = set()
        queue: List[Tuple[ClassInfo, str]] = [
            (owner, "__init__") for owner in self.mro if "__init__" in owner.methods
        ]
        while queue:
            owner, method_name = queue.pop(0)
            key = (owner.name, method_name)
            if key in visited:
                continue
            visited.add(key)
            func = owner.methods.get(method_name)
            if func is None:
                continue
            chain.append((owner, func))
            for called in sorted(_self_method_calls(func)):
                target = self._resolve_method_owner(called)
                if target is not None:
                    queue.append((target, called))
        return chain

    def _resolve_method_owner(self, method_name: str) -> Optional[ClassInfo]:
        for owner in self.mro:
            if method_name in owner.methods:
                return owner
        return None

    def _build(self) -> None:
        chain = self._init_chain()
        self.init_method_names = {func.name for _, func in chain}
        for owner, func in chain:
            for attr, lineno, value in _self_attr_assignments(func):
                origin = self.init_attrs.get(attr)
                if origin is None or _is_mutable_container(value):
                    self.init_attrs[attr] = _AttrOrigin(owner=owner, lineno=lineno, value=value)

        export_name, restore_name = self.pair
        for owner in self.mro:
            for method_name, func in owner.methods.items():
                if method_name in (export_name, restore_name):
                    self.covered |= _self_attr_references(func)
                elif method_name not in self.init_method_names:
                    for attr, _, _ in _self_attr_assignments(func):
                        self.reassigned_elsewhere.add(attr)

    # ------------------------------------------------------------- queries
    def mutable_attrs(self) -> List[Tuple[str, _AttrOrigin]]:
        out = []
        for attr, origin in sorted(self.init_attrs.items()):
            if attr in self.reassigned_elsewhere or _is_mutable_container(origin.value):
                out.append((attr, origin))
        return out


def _state_pair_of(index: ProjectIndex, info: ClassInfo) -> Optional[Tuple[str, str]]:
    for export_name, restore_name in STATE_PAIRS:
        has_export = index.mro_defines_method(info, export_name) is not None
        has_restore = index.mro_defines_method(info, restore_name) is not None
        if has_export and has_restore:
            return (export_name, restore_name)
    return None


@register_rule
class SnapshotCompletenessRule(Rule):
    """Exported state covers every mutable ``__init__`` attribute."""

    rule_id = "SNAP001"
    contract = (
        "every mutable attribute a snapshot participant assigns on the "
        "__init__ path is referenced by its export/restore pair or marked "
        "# lint: ephemeral"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for info in index.iter_classes():
            pair = _state_pair_of(index, info)
            if pair is None:
                continue
            # Only report against classes that actually construct state; a
            # mixin holding just the pair has no __init__ path of its own.
            model = _ClassStateModel(index, info, pair)
            for attr, origin in model.mutable_attrs():
                if attr in model.covered:
                    continue
                if origin.owner.module.is_ephemeral(origin.lineno):
                    continue
                # Report on the most-derived class so one base-class miss
                # surfaces once per concrete participant that inherits it.
                yield self.finding(
                    origin.owner.module,
                    origin.lineno,
                    f"{info.name}.{attr}",
                    f"mutable attribute self.{attr} (assigned in "
                    f"{origin.owner.name}.{'/'.join(sorted(model.init_method_names))}) "
                    f"is not referenced by {pair[0]}/{pair[1]}",
                    hint="export it (and restore it), or annotate the assignment "
                    "with `# lint: ephemeral (reason)` if it is rebuilt or "
                    "observational",
                )


@register_rule
class SnapshotParticipationRule(Rule):
    """The layers ``snapshot_stack`` serialises must define the pair."""

    rule_id = "SNAP002"
    contract = (
        "every class named in [rules.snapshot] required defines an "
        "export/restore state pair"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for name in config.snapshot_required:
            candidates = index.find_classes(name)
            if not candidates:
                # Absent classes are only a violation when the scanned tree
                # is the one that declares them (partial scans in tests).
                continue
            for info in candidates:
                if _state_pair_of(index, info) is None:
                    yield self.finding(
                        info.module,
                        info.node.lineno,
                        info.name,
                        f"{name} participates in stack snapshots but defines no "
                        "export_state/restore_state (or export_free_state/"
                        "restore_free_state) pair",
                        hint="add the pair, or suppress with a reason naming where "
                        "its state is serialised instead",
                    )
