"""The analyzer's view of the source tree: parsed modules and a class index.

The lint rules (:mod:`repro.lint.rules_determinism` and friends) never touch
the filesystem or import the code under analysis -- importing would execute
module-level code and make the *linter* a hidden-state hazard of its own.
Instead they operate on a :class:`ProjectIndex`: every module parsed once
into an :class:`ast` tree (with parent back-links, which several rules need
to ask "what consumes this expression?"), plus a cross-module class index
that resolves base-class names so rules can reason over inheritance chains
(``FlashTranslationLayer`` inherits its ``stats`` attribute and tracer hooks
from ``DeviceModel`` two modules away).

Inline exemptions use ``# lint: ephemeral`` comments (see
:mod:`repro.lint.rules_snapshot`); the index records the lines carrying them
so rules can honour annotations without re-reading files.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Inline annotation marking an ``__init__``-assigned attribute as ephemeral
#: (recomputed, observational, or rebuilt from configuration), i.e. outside
#: the snapshot-completeness contract.  Free text after the marker documents
#: the why; the analyzer only requires the marker itself.
EPHEMERAL_MARKER = re.compile(r"#\s*lint:\s*ephemeral\b")


@dataclass(frozen=True)
class Finding:
    """One contract violation, pinned to a file, line and symbol.

    ``symbol`` is the stable identity suppressions match against (e.g.
    ``"PageCache.capacity_pages"`` or ``"VirtualClock"``); ``hint`` tells
    the reader how to fix or exempt the finding.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str
    hint: str = ""

    def location(self) -> str:
        """``file:line`` reference for tables and editors."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable key order)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
        }


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.lint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The syntactic parent of ``node`` (set at parse time), or ``None``."""
    return getattr(node, "lint_parent", None)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    rel: str  # project-relative posix path, the form findings report
    tree: ast.Module
    lines: List[str]
    ephemeral_lines: frozenset

    def is_ephemeral(self, lineno: int) -> bool:
        """True when ``lineno`` (or the line above it) carries the
        ``# lint: ephemeral`` annotation."""
        return lineno in self.ephemeral_lines or (lineno - 1) in self.ephemeral_lines

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class ClassInfo:
    """One class definition plus the context rules need around it."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    base_names: Tuple[str, ...]
    decorator_names: Tuple[str, ...]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    class_attrs: Dict[str, int] = field(default_factory=dict)  # name -> lineno

    @property
    def is_dataclass(self) -> bool:
        return "dataclass" in self.decorator_names

    @property
    def is_frozen_dataclass(self) -> bool:
        if not self.is_dataclass:
            return False
        for decorator in self.node.decorator_list:
            if isinstance(decorator, ast.Call) and _dotted_tail(decorator.func) == "dataclass":
                for kw in decorator.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                        return bool(kw.value.value)
        return False

    def annotated_field_names(self) -> List[str]:
        """Names of annotated class-body assignments, i.e. dataclass fields."""
        names: List[str] = []
        for statement in self.node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                annotation = ast.dump(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                names.append(statement.target.id)
        return names


def _dotted_tail(node: ast.AST) -> str:
    """Last path component of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _dotted_tail(node.func)
    return ""


def dotted_name(node: ast.AST) -> Optional[str]:
    """Full dotted form of a Name/Attribute chain, or ``None`` if dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class ProjectIndex:
    """Every module under one root, parsed, plus a name -> class index."""

    def __init__(self, root: Path, project_root: Optional[Path] = None) -> None:
        self.root = Path(root)
        self.project_root = Path(project_root) if project_root is not None else self.root
        self.modules: List[ModuleInfo] = []
        self.errors: List[Finding] = []
        self._classes: Dict[str, List[ClassInfo]] = {}
        self._load()

    # ------------------------------------------------------------- loading
    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.project_root).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as error:
                self.errors.append(
                    Finding(
                        rule="LINT000",
                        path=rel,
                        line=getattr(error, "lineno", 1) or 1,
                        symbol=path.stem,
                        message=f"cannot parse module: {error}",
                        hint="fix the syntax error; the analyzer needs a valid AST",
                    )
                )
                continue
            _link_parents(tree)
            lines = source.splitlines()
            ephemeral = frozenset(
                number for number, text in enumerate(lines, start=1) if EPHEMERAL_MARKER.search(text)
            )
            module = ModuleInfo(
                path=path, rel=rel, tree=tree, lines=lines, ephemeral_lines=ephemeral
            )
            self.modules.append(module)
            self._index_classes(module)

    def _index_classes(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(
                name=node.name,
                module=module,
                node=node,
                base_names=tuple(
                    name for name in (_dotted_tail(base) for base in node.bases) if name
                ),
                decorator_names=tuple(
                    name
                    for name in (_dotted_tail(decorator) for decorator in node.decorator_list)
                    if name
                ),
            )
            for statement in node.body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[statement.name] = statement  # type: ignore[assignment]
                elif isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            info.class_attrs[target.id] = statement.lineno
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    info.class_attrs[statement.target.id] = statement.lineno
            self._classes.setdefault(node.name, []).append(info)

    # ------------------------------------------------------------- queries
    def iter_classes(self) -> Iterator[ClassInfo]:
        for name in sorted(self._classes):
            yield from self._classes[name]

    def find_classes(self, name: str) -> List[ClassInfo]:
        return list(self._classes.get(name, []))

    def find_class(self, name: str, near: Optional[ModuleInfo] = None) -> Optional[ClassInfo]:
        """The class called ``name``: same-module definitions win, then a
        unique project-wide definition; ambiguity resolves to ``None``."""
        candidates = self._classes.get(name, [])
        if near is not None:
            local = [info for info in candidates if info.module is near]
            if len(local) == 1:
                return local[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def find_module(self, rel_suffix: str) -> Optional[ModuleInfo]:
        """The module whose project-relative path ends with ``rel_suffix``."""
        matches = [
            module for module in self.modules if module.rel.endswith(rel_suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def mro(self, info: ClassInfo) -> List[ClassInfo]:
        """``info`` plus every statically-resolvable ancestor, nearest first.

        Plain depth-first resolution (no C3): the analyzed tree uses single
        inheritance plus mixins, where DFS and C3 agree on membership, which
        is all the rules ask ("does any ancestor define X?").
        """
        seen: List[ClassInfo] = []
        stack = [info]
        while stack:
            current = stack.pop(0)
            if any(existing is current for existing in seen):
                continue
            seen.append(current)
            for base_name in current.base_names:
                base = self.find_class(base_name, near=current.module)
                if base is not None:
                    stack.append(base)
        return seen

    def mro_defines_method(self, info: ClassInfo, method: str) -> Optional[ClassInfo]:
        for ancestor in self.mro(info):
            if method in ancestor.methods:
                return ancestor
        return None

    def mro_defines_attr(self, info: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """The nearest class in the MRO with ``attr`` as a class-level
        assignment, a method/property of that name, or a ``self.attr``
        assignment in ``__init__``."""
        for ancestor in self.mro(info):
            if attr in ancestor.class_attrs or attr in ancestor.methods:
                return ancestor
            init = ancestor.methods.get("__init__")
            if init is not None and attr in _self_assigned_names(init):
                return ancestor
        return None


def _self_assigned_names(func: ast.FunctionDef) -> List[str]:
    names: List[str] = []
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.append(target.attr)
    return names
