"""Protocol-conformance rules: registries and stats holders honour the
surfaces the observability layer wires blindly.

``StorageStack.metrics_registry()`` registers every layer's ``stats`` object
behind one :class:`repro.obs.metrics.MetricSource` surface, and
``StorageStack.attach_tracer()`` pokes hook attributes
(``component_trace_enabled``, ``last_components``, ``journal.tracer``)
directly into whatever model the registries produced.  Both are duck-typed:
a new device model or stats holder that misses a hook fails only at runtime,
and only on the code path that exercises the hook.  These rules move that
failure to lint time.

* **PROTO001** -- every mutable ``*Stats`` dataclass adopts ``MetricSource``
  (frozen ``*Stats`` dataclasses are immutable summaries, not counters, and
  are exempt by design).
* **PROTO002** -- every ``DEVICE_REGISTRY`` entry resolves to a model class
  whose MRO defines the hooks the stack wires on ``device.model``:
  ``stats``, ``component_trace_enabled``, ``last_components``.
* **PROTO003** -- every ``FS_REGISTRY`` entry resolves to a file-system
  class defining ``stats``; if its ``__init__`` mounts a ``journal``/``log``,
  that class must define the tracer hook and journal geometry
  (``tracer``, ``start_block``, ``size_blocks``, ``block_size``) that
  ``attach_tracer`` reads to classify device requests.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.base import Rule, register_rule
from repro.lint.config import LintConfig
from repro.lint.model import (
    ClassInfo,
    Finding,
    ModuleInfo,
    ProjectIndex,
    _dotted_tail,
)

DEVICE_MODEL_HOOKS: Tuple[str, ...] = (
    "stats",
    "component_trace_enabled",
    "last_components",
)
JOURNAL_HOOKS: Tuple[str, ...] = ("tracer", "start_block", "size_blocks", "block_size")
STATS_PROTOCOL = "MetricSource"


# --------------------------------------------------------------- resolution
def _find_registry(
    index: ProjectIndex, name: str
) -> Optional[Tuple[ModuleInfo, ast.Dict]]:
    for module in index.modules:
        for node in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and isinstance(value, ast.Dict)
                ):
                    return module, value
    return None


def _module_function(module: ModuleInfo, name: str) -> Optional[ast.FunctionDef]:
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _call_class_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        tail = _dotted_tail(node.func)
        return tail or None
    return None


def _factory_class_name(module: ModuleInfo, factory: ast.AST) -> Optional[str]:
    """Class constructed by a registry factory expression.

    Handles the two shapes the registries use: inline lambdas returning a
    constructor call, and module-level helper functions whose ``return``
    is either a constructor call or a name assigned from one earlier in the
    function body (the ``_ftl_steady`` memoisation pattern).
    """
    if isinstance(factory, ast.Lambda):
        return _call_class_name(factory.body)
    if isinstance(factory, ast.Name):
        func = _module_function(module, factory.id)
        if func is None:
            return None
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                direct = _call_class_name(node.value)
                if direct is not None:
                    return direct
                if isinstance(node.value, ast.Name):
                    return _last_assigned_call(func, node.value.id)
    return _call_class_name(factory)


def _last_assigned_call(func: ast.FunctionDef, name: str) -> Optional[str]:
    result: Optional[str] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    called = _call_class_name(node.value)
                    if called is not None:
                        result = called
    return result


def _mounted_journal_class(
    index: ProjectIndex, info: ClassInfo
) -> Optional[Tuple[str, ClassInfo]]:
    """``(attr, class)`` of the journal/log the file system mounts, if any."""
    for ancestor in index.mro(info):
        init = ancestor.methods.get("__init__")
        if init is None:
            continue
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in ("journal", "log")
                ):
                    class_name = _call_class_name(node.value)
                    if class_name is None:
                        continue
                    resolved = index.find_class(class_name, near=ancestor.module)
                    if resolved is not None:
                        return target.attr, resolved
    return None


def _adopts_protocol(index: ProjectIndex, info: ClassInfo, protocol: str) -> bool:
    for ancestor in index.mro(info):
        if ancestor.name == protocol or protocol in ancestor.base_names:
            return True
    return False


# -------------------------------------------------------------------- rules
@register_rule
class StatsProtocolRule(Rule):
    """Mutable ``*Stats`` dataclasses adopt the ``MetricSource`` protocol."""

    rule_id = "PROTO001"
    contract = (
        "every mutable *Stats dataclass adopts MetricSource so "
        "metrics_registry() can snapshot and reset it uniformly"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        for info in index.iter_classes():
            if not info.name.endswith("Stats") or not info.is_dataclass:
                continue
            if info.is_frozen_dataclass:
                continue  # immutable summary document, not a live counter set
            if _adopts_protocol(index, info, STATS_PROTOCOL):
                continue
            yield self.finding(
                info.module,
                info.node.lineno,
                info.name,
                f"{info.name} is a mutable stats dataclass but does not adopt "
                f"{STATS_PROTOCOL}, so it has no uniform snapshot()/reset() "
                "surface",
                hint=f"inherit {STATS_PROTOCOL} (and drop any hand-written "
                "reset()); freeze the dataclass instead if it is a summary",
            )


@register_rule
class DeviceRegistryHooksRule(Rule):
    """Device models define the hooks ``attach_tracer`` wires."""

    rule_id = "PROTO002"
    contract = (
        "every DEVICE_REGISTRY entry's model defines stats, "
        "component_trace_enabled and last_components"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        located = _find_registry(index, "DEVICE_REGISTRY")
        if located is None:
            return
        module, registry = located
        for key, value in zip(registry.keys, registry.values):
            entry = (
                key.value if isinstance(key, ast.Constant) else ast.dump(key)
            )
            class_name = _factory_class_name(module, value)
            if class_name is None:
                yield self.finding(
                    module,
                    value.lineno,
                    f"DEVICE_REGISTRY[{entry!r}]",
                    f"cannot statically resolve the model class built for "
                    f"device kind {entry!r}",
                    hint="keep registry factories as lambdas or helpers that "
                    "return a direct constructor call",
                )
                continue
            info = index.find_class(class_name, near=module)
            if info is None:
                continue  # constructor defined outside the scanned tree
            for hook in DEVICE_MODEL_HOOKS:
                if index.mro_defines_attr(info, hook) is None:
                    yield self.finding(
                        module,
                        value.lineno,
                        f"DEVICE_REGISTRY[{entry!r}].{hook}",
                        f"device model {class_name} (kind {entry!r}) does not "
                        f"define '{hook}', which StorageStack.attach_tracer/"
                        "metrics_registry wires unconditionally",
                        hint=f"define '{hook}' on {class_name} or a base class",
                    )


@register_rule
class FsRegistryHooksRule(Rule):
    """File systems define the stats/journal hooks the stack wires."""

    rule_id = "PROTO003"
    contract = (
        "every FS_REGISTRY entry's class defines stats, and any mounted "
        "journal/log defines the tracer hook and journal geometry"
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        located = _find_registry(index, "FS_REGISTRY")
        if located is None:
            return
        module, registry = located
        for key, value in zip(registry.keys, registry.values):
            entry = (
                key.value if isinstance(key, ast.Constant) else ast.dump(key)
            )
            class_name = _factory_class_name(module, value)
            if class_name is None:
                yield self.finding(
                    module,
                    value.lineno,
                    f"FS_REGISTRY[{entry!r}]",
                    f"cannot statically resolve the file-system class built "
                    f"for {entry!r}",
                    hint="keep registry factories as lambdas returning a "
                    "direct constructor call",
                )
                continue
            info = index.find_class(class_name, near=module)
            if info is None:
                continue
            if index.mro_defines_attr(info, "stats") is None:
                yield self.finding(
                    module,
                    value.lineno,
                    f"FS_REGISTRY[{entry!r}].stats",
                    f"file system {class_name} ({entry!r}) does not define "
                    "'stats', which metrics_registry() registers "
                    "unconditionally",
                    hint=f"define 'stats' on {class_name} or a base class",
                )
            mounted = _mounted_journal_class(index, info)
            if mounted is None:
                continue
            attr, journal = mounted
            for hook in JOURNAL_HOOKS:
                if index.mro_defines_attr(journal, hook) is None:
                    yield self.finding(
                        journal.module,
                        journal.node.lineno,
                        f"{class_name}.{attr}.{hook}",
                        f"{journal.name} (mounted as {class_name}.{attr}) does "
                        f"not define '{hook}', which attach_tracer reads to "
                        "wire tracing and classify journal requests",
                        hint=f"define '{hook}' on {journal.name}",
                    )
