"""Drive a lint run: index, rules, suppressions, report rendering.

:func:`run_lint` is the single entry point the CLI verb and the tests share.
It parses the tree once, runs every registered rule, applies ``lint.toml``
suppressions, and folds three meta-failures back into the findings stream so
nothing can fail silently:

* ``LINT000`` -- a module that does not parse (the analyzer cannot vouch for
  code it cannot read);
* ``LINT001`` -- a suppression that matched nothing (stale exemptions are
  themselves contract violations: they document a false positive that no
  longer exists).

Output is deterministic: findings sort by ``(path, line, rule, symbol)``, so
two runs over the same tree render byte-identical reports -- the linter
holds itself to the reproducibility bar it enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.base import all_rules
from repro.lint.config import LintConfig, Suppression, apply_suppressions, load_config
from repro.lint.model import Finding, ProjectIndex

# Importing the rule modules populates RULE_REGISTRY.
from repro.lint import rules_determinism  # noqa: F401  (registration side effect)
from repro.lint import rules_snapshot  # noqa: F401
from repro.lint import rules_cachekey  # noqa: F401
from repro.lint import rules_protocol  # noqa: F401


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    config: LintConfig
    findings: List[Finding] = field(default_factory=list)  # active (gate CI)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    modules_scanned: int = 0
    rules_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    # ----------------------------------------------------------- rendering
    def to_json(self) -> str:
        document = {
            "root": str(self.root),
            "config": str(self.config.path) if self.config.path else None,
            "modules_scanned": self.modules_scanned,
            "rules_run": self.rules_run,
            "clean": self.clean,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [
                {
                    **finding.to_dict(),
                    "suppressed_by": suppression.describe(),
                    "reason": suppression.reason,
                }
                for finding, suppression in self.suppressed
            ],
        }
        return json.dumps(document, indent=2, sort_keys=False)

    def to_table(self) -> str:
        lines: List[str] = []
        lines.append(
            f"lint: {self.modules_scanned} modules, {self.rules_run} rules, "
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed"
        )
        if self.findings:
            rows = [
                (finding.rule, finding.location(), finding.symbol, finding.message)
                for finding in self.findings
            ]
            widths = [
                max(len(row[column]) for row in rows + [_TABLE_HEADER])
                for column in range(3)
            ]
            lines.append("")
            lines.append(_format_row(_TABLE_HEADER, widths))
            lines.append(_format_row(tuple("-" * width for width in widths) + ("-" * 7,), widths))
            for row in rows:
                lines.append(_format_row(row, widths))
            hints = [f for f in self.findings if f.hint]
            if hints:
                lines.append("")
                for finding in hints:
                    lines.append(f"  {finding.rule} {finding.location()}: {finding.hint}")
        if self.suppressed:
            lines.append("")
            lines.append("suppressed (justified in lint.toml):")
            for finding, suppression in self.suppressed:
                lines.append(
                    f"  {finding.rule} {finding.location()} {finding.symbol}"
                    f" -- {suppression.reason}"
                )
        lines.append("")
        lines.append("clean" if self.clean else "FAIL: determinism contract violations")
        return "\n".join(lines)


_TABLE_HEADER = ("rule", "location", "symbol", "message")


def _format_row(row: Tuple[str, ...], widths: List[int]) -> str:
    cells = [row[column].ljust(widths[column]) for column in range(3)]
    return "  ".join(cells + [row[3]])


def run_lint(
    root: Path,
    config_path: Optional[Path] = None,
    project_root: Optional[Path] = None,
) -> LintReport:
    """Lint every module under ``root`` against the full rule registry."""
    config = load_config(config_path)
    index = ProjectIndex(root, project_root=project_root)
    rules = all_rules()

    raw: List[Finding] = list(index.errors)
    for rule in rules:
        raw.extend(rule.check(index, config))

    active, suppressed, unused = apply_suppressions(raw, config)
    for suppression in unused:
        active.append(
            Finding(
                rule="LINT001",
                path=str(config.path) if config.path else "lint.toml",
                line=1,
                symbol=suppression.describe(),
                message=(
                    f"suppression {suppression.describe()} matched no finding; "
                    "the exemption is stale"
                ),
                hint="delete the [[suppress]] entry (or fix its pattern)",
            )
        )

    active.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))
    suppressed.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule))
    return LintReport(
        root=Path(root),
        config=config,
        findings=active,
        suppressed=suppressed,
        modules_scanned=len(index.modules),
        rules_run=len(rules),
    )
