"""The pluggable rule protocol and the fixed rule registry.

A rule is a class with a stable id, a one-line contract statement, and a
``check(index, config)`` generator yielding :class:`~repro.lint.model.Finding`
objects.  Rules register themselves with :func:`register_rule`; the registry
is the single source of truth the CLI, the docs table and the tests iterate.

Adding a rule:

1. subclass :class:`Rule` in a ``rules_*`` module, decorate with
   ``@register_rule``;
2. give it a fixed id (``FAMxxx`` -- ids are append-only, never reused);
3. add a firing and a non-firing fixture case to ``tests/test_lint.py``;
4. document the contract in ``docs/architecture.md`` section 9.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Type

from repro.lint.config import LintConfig
from repro.lint.model import Finding, ProjectIndex

#: Rule id -> rule class, in registration (i.e. documentation) order.
RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule(ABC):
    """One machine-checked determinism contract."""

    #: Stable identifier, e.g. ``"DET001"``.  Append-only; never reused.
    rule_id: str = ""
    #: One-line statement of the contract the rule proves.
    contract: str = ""

    @abstractmethod
    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        """Yield every violation of this rule in ``index``."""

    def finding(
        self,
        module,
        line: int,
        symbol: str,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(
            rule=self.rule_id,
            path=module.rel,
            line=line,
            symbol=symbol,
            message=message,
            hint=hint,
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to :data:`RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [cls() for cls in RULE_REGISTRY.values()]
