"""repro.lint: a determinism-contract static analyzer for the repro tree.

The golden-hash tests (PRs 6-7) *spot-check* the determinism story: one
snapshot fingerprint, one cache key, one measurement payload, pinned to
bytes.  This package machine-checks the **invariants behind those hashes**
over the whole source tree, so the contract holds for code paths no golden
test happens to execute:

* determinism hazards (``DET001``-``DET004``): no wall clock, no ambient
  entropy, no unseeded module-level randomness, no iteration over unordered
  sets feeding ordered results, no ``id()``-keyed containers;
* snapshot completeness (``SNAP001``-``SNAP002``): every mutable attribute
  of a snapshot participant is exported/restored or explicitly ephemeral;
* cache-key hygiene (``KEY001``): every ``BenchmarkConfig`` field has
  decided, documented, implemented key semantics;
* protocol conformance (``PROTO001``-``PROTO003``): stats holders and
  registry-built models expose the hooks the observability layer wires.

Run it with ``fsbench-rocket lint`` (exit code gates CI); configure and
justify exemptions in ``lint.toml``.  The analyzer never imports the code it
checks -- it parses, so linting has no side effects and no hidden state.
"""

from repro.lint.base import RULE_REGISTRY, Rule, all_rules, register_rule
from repro.lint.config import (
    LintConfig,
    LintConfigError,
    Suppression,
    apply_suppressions,
    load_config,
)
from repro.lint.model import Finding, ProjectIndex
from repro.lint.runner import LintReport, run_lint

__all__ = [
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "ProjectIndex",
    "RULE_REGISTRY",
    "Rule",
    "Suppression",
    "all_rules",
    "apply_suppressions",
    "load_config",
    "register_rule",
    "run_lint",
]
