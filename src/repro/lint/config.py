"""``lint.toml``: per-rule options and justified suppressions.

The config file is the *audited* half of the contract system.  A finding can
only be silenced two ways, both of which leave a written trail:

* an inline ``# lint: ephemeral`` annotation (snapshot rule only -- it marks
  an attribute as deliberately outside the snapshot contract), or
* a ``[[suppress]]`` entry here, which **must** carry a non-empty ``reason``
  string.  A suppression that stops matching anything becomes a finding
  itself (``LINT001``), so stale exemptions cannot linger.

Schema::

    [rules.determinism]
    allow = ["src/repro/some/measured_wallclock.py"]   # fnmatch patterns

    [rules.snapshot]
    required = ["Journal", "PageCache", ...]  # classes that must export state

    [rules.cache-key]
    keyed = [...]       # BenchmarkConfig fields hashed into the cache key
    normalized = [...]  # fields canonicalised away (seed, repetitions)
    stripped = [...]    # fields popped from the payload (trace, clients)

    [[suppress]]
    rule = "SNAP002"
    path = "src/repro/storage/clock.py"   # fnmatch against the finding path
    match = "VirtualClock"                # substring of the finding symbol
    reason = "why this is a false positive"
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.model import Finding


class LintConfigError(ValueError):
    """Raised when ``lint.toml`` is malformed or a suppression lacks a reason."""


@dataclass(frozen=True)
class Suppression:
    """One justified exemption from a rule."""

    rule: str
    path: str = "*"
    match: str = "*"
    reason: str = ""

    def covers(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if not fnmatch(finding.path, self.path) and not fnmatch(
            finding.path, f"*/{self.path}"
        ):
            return False
        return self.match == "*" or self.match in finding.symbol

    def describe(self) -> str:
        return f"{self.rule} @ {self.path} [{self.match}]"


#: Classes that must participate in the snapshot protocol (define an
#: export/restore state pair) -- the stateful layers ``snapshot_stack``
#: serialises.  ``lint.toml`` may extend but not shrink the contract.
DEFAULT_SNAPSHOT_REQUIRED: Tuple[str, ...] = (
    "Journal",
    "PageCache",
    "FlashTranslationLayer",
    "BlockGroupAllocator",
    "ExtentAllocator",
    "VirtualClock",
)

#: Default classification of ``BenchmarkConfig`` fields for the cache-key
#: hygiene rule.  Every field must appear in exactly one bucket; a field in
#: none of them (i.e. a newly added field) is a lint error until its key
#: semantics are decided.
DEFAULT_CACHE_KEY_BUCKETS: Dict[str, Tuple[str, ...]] = {
    "keyed": (
        "duration_s",
        "max_ops",
        "warmup_mode",
        "warmup_s",
        "max_warmup_s",
        "interval_s",
        "histogram_interval_s",
        "collect_raw_latencies",
        "cold_cache",
        "noise",
    ),
    "normalized": ("seed", "repetitions"),
    "stripped": ("clients", "trace"),
}


@dataclass
class LintConfig:
    """Parsed configuration driving one lint run."""

    path: Optional[Path] = None
    suppressions: List[Suppression] = field(default_factory=list)
    determinism_allow: List[str] = field(default_factory=list)
    snapshot_required: Tuple[str, ...] = DEFAULT_SNAPSHOT_REQUIRED
    cache_key_buckets: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_CACHE_KEY_BUCKETS)
    )

    def rule_enabled(self, rule_id: str) -> bool:  # pragma: no cover - hook
        return True


def _string_list(value: object, context: str) -> List[str]:
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise LintConfigError(f"{context} must be a list of strings")
    return list(value)


def load_config(path: Optional[Path]) -> LintConfig:
    """Load ``lint.toml``; ``None`` (or a missing file) yields the defaults."""
    config = LintConfig(path=path)
    if path is None or not Path(path).exists():
        return config
    with open(path, "rb") as handle:
        try:
            document = tomllib.load(handle)
        except tomllib.TOMLDecodeError as error:
            raise LintConfigError(f"{path}: {error}") from error

    rules = document.get("rules", {})
    if not isinstance(rules, dict):
        raise LintConfigError("[rules] must be a table")
    determinism = rules.get("determinism", {})
    if determinism:
        config.determinism_allow = _string_list(
            determinism.get("allow", []), "rules.determinism.allow"
        )
    snapshot = rules.get("snapshot", {})
    if snapshot:
        extra = _string_list(snapshot.get("required", []), "rules.snapshot.required")
        merged = list(DEFAULT_SNAPSHOT_REQUIRED)
        merged.extend(name for name in extra if name not in merged)
        config.snapshot_required = tuple(merged)
    cache_key = rules.get("cache-key", rules.get("cache_key", {}))
    if cache_key:
        buckets: Dict[str, Tuple[str, ...]] = {}
        for bucket in ("keyed", "normalized", "stripped"):
            buckets[bucket] = tuple(
                _string_list(cache_key.get(bucket, []), f"rules.cache-key.{bucket}")
            )
        config.cache_key_buckets = buckets

    for index, entry in enumerate(document.get("suppress", [])):
        if not isinstance(entry, dict):
            raise LintConfigError(f"[[suppress]] entry {index} must be a table")
        rule = entry.get("rule")
        reason = entry.get("reason", "")
        if not isinstance(rule, str) or not rule:
            raise LintConfigError(f"[[suppress]] entry {index} needs a rule id")
        if not isinstance(reason, str) or not reason.strip():
            raise LintConfigError(
                f"[[suppress]] entry {index} ({rule}) needs a non-empty reason: "
                "every exemption must be justified"
            )
        config.suppressions.append(
            Suppression(
                rule=rule,
                path=str(entry.get("path", "*")),
                match=str(entry.get("match", "*")),
                reason=reason.strip(),
            )
        )
    return config


def apply_suppressions(
    findings: Sequence[Finding], config: LintConfig
) -> Tuple[List[Finding], List[Tuple[Finding, Suppression]], List[Suppression]]:
    """Split findings into (active, suppressed) and report unused suppressions.

    First matching suppression wins; a suppression that matched nothing in
    the whole run is returned so the caller can flag it (``LINT001``).
    """
    active: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    used = [False] * len(config.suppressions)
    for finding in findings:
        for index, suppression in enumerate(config.suppressions):
            if suppression.covers(finding):
                used[index] = True
                suppressed.append((finding, suppression))
                break
        else:
            active.append(finding)
    unused = [
        suppression
        for index, suppression in enumerate(config.suppressions)
        if not used[index]
    ]
    return active, suppressed, unused
