"""One-call construction of a complete simulated storage stack.

A :class:`StorageStack` bundles the virtual clock, the block device, the page
cache, a mounted file system and the VFS.  Benchmarks, examples and the
experiment harnesses all build their stacks through :func:`build_stack` so
that the testbed description (see :mod:`repro.storage.config`) is the single
source of truth for the simulated machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.fs.base import FileSystem
from repro.fs.ext2 import Ext2FileSystem
from repro.fs.ext3 import Ext3FileSystem
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.vfs import VFS
from repro.fs.xfs import XfsFileSystem
from repro.obs.metrics import MetricsRegistry
from repro.storage.cache import PageCache
from repro.storage.clock import VirtualClock
from repro.storage.config import TestbedConfig, paper_testbed
from repro.storage.device import BlockDevice
from repro.storage.readahead import DEFAULT_READAHEAD, ReadaheadPolicy

#: Registry of file system constructors by name.
FS_REGISTRY: Dict[str, Callable[[int, int], FileSystem]] = {
    "ext2": lambda capacity, block: Ext2FileSystem(capacity, block),
    "ext3": lambda capacity, block: Ext3FileSystem(capacity, block),
    "ext4": lambda capacity, block: Ext4FileSystem(capacity, block),
    "xfs": lambda capacity, block: XfsFileSystem(capacity, block),
}

#: Every registered file system, in registry order -- the single source of
#: truth for CLI choices and default survey/suite grids.
DEFAULT_FS_TYPES = tuple(FS_REGISTRY)


@dataclass
class StorageStack:
    """A fully assembled simulated storage stack.

    Attributes
    ----------
    testbed:
        The machine description the stack was built from.
    clock, device, cache, fs, vfs:
        The live components.  ``vfs`` is the entry point workloads use.
    seed:
        Seed of the stack's random source (recorded for reproducibility).
    """

    testbed: TestbedConfig
    clock: VirtualClock
    device: BlockDevice
    cache: PageCache
    fs: FileSystem
    vfs: VFS
    seed: int

    @property
    def fs_name(self) -> str:
        """Name of the mounted file system ("ext2", "ext3", "ext4", "xfs")."""
        return self.fs.name

    @property
    def journal(self):
        """The mounted file system's journal/log, or ``None`` (ext2)."""
        return getattr(self.fs, "journal", None) or getattr(self.fs, "log", None)

    def metrics_registry(self) -> MetricsRegistry:
        """Every layer's stats holder behind one ``snapshot()/reset()`` surface.

        Rebuilt on demand (the registry only holds references), so callers
        always see the live component set -- including the journal when the
        mounted file system has one.
        """
        registry = MetricsRegistry()
        registry.register("vfs", self.vfs.stats)
        registry.register("cache", self.cache.stats)
        registry.register("fs", self.fs.stats)
        registry.register("block", self.device.stats)
        registry.register("device", self.device.model.stats)
        journal = self.journal
        if journal is not None:
            registry.register("journal", journal.stats)
        return registry

    def reset_statistics(self) -> None:
        """Zero every statistics counter in the stack (cache contents are kept)."""
        self.metrics_registry().reset()

    def attach_tracer(self, tracer) -> None:
        """Attach (or, with ``None``, detach) a :class:`repro.obs.Tracer`.

        Wires the tracer into every instrumented layer and configures it with
        the journal geometry needed to classify device requests.  Detaching
        restores the zero-cost disabled state everywhere, including the device
        model's component capture.
        """
        self.vfs.tracer = tracer
        self.device.tracer = tracer
        self.device.model.component_trace_enabled = tracer is not None
        self.device.model.last_components = None
        journal = self.journal
        if journal is not None:
            journal.tracer = tracer
        if tracer is not None:
            tracer.has_journal = journal is not None
            if journal is not None:
                tracer.journal_region = (
                    float(journal.start_block * journal.block_size),
                    float((journal.start_block + journal.size_blocks) * journal.block_size),
                )

    def drop_caches(self) -> int:
        """Flush dirty pages and drop the page cache (cold-cache state)."""
        return self.vfs.drop_caches()

    def describe(self) -> str:
        """One-line description used in report headers."""
        return f"{self.fs_name} on {self.testbed.describe()}"


def build_stack(
    fs_type: str = "ext2",
    testbed: Optional[TestbedConfig] = None,
    seed: int = 42,
    readahead_policy: ReadaheadPolicy = DEFAULT_READAHEAD,
    cpu_speed_factor: float = 1.0,
    fs_factory: Optional[Callable[[int, int], FileSystem]] = None,
) -> StorageStack:
    """Build a simulated storage stack.

    Parameters
    ----------
    fs_type:
        Any name in :data:`FS_REGISTRY` -- ``"ext2"``, ``"ext3"``, ``"ext4"``
        or ``"xfs"`` (ignored when ``fs_factory`` is given).
    testbed:
        Machine description; defaults to the paper's 512 MB testbed.
    seed:
        Seed for the stack's random source.  Two stacks built with the same
        arguments and seed behave identically.
    readahead_policy:
        Sequential readahead policy for the VFS.
    cpu_speed_factor:
        Multiplier on CPU costs (the benchmark runner perturbs this per
        repetition to model environmental noise).
    fs_factory:
        Optional custom constructor ``f(capacity_bytes, block_size)`` for
        mounting a user-provided file system model.
    """
    config = testbed if testbed is not None else paper_testbed()
    config.validate()

    clock = VirtualClock()
    rng = random.Random(seed)
    device = config.build_block_device()
    cache = config.build_page_cache()

    if fs_factory is None:
        try:
            fs_factory = FS_REGISTRY[fs_type]
        except KeyError:
            known = ", ".join(sorted(FS_REGISTRY))
            raise ValueError(f"unknown fs_type {fs_type!r} (known: {known})") from None
    fs = fs_factory(device.capacity_bytes, config.page_size)

    vfs = VFS(
        fs=fs,
        cache=cache,
        device=device,
        clock=clock,
        cpu=config.cpu,
        rng=rng,
        readahead_policy=readahead_policy,
        cpu_speed_factor=cpu_speed_factor,
    )
    return StorageStack(
        testbed=config,
        clock=clock,
        device=device,
        cache=cache,
        fs=fs,
        vfs=vfs,
        seed=seed,
    )
