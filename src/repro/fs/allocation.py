"""Block allocators.

Three allocators are provided, matching the layout philosophies of the file
systems in the case study and its ext4 extension:

* :class:`BlockGroupAllocator` -- ext2/ext3-style: the device is divided into
  block groups; files are allocated first-fit within a goal group, spilling to
  subsequent groups when the goal is full.  Large files therefore fragment at
  group boundaries.
* :class:`ExtentAllocator` -- XFS-style: free space is tracked as extents in
  (approximately) by-size order; allocations grab the largest suitable run,
  producing long contiguous extents until free space fragments.
* :class:`MultiBlockAllocator` -- ext4-style (mballoc): ext2's block-group
  geometry, but each request is first placed as one contiguous run (goal
  group first, then any group) before falling back to first-fit splitting.
  Files stay contiguous up to a group's worth of blocks, then fragment at
  group boundaries -- between the two older philosophies.

All three share :class:`FreeSpaceInspectionMixin` (free-space statistics and
snapshot export/restore) because they all keep per-group
:class:`FreeExtentMap` objects.  The allocators return *device block runs*;
the callers wrap them in :class:`~repro.fs.base.Extent` objects tied to file
offsets.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.base import NoSpaceError
from repro.obs.metrics import MetricSource

BlockRun = Tuple[int, int]  # (first_device_block, count)


@dataclass
class AllocatorStats(MetricSource):
    """Counters shared by both allocator families."""

    allocations: int = 0
    frees: int = 0
    blocks_allocated: int = 0
    blocks_freed: int = 0
    split_allocations: int = 0


@dataclass(frozen=True)
class FreeSpaceStats:
    """A point-in-time description of an allocator's free space.

    Where :class:`AllocatorStats` counts allocation-side *events*, this
    describes the free-space *state*: how many free extents exist, how big
    they are, and how shredded the free space is.  Both allocator families
    report it identically (via :class:`FreeSpaceInspectionMixin`), which is
    what the aging subsystem's fragmentation metrics build on.
    """

    free_blocks: int
    extent_count: int
    largest_extent_blocks: int
    mean_extent_blocks: float

    @property
    def fragmentation_score(self) -> float:
        """0.0 = one contiguous free region, approaching 1.0 = fully shredded.

        Defined as ``1 - largest_extent / free_blocks`` (the classic
        free-space fragmentation measure); 0.0 when there is no free space.
        """
        if self.free_blocks <= 0:
            return 0.0
        return 1.0 - self.largest_extent_blocks / self.free_blocks


class FreeSpaceInspectionMixin:
    """Uniform free-space reporting and state export for both allocators.

    Both :class:`BlockGroupAllocator` and :class:`ExtentAllocator` keep their
    free space as a list of per-group :class:`FreeExtentMap` objects in
    ``self._groups``; this mixin turns that shared representation into a
    consistent public surface.
    """

    _groups: List[FreeExtentMap]

    @property
    def free_blocks(self) -> int:
        """Total free data blocks across all groups."""
        return sum(group.free_blocks for group in self._groups)

    def free_runs(self) -> List[BlockRun]:
        """Every free run on the device, sorted by start block."""
        runs: List[BlockRun] = []
        for group in self._groups:
            runs.extend(group.runs())
        runs.sort()
        return runs

    def free_extent_count(self) -> int:
        """Number of free extents across all groups."""
        return sum(len(group) for group in self._groups)

    def largest_free_run(self) -> int:
        """Size (in blocks) of the largest free run anywhere on the device."""
        return max((group.largest_run() for group in self._groups), default=0)

    def free_space_stats(self) -> FreeSpaceStats:
        """Point-in-time free-space statistics (see :class:`FreeSpaceStats`)."""
        free = self.free_blocks
        count = self.free_extent_count()
        return FreeSpaceStats(
            free_blocks=free,
            extent_count=count,
            largest_extent_blocks=self.largest_free_run(),
            mean_extent_blocks=free / count if count else 0.0,
        )

    # ------------------------------------------------------- snapshot support
    def export_free_state(self) -> List[List[BlockRun]]:
        """Per-group free-run lists, suitable for JSON serialisation."""
        return [group.runs() for group in self._groups]

    def restore_free_state(self, state: List[List[BlockRun]]) -> None:
        """Overwrite the free maps with previously exported state."""
        if len(state) != len(self._groups):
            raise ValueError(
                f"snapshot has {len(state)} allocator groups, allocator has {len(self._groups)}"
            )
        for group, runs in zip(self._groups, state):
            group.replace_runs([(int(start), int(count)) for start, count in runs])


class FreeExtentMap:
    """A sorted map of free block runs supporting split and coalesce.

    Internally a sorted list of ``(start, count)`` runs with no overlaps and
    no adjacent runs (adjacent runs are coalesced on free).
    """

    def __init__(self, total_blocks: int, first_block: int = 0) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        self._starts: List[int] = [first_block]
        self._counts: List[int] = [total_blocks]
        self.free_blocks = total_blocks

    def __len__(self) -> int:
        return len(self._starts)

    def runs(self) -> List[BlockRun]:
        """Snapshot of the free runs (sorted by start block)."""
        return list(zip(self._starts, self._counts))

    def replace_runs(self, runs: List[BlockRun]) -> None:
        """Overwrite the free map with an explicit run list (snapshot restore).

        Runs must be sorted by start block, non-overlapping and non-adjacent
        -- exactly what :meth:`runs` produces; an empty list means the map is
        fully allocated.
        """
        for (start, count), (next_start, _) in zip(runs, runs[1:]):
            if start + count >= next_start:
                raise ValueError(f"free runs overlap or touch at block {next_start}")
        if any(count <= 0 for _, count in runs):
            raise ValueError("free run counts must be positive")
        self._starts = [start for start, _ in runs]
        self._counts = [count for _, count in runs]
        self.free_blocks = sum(self._counts)

    def largest_run(self) -> int:
        """Size of the largest free run (0 when empty)."""
        return max(self._counts, default=0)

    # ------------------------------------------------------------- allocate
    def take_from_run(self, index: int, count: int) -> BlockRun:
        """Take ``count`` blocks from the front of run ``index``."""
        start = self._starts[index]
        available = self._counts[index]
        if count > available:
            raise ValueError("cannot take more blocks than the run holds")
        if count == available:
            del self._starts[index]
            del self._counts[index]
        else:
            self._starts[index] = start + count
            self._counts[index] = available - count
        self.free_blocks -= count
        return (start, count)

    def find_first_fit(self, count: int, goal_block: Optional[int] = None) -> Optional[int]:
        """Index of the first run with >= ``count`` blocks at or after ``goal_block``."""
        start_idx = 0
        if goal_block is not None:
            start_idx = bisect.bisect_left(self._starts, goal_block)
            # The run containing goal_block may start before it.
            if start_idx > 0 and self._starts[start_idx - 1] + self._counts[start_idx - 1] > goal_block:
                start_idx -= 1
        for idx in range(start_idx, len(self._starts)):
            if self._counts[idx] >= count:
                return idx
        return None

    def find_best_fit(self, count: int) -> Optional[int]:
        """Index of the largest free run (used for extent-style allocation)."""
        if not self._counts:
            return None
        best = max(range(len(self._counts)), key=lambda i: self._counts[i])
        return best if self._counts[best] > 0 else None

    def find_any_fit(self, count: int) -> Optional[int]:
        """Index of any run that can satisfy ``count`` blocks, else the largest run."""
        idx = self.find_first_fit(count)
        if idx is not None:
            return idx
        return self.find_best_fit(count)

    # ----------------------------------------------------------------- free
    def release(self, start: int, count: int) -> None:
        """Return a run to the free map, coalescing with neighbours."""
        if count <= 0:
            raise ValueError("count must be positive")
        idx = bisect.bisect_left(self._starts, start)

        # Guard against double frees / overlaps with neighbours.
        if idx > 0 and self._starts[idx - 1] + self._counts[idx - 1] > start:
            raise ValueError(f"double free or overlap at block {start}")
        if idx < len(self._starts) and start + count > self._starts[idx]:
            raise ValueError(f"double free or overlap at block {start}")

        merged_with_prev = (
            idx > 0 and self._starts[idx - 1] + self._counts[idx - 1] == start
        )
        merged_with_next = idx < len(self._starts) and start + count == self._starts[idx]

        if merged_with_prev and merged_with_next:
            self._counts[idx - 1] += count + self._counts[idx]
            del self._starts[idx]
            del self._counts[idx]
        elif merged_with_prev:
            self._counts[idx - 1] += count
        elif merged_with_next:
            self._starts[idx] = start
            self._counts[idx] += count
        else:
            self._starts.insert(idx, start)
            self._counts.insert(idx, count)
        self.free_blocks += count


class BlockGroupAllocator(FreeSpaceInspectionMixin):
    """Ext2-style allocator: the device is split into fixed-size block groups.

    Allocation requests carry a *goal* group (typically the group holding the
    file's inode or its last allocated block); the allocator tries the goal
    group first, then scans forward, wrapping around.  Within a group it
    allocates first-fit and will split requests across groups when needed.

    Parameters
    ----------
    total_blocks:
        Number of allocatable data blocks.
    blocks_per_group:
        Group size; ext2 with 4 KiB blocks uses 32768 (128 MiB groups).
    reserved_blocks:
        Blocks at the start of the device reserved for the superblock and
        static metadata.
    group_metadata_blocks:
        Blocks at the start of each group holding the group's bitmaps and
        inode table.  They are never handed out for data, which is why files
        spanning multiple groups are physically discontiguous on ext2.
    """

    def __init__(
        self,
        total_blocks: int,
        blocks_per_group: int = 32768,
        reserved_blocks: int = 256,
        group_metadata_blocks: int = 64,
    ) -> None:
        if total_blocks <= reserved_blocks:
            raise ValueError("total_blocks must exceed reserved_blocks")
        if blocks_per_group <= 0:
            raise ValueError("blocks_per_group must be positive")
        if not (0 <= group_metadata_blocks < blocks_per_group):
            raise ValueError("group_metadata_blocks must be smaller than a group")
        self.total_blocks = total_blocks
        self.blocks_per_group = blocks_per_group
        self.reserved_blocks = reserved_blocks
        self.group_metadata_blocks = group_metadata_blocks
        self.group_count = max(1, (total_blocks - reserved_blocks + blocks_per_group - 1) // blocks_per_group)
        self.stats = AllocatorStats()
        self._groups: List[FreeExtentMap] = []
        block = reserved_blocks
        remaining = total_blocks - reserved_blocks
        for _ in range(self.group_count):
            size = min(blocks_per_group, remaining)
            if size <= group_metadata_blocks:
                break
            self._groups.append(
                FreeExtentMap(size - group_metadata_blocks, first_block=block + group_metadata_blocks)
            )
            block += size
            remaining -= size

    # ------------------------------------------------------------ inspection
    def group_of_block(self, block: int) -> int:
        """Index of the group containing ``block``."""
        if block < self.reserved_blocks:
            return 0
        return min(
            self.group_count - 1, (block - self.reserved_blocks) // self.blocks_per_group
        )

    def group_free_blocks(self, group_index: int) -> int:
        """Free blocks in one group."""
        return self._groups[group_index].free_blocks

    # -------------------------------------------------------------- allocate
    def allocate(self, count: int, goal_block: Optional[int] = None) -> List[BlockRun]:
        """Allocate ``count`` blocks, preferring the goal block's group.

        Returns a list of runs; a request that does not fit contiguously in
        the goal group is split across groups (this is how large files end up
        fragmented on ext2).  Raises :class:`NoSpaceError` when the device
        cannot satisfy the request.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_blocks:
            raise NoSpaceError(f"requested {count} blocks, {self.free_blocks} free")

        goal_group = self.group_of_block(goal_block) if goal_block is not None else 0
        runs: List[BlockRun] = []
        remaining = count
        groups_in_order = list(range(goal_group, self.group_count)) + list(range(0, goal_group))
        for group_index in groups_in_order:
            group = self._groups[group_index]
            while remaining > 0 and group.free_blocks > 0:
                idx = group.find_first_fit(remaining, goal_block if group_index == goal_group else None)
                if idx is None:
                    idx = group.find_best_fit(remaining)
                if idx is None:
                    break
                available = group.runs()[idx][1]
                take = min(remaining, available)
                runs.append(group.take_from_run(idx, take))
                remaining -= take
            if remaining == 0:
                break

        if remaining > 0:
            # Roll back partial allocation before reporting failure.
            for start, length in runs:
                self.free(start, length)
            raise NoSpaceError(f"could not allocate {count} blocks")

        self.stats.allocations += 1
        self.stats.blocks_allocated += count
        if len(runs) > 1:
            self.stats.split_allocations += 1
        return runs

    def free(self, start: int, count: int) -> None:
        """Return a run of blocks to its group(s)."""
        if count <= 0:
            raise ValueError("count must be positive")
        remaining = count
        block = start
        while remaining > 0:
            group_index = self.group_of_block(block)
            group = self._groups[group_index]
            group_end = (
                self.reserved_blocks + (group_index + 1) * self.blocks_per_group
            )
            in_group = min(remaining, group_end - block)
            group.release(block, in_group)
            block += in_group
            remaining -= in_group
        self.stats.frees += 1
        self.stats.blocks_freed += count


class MultiBlockAllocator(BlockGroupAllocator):
    """Ext4-style mballoc over ext2's block-group geometry.

    The group layout (group size, per-group metadata reservations) is exactly
    :class:`BlockGroupAllocator`'s, so aged ext4 and ext2/ext3 states are
    directly comparable group-for-group.  The allocation *strategy* differs:
    a request is first satisfied as a single contiguous run -- in the goal
    group if possible, otherwise in the first group with a large-enough run
    -- and only when no group can hold it contiguously does the request fall
    back to the parent's first-fit splitting.  That is the behaviour ext4's
    multi-block allocator buys over ext2's block-at-a-time bitmap scan:
    files stay in one extent up to roughly a block group's worth of data.
    """

    def allocate(self, count: int, goal_block: Optional[int] = None) -> List[BlockRun]:
        """Allocate ``count`` blocks, preferring one contiguous run."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_blocks:
            raise NoSpaceError(f"requested {count} blocks, {self.free_blocks} free")

        goal_group = self.group_of_block(goal_block) if goal_block is not None else 0
        order = list(range(goal_group, self.group_count)) + list(range(0, goal_group))
        for group_index in order:
            group = self._groups[group_index]
            if group.largest_run() < count:
                continue
            idx = group.find_first_fit(
                count, goal_block if group_index == goal_group else None
            )
            if idx is None and group_index == goal_group:
                # Only the goal constraint can make the first attempt miss
                # despite a large-enough run existing: retry without it.
                idx = group.find_first_fit(count)
            if idx is None:
                continue
            run = group.take_from_run(idx, count)
            self.stats.allocations += 1
            self.stats.blocks_allocated += count
            return [run]

        # No group can hold the request contiguously (it exceeds the largest
        # free run, typically because it spans group boundaries): split like
        # the block-group allocator, which accounts its own stats.
        return super().allocate(count, goal_block=goal_block)


class ExtentAllocator(FreeSpaceInspectionMixin):
    """XFS-style allocator over a handful of large allocation groups.

    Allocations prefer a single contiguous extent (best fit by size); only
    when no single run is large enough does the allocation split.  This keeps
    large files contiguous far longer than the block-group allocator.
    """

    def __init__(
        self,
        total_blocks: int,
        allocation_groups: int = 4,
        reserved_blocks: int = 256,
        max_extent_blocks: int = 2 ** 21,
    ) -> None:
        if total_blocks <= reserved_blocks:
            raise ValueError("total_blocks must exceed reserved_blocks")
        if allocation_groups <= 0:
            raise ValueError("allocation_groups must be positive")
        self.total_blocks = total_blocks
        self.reserved_blocks = reserved_blocks
        self.max_extent_blocks = max_extent_blocks
        self.stats = AllocatorStats()
        usable = total_blocks - reserved_blocks
        per_group = usable // allocation_groups
        self._groups: List[FreeExtentMap] = []
        block = reserved_blocks
        for index in range(allocation_groups):
            size = per_group if index < allocation_groups - 1 else usable - per_group * (allocation_groups - 1)
            if size <= 0:
                continue
            self._groups.append(FreeExtentMap(size, first_block=block))
            block += size
        self.group_count = len(self._groups)

    def group_of_block(self, block: int) -> int:
        """Index of the allocation group containing ``block``."""
        usable = self.total_blocks - self.reserved_blocks
        per_group = max(1, usable // self.group_count)
        return min(self.group_count - 1, max(0, (block - self.reserved_blocks) // per_group))

    def allocate(self, count: int, goal_block: Optional[int] = None) -> List[BlockRun]:
        """Allocate ``count`` blocks, preferring one contiguous extent."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_blocks:
            raise NoSpaceError(f"requested {count} blocks, {self.free_blocks} free")

        goal_group = self.group_of_block(goal_block) if goal_block is not None else 0
        order = list(range(goal_group, self.group_count)) + list(range(0, goal_group))

        capped = min(count, self.max_extent_blocks)
        # First pass: look for a group that can satisfy the request contiguously.
        for group_index in order:
            group = self._groups[group_index]
            idx = group.find_first_fit(capped)
            if idx is not None:
                run = group.take_from_run(idx, capped)
                runs = [run]
                remaining = count - capped
                if remaining:
                    runs.extend(self.allocate(remaining, goal_block=run[0] + run[1]))
                    self.stats.allocations -= 1  # the recursive call counted once already
                self.stats.allocations += 1
                self.stats.blocks_allocated += capped
                return runs

        # Second pass: take the largest runs available until satisfied.
        runs = []
        remaining = count
        for group_index in order:
            group = self._groups[group_index]
            while remaining > 0:
                idx = group.find_best_fit(remaining)
                if idx is None or group.free_blocks == 0:
                    break
                available = group.runs()[idx][1]
                if available == 0:
                    break
                take = min(remaining, available, self.max_extent_blocks)
                runs.append(group.take_from_run(idx, take))
                remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            for start, length in runs:
                self.free(start, length)
            raise NoSpaceError(f"could not allocate {count} blocks")
        self.stats.allocations += 1
        self.stats.blocks_allocated += count
        if len(runs) > 1:
            self.stats.split_allocations += 1
        return runs

    def free(self, start: int, count: int) -> None:
        """Return a run to the appropriate allocation group."""
        if count <= 0:
            raise ValueError("count must be positive")
        group = self._groups[self.group_of_block(start)]
        group.release(start, count)
        self.stats.frees += 1
        self.stats.blocks_freed += count
