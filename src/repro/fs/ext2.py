"""Ext2 model: block groups, bitmap allocation, no journal.

Ext2 is the paper's primary case-study file system.  The behavioural traits
modelled here:

* block-group (bitmap) allocation -- large files fragment at 128 MiB group
  boundaries;
* linear-scan directories -- per-entry lookup cost grows with directory size;
* small cluster reads -- a cache miss brings in only the requested 8 KiB
  (two pages), so cache warm-up under random reads is slow (this is why the
  simulated Ext2 is the last to converge in Figure 2);
* no journal -- metadata updates are only made durable by writeback or fsync.
"""

from __future__ import annotations

from repro.fs.allocation import BlockGroupAllocator
from repro.fs.common import UnixFileSystemBase


class Ext2FileSystem(UnixFileSystemBase):
    """A behavioural model of Linux Ext2."""

    name = "ext2"
    cluster_pages = 2
    directory_scan_is_linear = True
    inode_size_bytes = 128
    metadata_cpu_factor = 1.0

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 4096,
        blocks_per_group: int = 32768,
    ) -> None:
        self._blocks_per_group = blocks_per_group
        super().__init__(capacity_bytes, block_size)

    def _make_allocator(self) -> BlockGroupAllocator:
        return BlockGroupAllocator(
            total_blocks=self.total_blocks,
            blocks_per_group=self._blocks_per_group,
        )
