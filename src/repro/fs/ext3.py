"""Ext3 model: Ext2 plus a write-ahead journal.

Ext3 shares Ext2's on-disk layout but journals metadata (and optionally
data).  Three journaling modes are modelled, matching the mount options:

* ``ordered`` (default) -- metadata is journaled; data blocks are written
  before the transaction commits.
* ``writeback`` -- metadata journaled, data ordering not enforced (cheapest).
* ``journal`` -- data blocks are also copied through the journal (most
  expensive, doubles data writes).

For the random-read case study the journal is irrelevant; it matters for the
meta-data dimension of the nano-benchmark suite, where Ext3's create/delete
costs exceed Ext2's.  Ext3 also uses a slightly larger cluster read
(16 KiB) than our Ext2 model, reflecting its more aggressive readahead of
indirect blocks and data, which is what separates the two during the Figure-2
cache warm-up.
"""

from __future__ import annotations

from enum import Enum
from typing import List

from repro.fs.base import OperationCost
from repro.fs.ext2 import Ext2FileSystem
from repro.fs.journal import Journal, Transaction


class JournalMode(str, Enum):
    """Ext3/Ext4 journaling modes (the ``data=`` mount option)."""

    ORDERED = "ordered"
    WRITEBACK = "writeback"
    JOURNAL = "journal"


def commit_journal_transaction(
    fs, metadata_blocks: List[int], journal_mode: "JournalMode", journal_cpu_ns: float
) -> OperationCost:
    """Commit ``metadata_blocks`` to ``fs.journal`` and price the commit.

    The commit tail shared by the Ext3 and Ext4 models: build the
    transaction (with bounded data logging in ``data=journal`` mode), commit
    it, and account CPU, device requests, barrier and stats on ``fs``.
    """
    transaction = Transaction()
    for block in metadata_blocks:
        transaction.add_block(block)
    if journal_mode is JournalMode.JOURNAL:
        # Data journaling also logs (a bounded number of) data blocks.
        transaction.data_blocks = min(16, len(metadata_blocks) * 2)
    requests, needs_barrier = fs.journal.commit(transaction)
    cost = OperationCost(cpu_ns=fs._cpu(journal_cpu_ns))
    cost.device_requests.extend(requests)
    if needs_barrier:
        cost.flushes += 1
    fs.stats.journal_commits += 1
    return cost


class Ext3FileSystem(Ext2FileSystem):
    """A behavioural model of Linux Ext3 (Ext2 layout + journaling)."""

    name = "ext3"
    cluster_pages = 4
    metadata_cpu_factor = 1.25

    #: CPU cost of journal bookkeeping per transaction (handle + buffers).
    _JOURNAL_CPU_NS = 2_000.0

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 4096,
        blocks_per_group: int = 32768,
        journal_size_bytes: int = 32 * 1024 * 1024,
        journal_mode: JournalMode = JournalMode.ORDERED,
        use_barriers: bool = True,
    ) -> None:
        super().__init__(capacity_bytes, block_size, blocks_per_group)
        self.journal_mode = JournalMode(journal_mode)
        journal_blocks = max(8, journal_size_bytes // block_size)
        # Reserve the journal right after the inode table region.
        journal_start = self._INODE_TABLE_START_BLOCK + 4096
        self.journal = Journal(
            start_block=journal_start,
            size_blocks=journal_blocks,
            block_size=block_size,
            use_barriers=use_barriers,
        )

    def _journal_transaction(self, metadata_blocks: List[int]) -> OperationCost:
        return commit_journal_transaction(
            self, metadata_blocks, self.journal_mode, self._JOURNAL_CPU_NS
        )

    def fsync_cost(self, inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        cost = OperationCost(cpu_ns=self._cpu(self._FSYNC_BASE_NS))
        # fsync forces a journal commit covering the inode's metadata.
        cost = cost.merge(self._journal_transaction([self._inode_table_block(inode.number)]))
        if self.journal_mode is JournalMode.ORDERED and dirty_data_pages:
            # Ordered mode: data must reach the device before the commit record;
            # the VFS writes the data pages, we only account the ordering flush.
            cost.flushes += 1
        self.stats.metadata_writes += 1
        return cost
