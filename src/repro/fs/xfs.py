"""XFS model: extent-based allocation, B-tree directories, logging.

The traits that distinguish the XFS model from Ext2/Ext3 in the case study
and in the wider nano-benchmark suite:

* extent allocation over a few large allocation groups -- big files stay
  contiguous, so sequential (on-disk dimension) reads seek less;
* B-tree directories -- lookup cost grows logarithmically with directory
  size instead of linearly;
* larger cluster reads (32 KiB) -- each random-read miss populates more of
  the page cache, so XFS warms up fastest in Figure 2;
* a metadata log (smaller transactions than ext3's journal, no data logging);
* delayed allocation -- writes reserve space but real allocation happens at
  writeback/fsync time, batched into fewer, larger extents.
"""

from __future__ import annotations

from typing import List

from repro.fs.allocation import ExtentAllocator
from repro.fs.base import Inode, OperationCost
from repro.fs.common import UnixFileSystemBase
from repro.fs.journal import Journal, Transaction


class XfsFileSystem(UnixFileSystemBase):
    """A behavioural model of XFS."""

    name = "xfs"
    cluster_pages = 8
    directory_scan_is_linear = False
    inode_size_bytes = 512
    metadata_cpu_factor = 1.1

    _LOG_CPU_NS = 1_200.0

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 4096,
        allocation_groups: int = 4,
        log_size_bytes: int = 64 * 1024 * 1024,
        use_barriers: bool = True,
        delayed_allocation: bool = True,
    ) -> None:
        self._allocation_groups = allocation_groups
        super().__init__(capacity_bytes, block_size)
        log_blocks = max(8, log_size_bytes // block_size)
        self.log = Journal(
            start_block=self._INODE_TABLE_START_BLOCK + 8192,
            size_blocks=log_blocks,
            block_size=block_size,
            use_barriers=use_barriers,
        )
        self.delayed_allocation = delayed_allocation
        #: Bytes reserved (delalloc) but not yet allocated, per inode number.
        self._delalloc_reservations: dict = {}

    def _make_allocator(self) -> ExtentAllocator:
        return ExtentAllocator(
            total_blocks=self.total_blocks,
            allocation_groups=self._allocation_groups,
        )

    # ------------------------------------------------------------- logging
    def _journal_transaction(self, metadata_blocks: List[int]) -> OperationCost:
        transaction = Transaction()
        for block in metadata_blocks:
            transaction.add_block(block)
        requests, needs_barrier = self.log.commit(transaction)
        cost = OperationCost(cpu_ns=self._cpu(self._LOG_CPU_NS))
        cost.device_requests.extend(requests)
        if needs_barrier:
            cost.flushes += 1
        self.stats.journal_commits += 1
        return cost

    # ------------------------------------------------------ delayed alloc
    def allocate_range(
        self, inode: Inode, offset_bytes: int, nbytes: int, now_ns: float
    ) -> OperationCost:
        if not self.delayed_allocation:
            return super().allocate_range(inode, offset_bytes, nbytes, now_ns)

        # Reserve now, allocate at flush time: extend the logical size and
        # remember the reservation; the actual extents are created lazily.
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        end = offset_bytes + nbytes
        reserved = self._delalloc_reservations.get(inode.number, 0)
        already_mapped_bytes = inode.blocks_allocated() * self.block_size
        new_reservation = max(reserved, end - already_mapped_bytes)
        self._delalloc_reservations[inode.number] = max(0, new_reservation)
        if end > inode.size_bytes:
            inode.size_bytes = end
        inode.mtime_ns = now_ns
        # Reservation is cheap: in-memory bookkeeping only.
        return OperationCost(cpu_ns=self._cpu(900.0))

    def flush_delalloc(self, inode: Inode, now_ns: float) -> OperationCost:
        """Convert outstanding reservations into real, contiguous extents."""
        reserved = self._delalloc_reservations.pop(inode.number, 0)
        if reserved <= 0:
            return OperationCost()
        start_byte = inode.blocks_allocated() * self.block_size
        return super().allocate_range(inode, start_byte, reserved, now_ns)

    def map_read(self, inode: Inode, first_page: int, page_count: int):
        # Reads force delayed allocations to materialise first (like a flush).
        if self.delayed_allocation and self._delalloc_reservations.get(inode.number):
            self.flush_delalloc(inode, inode.mtime_ns)
        return super().map_read(inode, first_page, page_count)

    def fsync_cost(self, inode: Inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        cost = OperationCost(cpu_ns=self._cpu(self._FSYNC_BASE_NS))
        if self.delayed_allocation:
            cost = cost.merge(self.flush_delalloc(inode, now_ns))
        cost = cost.merge(self._journal_transaction([self._inode_table_block(inode.number)]))
        self.stats.metadata_writes += 1
        return cost
