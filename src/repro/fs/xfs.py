"""XFS model: extent-based allocation, B-tree directories, logging.

The traits that distinguish the XFS model from Ext2/Ext3 in the case study
and in the wider nano-benchmark suite:

* extent allocation over a few large allocation groups -- big files stay
  contiguous, so sequential (on-disk dimension) reads seek less;
* B-tree directories -- lookup cost grows logarithmically with directory
  size instead of linearly;
* larger cluster reads (32 KiB) -- each random-read miss populates more of
  the page cache, so XFS warms up fastest in Figure 2;
* a metadata log (smaller transactions than ext3's journal, no data logging);
* delayed allocation -- writes reserve space but real allocation happens at
  writeback/fsync time, batched into fewer, larger extents (shared with the
  Ext4 model via :class:`~repro.fs.common.DelayedAllocationMixin`).
"""

from __future__ import annotations

from typing import List

from repro.fs.allocation import ExtentAllocator
from repro.fs.base import Inode, OperationCost
from repro.fs.common import DelayedAllocationMixin, UnixFileSystemBase
from repro.fs.journal import Journal, Transaction


class XfsFileSystem(DelayedAllocationMixin, UnixFileSystemBase):
    """A behavioural model of XFS."""

    name = "xfs"
    cluster_pages = 8
    directory_scan_is_linear = False
    inode_size_bytes = 512
    metadata_cpu_factor = 1.1

    _LOG_CPU_NS = 1_200.0

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 4096,
        allocation_groups: int = 4,
        log_size_bytes: int = 64 * 1024 * 1024,
        use_barriers: bool = True,
        delayed_allocation: bool = True,
    ) -> None:
        self._allocation_groups = allocation_groups
        super().__init__(capacity_bytes, block_size)
        log_blocks = max(8, log_size_bytes // block_size)
        self.log = Journal(
            start_block=self._INODE_TABLE_START_BLOCK + 8192,
            size_blocks=log_blocks,
            block_size=block_size,
            use_barriers=use_barriers,
        )
        self._init_delalloc(delayed_allocation)

    def _make_allocator(self) -> ExtentAllocator:
        return ExtentAllocator(
            total_blocks=self.total_blocks,
            allocation_groups=self._allocation_groups,
        )

    # ------------------------------------------------------------- logging
    def _journal_transaction(self, metadata_blocks: List[int]) -> OperationCost:
        transaction = Transaction()
        for block in metadata_blocks:
            transaction.add_block(block)
        requests, needs_barrier = self.log.commit(transaction)
        cost = OperationCost(cpu_ns=self._cpu(self._LOG_CPU_NS))
        cost.device_requests.extend(requests)
        if needs_barrier:
            cost.flushes += 1
        self.stats.journal_commits += 1
        return cost

    # -------------------------------------------------------------- fsync
    def fsync_cost(self, inode: Inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        cost = OperationCost(cpu_ns=self._cpu(self._FSYNC_BASE_NS))
        if self.delayed_allocation:
            cost = cost.merge(self.flush_delalloc(inode, now_ns))
        cost = cost.merge(self._journal_transaction([self._inode_table_block(inode.number)]))
        self.stats.metadata_writes += 1
        return cost
