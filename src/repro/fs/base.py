"""Core file system abstractions: inodes, extents, directories, errors.

The file system models in this package are *behavioural*: they track the
block layout, metadata structure and CPU costs of each operation without
storing any user data.  What matters for benchmarking is **where** data lives
on the device and **how much work** each operation does -- not the bytes
themselves.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricSource
from repro.storage.device import IORequest


class FsError(Exception):
    """Base class for file system errors."""


class NoSpaceError(FsError):
    """The device (or an allocation group) is out of space (ENOSPC)."""


class NotFoundError(FsError):
    """A path component does not exist (ENOENT)."""


class ExistsError(FsError):
    """The target already exists (EEXIST)."""


class NotADirectoryError_(FsError):
    """A non-directory was used as a directory (ENOTDIR)."""


class IsADirectoryError_(FsError):
    """A directory was used where a regular file was required (EISDIR)."""


class NotEmptyError(FsError):
    """Attempt to remove a non-empty directory (ENOTEMPTY)."""


class InodeType(str, Enum):
    """File types supported by the simulated file systems."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks mapping file blocks to device blocks.

    Attributes
    ----------
    file_block:
        First file-relative block covered by this extent.
    device_block:
        Device block backing ``file_block``.
    count:
        Number of consecutive blocks in the run.
    """

    file_block: int
    device_block: int
    count: int

    def __post_init__(self) -> None:
        if self.file_block < 0 or self.device_block < 0:
            raise ValueError("block numbers must be non-negative")
        if self.count <= 0:
            raise ValueError("extent count must be positive")

    @property
    def file_end(self) -> int:
        """One past the last file block covered."""
        return self.file_block + self.count

    def device_block_for(self, file_block: int) -> int:
        """Device block backing ``file_block`` (must lie inside the extent)."""
        if not (self.file_block <= file_block < self.file_end):
            raise ValueError(f"file block {file_block} outside extent {self}")
        return self.device_block + (file_block - self.file_block)


@dataclass
class DirectoryEntry:
    """A name -> inode link inside a directory."""

    name: str
    inode_number: int
    inode_type: InodeType


@dataclass
class Inode:
    """An inode: metadata plus the extent map of a file or directory.

    The extent list is kept sorted by ``file_block``; :meth:`lookup_extent`
    does a binary search over it.
    """

    number: int
    inode_type: InodeType
    size_bytes: int = 0
    nlink: int = 1
    atime_ns: float = 0.0
    mtime_ns: float = 0.0
    ctime_ns: float = 0.0
    extents: List[Extent] = field(default_factory=list)
    #: Directory contents (only for directories).
    entries: Dict[str, DirectoryEntry] = field(default_factory=dict)
    #: Symlink target (only for symlinks).
    symlink_target: Optional[str] = None

    # ------------------------------------------------------------- geometry
    def blocks_allocated(self) -> int:
        """Total number of device blocks backing this inode."""
        return sum(extent.count for extent in self.extents)

    def file_blocks(self, block_size: int) -> int:
        """Number of file blocks implied by the logical size."""
        return (self.size_bytes + block_size - 1) // block_size

    def fragmentation(self) -> int:
        """Number of discontiguities in the on-device layout.

        A perfectly laid out file has fragmentation 0; each break in physical
        contiguity adds one.  On-disk-layout nano-benchmarks report this.
        """
        breaks = 0
        for prev, cur in zip(self.extents, self.extents[1:]):
            if cur.device_block != prev.device_block + prev.count:
                breaks += 1
        return breaks

    # -------------------------------------------------------------- mapping
    def add_extent(self, extent: Extent) -> None:
        """Insert an extent, merging with a physically adjacent predecessor."""
        if self.extents:
            last = self.extents[-1]
            if (
                extent.file_block == last.file_end
                and extent.device_block == last.device_block + last.count
            ):
                self.extents[-1] = Extent(
                    file_block=last.file_block,
                    device_block=last.device_block,
                    count=last.count + extent.count,
                )
                return
            if extent.file_block < last.file_end:
                raise ValueError(
                    f"extent {extent} overlaps or precedes existing mapping ending at "
                    f"{last.file_end}"
                )
        self.extents.append(extent)

    def lookup_extent(self, file_block: int) -> Optional[Extent]:
        """Return the extent containing ``file_block`` or None if it is a hole."""
        if not self.extents:
            return None
        starts = [extent.file_block for extent in self.extents]
        idx = bisect.bisect_right(starts, file_block) - 1
        if idx < 0:
            return None
        extent = self.extents[idx]
        if extent.file_block <= file_block < extent.file_end:
            return extent
        return None

    def iter_device_runs(self, file_block: int, count: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(device_block, run_length)`` pairs covering a file-block range.

        Holes (unmapped blocks) are skipped -- reading a hole costs nothing at
        the device and returns zeroes, like a sparse file.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        remaining = count
        block = file_block
        while remaining > 0:
            extent = self.lookup_extent(block)
            if extent is None:
                # Hole: skip to the next mapped extent, if any.
                nxt = self._next_mapped_block(block)
                if nxt is None or nxt >= file_block + count:
                    return
                remaining -= nxt - block
                block = nxt
                continue
            run = min(remaining, extent.file_end - block)
            yield (extent.device_block_for(block), run)
            block += run
            remaining -= run

    def _next_mapped_block(self, file_block: int) -> Optional[int]:
        starts = [extent.file_block for extent in self.extents]
        idx = bisect.bisect_left(starts, file_block)
        if idx >= len(self.extents):
            return None
        return self.extents[idx].file_block

    def truncate_extents(self, keep_blocks: int) -> List[Extent]:
        """Drop mappings beyond ``keep_blocks`` file blocks; return what was freed."""
        if keep_blocks < 0:
            raise ValueError("keep_blocks must be non-negative")
        kept: List[Extent] = []
        freed: List[Extent] = []
        for extent in self.extents:
            if extent.file_end <= keep_blocks:
                kept.append(extent)
            elif extent.file_block >= keep_blocks:
                freed.append(extent)
            else:
                keep_count = keep_blocks - extent.file_block
                kept.append(
                    Extent(extent.file_block, extent.device_block, keep_count)
                )
                freed.append(
                    Extent(
                        extent.file_block + keep_count,
                        extent.device_block + keep_count,
                        extent.count - keep_count,
                    )
                )
        self.extents = kept
        return freed

    @property
    def is_directory(self) -> bool:
        """True when the inode is a directory."""
        return self.inode_type is InodeType.DIRECTORY

    @property
    def is_regular(self) -> bool:
        """True when the inode is a regular file."""
        return self.inode_type is InodeType.REGULAR


@dataclass
class FileSystemStats(MetricSource):
    """Operation counters kept by each file system model."""

    creates: int = 0
    unlinks: int = 0
    mkdirs: int = 0
    rmdirs: int = 0
    renames: int = 0
    truncates: int = 0
    lookups: int = 0
    block_allocations: int = 0
    blocks_allocated: int = 0
    blocks_freed: int = 0
    journal_commits: int = 0
    metadata_reads: int = 0
    metadata_writes: int = 0


@dataclass
class OperationCost:
    """The cost of a single file system operation.

    Attributes
    ----------
    cpu_ns:
        Pure CPU time to charge (lookups, allocator work, journal bookkeeping).
    device_requests:
        Synchronous device requests that must complete before the operation
        returns (metadata reads, journal commits, data blocks for reads that
        miss the cache).
    dirty_page_keys:
        Page-cache keys that the operation made dirty (data and metadata
        writes -- these are written back later, asynchronously).
    cache_fill_keys:
        Page-cache keys that should be inserted clean as a result of the
        operation (e.g. cluster reads bringing neighbouring pages in).
    metadata_reads:
        ``(page_key, request)`` pairs for metadata the operation needs: the
        VFS performs the device read only when the key misses the page cache
        and inserts it afterwards.  This is how metadata caching (and the
        paper's observation that meta-data benchmarks silently become caching
        benchmarks) is modelled.
    discard_requests:
        Discard (TRIM) requests for device extents the operation freed
        (unlink, rmdir, truncate).  The file system always records them; the
        VFS forwards them only when the device advertises discard support and
        silently drops them otherwise -- exactly like the real block layer --
        so devices without TRIM keep bit-identical behaviour.
    """

    cpu_ns: float = 0.0
    device_requests: List[IORequest] = field(default_factory=list)
    dirty_page_keys: List[Tuple[int, int]] = field(default_factory=list)
    cache_fill_keys: List[Tuple[int, int]] = field(default_factory=list)
    metadata_reads: List[Tuple[Tuple[int, int], IORequest]] = field(default_factory=list)
    discard_requests: List[IORequest] = field(default_factory=list)
    #: Number of device cache flushes (write barriers) the operation requires.
    flushes: int = 0

    def merge(self, other: "OperationCost") -> "OperationCost":
        """Combine two costs into a new one (used by composite operations)."""
        return OperationCost(
            cpu_ns=self.cpu_ns + other.cpu_ns,
            device_requests=self.device_requests + other.device_requests,
            dirty_page_keys=self.dirty_page_keys + other.dirty_page_keys,
            cache_fill_keys=self.cache_fill_keys + other.cache_fill_keys,
            metadata_reads=self.metadata_reads + other.metadata_reads,
            discard_requests=self.discard_requests + other.discard_requests,
            flushes=self.flushes + other.flushes,
        )


class FileSystem(ABC):
    """Interface implemented by the Ext2, Ext3 and XFS models.

    A file system owns the namespace (directories, inodes) and the mapping
    from file offsets to device blocks.  It never talks to the device or the
    page cache directly; instead each operation returns an
    :class:`OperationCost` that the VFS executes against the cache, the block
    device and the virtual clock.  This separation keeps the file system
    models small and makes their costs independently testable.
    """

    #: Short machine-readable name ("ext2", "ext3", "ext4", "xfs").
    name: str = "abstract"

    #: Number of pages brought in per cache miss (cluster read size).
    cluster_pages: int = 2

    def __init__(self, capacity_bytes: int, block_size: int = 4096) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        self.capacity_bytes = int(capacity_bytes)
        self.block_size = int(block_size)
        self.total_blocks = capacity_bytes // block_size
        self.stats = FileSystemStats()
        self._inodes: Dict[int, Inode] = {}
        self._next_inode = 2  # inode 1 is reserved, 2 is the root, like ext2
        self._root = self._new_inode(InodeType.DIRECTORY)

    # ----------------------------------------------------------- inode pool
    def _new_inode(self, inode_type: InodeType) -> Inode:
        inode = Inode(number=self._next_inode, inode_type=inode_type)
        self._inodes[inode.number] = inode
        self._next_inode += 1
        return inode

    @property
    def root(self) -> Inode:
        """The root directory inode."""
        return self._root

    def inode(self, number: int) -> Inode:
        """Look up an inode by number; raises :class:`NotFoundError` if absent."""
        try:
            return self._inodes[number]
        except KeyError:
            raise NotFoundError(f"no inode {number}") from None

    def inode_count(self) -> int:
        """Number of live inodes (including directories and the root)."""
        return len(self._inodes)

    # ------------------------------------------------------------ namespace
    def resolve(self, path: str) -> Inode:
        """Resolve an absolute path to an inode (no cost accounting).

        The VFS charges path-walk costs separately; this helper only performs
        the structural traversal.
        """
        inode, _, name = self._walk_parent(path)
        if name == "":
            return inode
        entry = inode.entries.get(name)
        if entry is None:
            raise NotFoundError(path)
        return self.inode(entry.inode_number)

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves to an inode."""
        try:
            self.resolve(path)
            return True
        except FsError:
            return False

    def _walk_parent(self, path: str) -> Tuple[Inode, List[str], str]:
        """Return (parent inode, components walked, final component)."""
        if not path.startswith("/"):
            raise ValueError(f"paths must be absolute: {path!r}")
        components = [c for c in path.split("/") if c]
        if not components:
            return (self._root, [], "")
        current = self._root
        walked: List[str] = []
        for component in components[:-1]:
            entry = current.entries.get(component)
            if entry is None:
                raise NotFoundError("/" + "/".join(walked + [component]))
            nxt = self.inode(entry.inode_number)
            if not nxt.is_directory:
                raise NotADirectoryError_("/" + "/".join(walked + [component]))
            current = nxt
            walked.append(component)
        return (current, walked, components[-1])

    def path_depth(self, path: str) -> int:
        """Number of components in an absolute path (used for lookup costs)."""
        return len([c for c in path.split("/") if c])

    def list_directory(self, path: str) -> List[DirectoryEntry]:
        """Return the entries of a directory, sorted by name."""
        inode = self.resolve(path)
        if not inode.is_directory:
            raise NotADirectoryError_(path)
        return sorted(inode.entries.values(), key=lambda e: e.name)

    # --------------------------------------------------------- FS interface
    @abstractmethod
    def create(self, path: str, now_ns: float) -> Tuple[Inode, OperationCost]:
        """Create an empty regular file and return it with the operation cost."""

    @abstractmethod
    def mkdir(self, path: str, now_ns: float) -> Tuple[Inode, OperationCost]:
        """Create a directory."""

    @abstractmethod
    def unlink(self, path: str, now_ns: float) -> OperationCost:
        """Remove a regular file (or symlink)."""

    @abstractmethod
    def rmdir(self, path: str, now_ns: float) -> OperationCost:
        """Remove an empty directory."""

    @abstractmethod
    def rename(self, old_path: str, new_path: str, now_ns: float) -> OperationCost:
        """Rename/move a file or directory."""

    @abstractmethod
    def allocate_range(
        self, inode: Inode, offset_bytes: int, nbytes: int, now_ns: float
    ) -> OperationCost:
        """Ensure blocks exist for ``[offset, offset+nbytes)`` (called on writes)."""

    def truncate(self, path: str, size_bytes: int, now_ns: float) -> OperationCost:
        """Shrink or extend a regular file to ``size_bytes``.

        Shrinking frees the blocks beyond the new size (and records discards
        for them); extending only grows the logical size (a hole, like
        ``ftruncate``).  Concrete models implement this; the base raises so
        minimal custom file systems remain constructible without it.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement truncate")

    @abstractmethod
    def map_read(self, inode: Inode, first_page: int, page_count: int) -> List[IORequest]:
        """Device requests needed to read the given page range from disk."""

    @abstractmethod
    def lookup_cost(self, path: str) -> OperationCost:
        """Cost of resolving ``path`` (directory traversal CPU + metadata reads)."""

    @abstractmethod
    def fsync_cost(self, inode: Inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        """Cost of making an inode durable, excluding the data-page writes themselves."""

    # ------------------------------------------------------------ utilities
    def free_blocks(self) -> int:
        """Number of unallocated data blocks remaining."""
        raise NotImplementedError

    def utilization(self) -> float:
        """Fraction of data blocks currently allocated."""
        free = self.free_blocks()
        return 1.0 - free / max(1, self.total_blocks)

    def __repr__(self) -> str:
        gib = self.capacity_bytes / (1024 ** 3)
        return f"{type(self).__name__}({gib:.0f}GiB, block={self.block_size})"
