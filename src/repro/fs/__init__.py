"""Simulated file systems.

The case study in the paper runs against Linux Ext2, Ext3 and XFS.  This
subpackage provides behavioural models of those file systems sufficient to
reproduce the case study and to support the wider nano-benchmark suite:

* :mod:`repro.fs.base` -- inodes, extents, directories and the
  :class:`~repro.fs.base.FileSystem` interface.
* :mod:`repro.fs.allocation` -- bitmap (block-group) and extent allocators.
* :mod:`repro.fs.journal` -- a write-ahead journal used by the Ext3 and XFS
  models.
* :mod:`repro.fs.ext2`, :mod:`repro.fs.ext3`, :mod:`repro.fs.xfs` -- the three
  file systems of the case study -- plus :mod:`repro.fs.ext4`, the survey-era
  hybrid (ext3's ordered journal over extents + delayed allocation).
* :mod:`repro.fs.vfs` -- the VFS layer that glues path lookup, the page
  cache, readahead, the file system and the block device together and charges
  every operation's latency to the virtual clock.
* :mod:`repro.fs.stack` -- one-call construction of a complete simulated
  storage stack.
"""

from repro.fs.base import (
    DirectoryEntry,
    Extent,
    FileSystem,
    FileSystemStats,
    Inode,
    InodeType,
    FsError,
    NoSpaceError,
    NotFoundError,
    ExistsError,
    NotADirectoryError_,
    IsADirectoryError_,
)
from repro.fs.ext2 import Ext2FileSystem
from repro.fs.ext3 import Ext3FileSystem, JournalMode
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.xfs import XfsFileSystem
from repro.fs.stack import StorageStack, build_stack, DEFAULT_FS_TYPES, FS_REGISTRY
from repro.fs.vfs import VFS, OpenFile

__all__ = [
    "DirectoryEntry",
    "Extent",
    "FileSystem",
    "FileSystemStats",
    "Inode",
    "InodeType",
    "FsError",
    "NoSpaceError",
    "NotFoundError",
    "ExistsError",
    "NotADirectoryError_",
    "IsADirectoryError_",
    "Ext2FileSystem",
    "Ext3FileSystem",
    "Ext4FileSystem",
    "JournalMode",
    "XfsFileSystem",
    "StorageStack",
    "build_stack",
    "DEFAULT_FS_TYPES",
    "FS_REGISTRY",
    "VFS",
    "OpenFile",
]
