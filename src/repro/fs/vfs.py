"""The VFS layer: where file system, page cache and device meet.

Every workload operation enters through :class:`VFS`.  The VFS

* charges the software-path CPU costs (syscall entry, page lookup, copyout),
* consults the page cache and, on misses, asks the file system for the
  device requests needed to fault the data in (cluster reads included),
* runs the readahead state machine and issues asynchronous prefetches,
* executes metadata operations by interpreting the
  :class:`~repro.fs.base.OperationCost` objects the file system returns,
* applies dirty-page throttling and background writeback, and
* advances the shared :class:`~repro.storage.clock.VirtualClock` by the
  total latency of each call, returning that latency to the caller so the
  benchmark layer can histogram it.

The device is modelled as a single-queue resource: asynchronous work
(readahead, writeback) occupies the device into the future, and synchronous
misses must wait for it.  This keeps aggregate throughput bounded by device
bandwidth without a full event-driven scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fs.base import (
    FileSystem,
    Inode,
    IsADirectoryError_,
    NotFoundError,
    OperationCost,
)
from repro.fs.common import (
    BITMAP_PSEUDO_INO,
    INODE_TABLE_PSEUDO_INO,
    MAPPING_PSEUDO_INO,
)
from repro.obs.metrics import MetricSource
from repro.storage.cache import PageCache
from repro.storage.clock import VirtualClock
from repro.storage.config import CpuCosts
from repro.storage.device import BlockDevice, IORequest
from repro.storage.readahead import (
    DEFAULT_READAHEAD,
    ReadaheadPolicy,
    ReadaheadState,
    cluster_range,
)

PageKey = Tuple[int, int]


@dataclass
class VfsStats(MetricSource):
    """Counters for the operations served by a VFS instance."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    creates: int = 0
    unlinks: int = 0
    truncates: int = 0
    opens: int = 0
    stats_calls: int = 0
    fsyncs: int = 0
    readahead_pages: int = 0
    writeback_pages: int = 0
    throttle_events: int = 0
    #: Discard requests issued to the device (0 when it lacks TRIM support).
    discards_issued: int = 0
    #: Discard requests dropped because the device does not support TRIM.
    discards_dropped: int = 0


class OpenFile:
    """An entry in the open-file table."""

    __slots__ = ("fd", "inode", "path", "position", "readahead")

    def __init__(self, fd: int, inode: Inode, path: str, readahead: ReadaheadState) -> None:
        self.fd = fd
        self.inode = inode
        self.path = path
        self.position = 0
        self.readahead = readahead


class VFS:
    """Virtual file system switch for one mounted simulated file system.

    Parameters
    ----------
    fs:
        The mounted file system model.
    cache:
        The page cache shared by data and metadata pages.
    device:
        The block device backing the file system.
    clock:
        The virtual clock all latencies are charged to.
    cpu:
        Software-path CPU costs.
    rng:
        Random source for latency jitter and device service times.
    readahead_policy:
        Sequential readahead policy applied to every open file.
    dirty_ratio:
        Fraction of the cache that may be dirty before writers are throttled.
    dirty_background_ratio:
        Dirty fraction beyond which writeback is started opportunistically.
    cpu_speed_factor:
        Multiplier on all CPU costs; the benchmark runner perturbs this
        slightly between repetitions to model background system noise.
    """

    def __init__(
        self,
        fs: FileSystem,
        cache: PageCache,
        device: BlockDevice,
        clock: VirtualClock,
        cpu: Optional[CpuCosts] = None,
        rng: Optional[random.Random] = None,
        readahead_policy: ReadaheadPolicy = DEFAULT_READAHEAD,
        dirty_ratio: float = 0.20,
        dirty_background_ratio: float = 0.10,
        cpu_speed_factor: float = 1.0,
    ) -> None:
        if not (0.0 < dirty_background_ratio <= dirty_ratio <= 1.0):
            raise ValueError("require 0 < dirty_background_ratio <= dirty_ratio <= 1")
        if cpu_speed_factor <= 0:
            raise ValueError("cpu_speed_factor must be positive")
        self.fs = fs
        self.cache = cache
        self.device = device
        self.clock = clock
        self.cpu = cpu if cpu is not None else CpuCosts()
        self.rng = rng if rng is not None else random.Random(0)
        self.readahead_policy = readahead_policy
        self.dirty_ratio = dirty_ratio
        self.dirty_background_ratio = dirty_background_ratio
        self.cpu_speed_factor = cpu_speed_factor
        self.stats = VfsStats()
        #: Optional :class:`repro.obs.Tracer`; ``None`` keeps tracing a
        #: single attribute check on every hot path.
        self.tracer = None

        self.page_size = cache.page_size
        self._page_shift = self.page_size.bit_length() - 1
        self._open_files: Dict[int, OpenFile] = {}
        self._next_fd = 3
        self._device_busy_until_ns = 0.0
        #: Map from pseudo-metadata page keys to device offsets for writeback.
        self._writeback_batch_pages = 512

    # ------------------------------------------------------------------ CPU
    def _cpu_ns(self, base_ns: float) -> float:
        """Apply the speed factor and log-normal jitter to a CPU cost."""
        jitter = self.rng.lognormvariate(0.0, self.cpu.jitter_sigma) if self.cpu.jitter_sigma else 1.0
        latency = base_ns * self.cpu_speed_factor * jitter
        if self.tracer is not None:
            self.tracer.cpu(latency)
        return latency

    def _copy_cost_ns(self, nbytes: int) -> float:
        pages = max(1, -(-nbytes // 4096))
        return self.cpu.page_copy_ns_per_4k * pages

    # --------------------------------------------------------------- device
    def _device_wait_and_service(self, requests: List[IORequest]) -> float:
        """Synchronously execute requests, honouring outstanding async work."""
        if not requests:
            return 0.0
        service = self.device.submit(requests, self.rng)
        now = self.clock.now_ns
        queue_wait = max(0.0, self._device_busy_until_ns - now)
        self._device_busy_until_ns = max(now, self._device_busy_until_ns) + service
        if self.tracer is not None:
            # Time spent blocked behind a device kept busy by readahead,
            # writeback or other clients: the "cache" stall category.
            self.tracer.queue_wait(queue_wait)
        return queue_wait + service

    def _device_async(self, requests: List[IORequest]) -> None:
        """Queue asynchronous work: occupies the device but nobody waits now."""
        if not requests:
            return
        if self.tracer is not None:
            # Fire-and-forget: the tracer keeps these on the timeline but out
            # of attribution, since their cost reaches ops only as queue wait.
            self.tracer.push_context("async", async_=True)
            try:
                service = self.device.submit(requests, self.rng)
            finally:
                self.tracer.pop_context()
        else:
            service = self.device.submit(requests, self.rng)
        now = self.clock.now_ns
        self._device_busy_until_ns = max(now, self._device_busy_until_ns) + service

    # ------------------------------------------------------------- open/close
    def open(self, path: str, create: bool = False) -> int:
        """Open a file, optionally creating it; returns a file descriptor.

        The cost of the path walk (and of ``create`` when requested) is
        charged to the clock.
        """
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        latency += self._cpu_ns(self.cpu.path_component_lookup_ns * max(1, self.fs.path_depth(path)))
        if create and not self.fs.exists(path):
            inode, cost = self.fs.create(path, self.clock.now_ns)
            latency += self._apply_cost(cost)
            self.stats.creates += 1
        else:
            inode = self.fs.resolve(path)
        if inode.is_directory:
            raise IsADirectoryError_(path)
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = OpenFile(fd, inode, path, ReadaheadState(self.readahead_policy))
        self.stats.opens += 1
        self.clock.advance(latency)
        return fd

    def open_uncharged(self, path: str) -> int:
        """Open a file without charging any time (benchmark setup helper).

        Used when building filesets "outside" the measured timeline; the
        returned descriptor behaves exactly like one from :meth:`open`.
        """
        inode = self.fs.resolve(path)
        if inode.is_directory:
            raise IsADirectoryError_(path)
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = OpenFile(fd, inode, path, ReadaheadState(self.readahead_policy))
        return fd

    def close_uncharged(self, fd: int) -> None:
        """Drop a descriptor without charging any time (setup helper)."""
        self._open_files.pop(fd, None)

    def close(self, fd: int) -> float:
        """Close a file descriptor (cheap; returns the latency charged)."""
        self._open_files.pop(fd, None)
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns / 2)
        self.clock.advance(latency)
        return latency

    def open_file(self, fd: int) -> OpenFile:
        """Return the open-file entry for ``fd`` (raises KeyError if closed)."""
        return self._open_files[fd]

    # ---------------------------------------------------------------- reads
    def read(self, fd: int, nbytes: int, offset: Optional[int] = None) -> float:
        """Read ``nbytes`` at ``offset`` (or the current position).

        Returns the operation latency in nanoseconds; the virtual clock is
        advanced by the same amount.  Reading past end of file is clamped.
        """
        handle = self._open_files[fd]
        inode = handle.inode
        position = handle.position if offset is None else offset
        if position < 0 or nbytes <= 0:
            raise ValueError("offset must be >= 0 and nbytes > 0")

        end = min(position + nbytes, inode.size_bytes)
        if end <= position:
            # At or beyond EOF: only the syscall cost.
            latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
            self.clock.advance(latency)
            self.stats.reads += 1
            return latency

        first_page = position >> self._page_shift
        last_page = (end - 1) >> self._page_shift
        page_count = last_page - first_page + 1
        ino = inode.number
        cache = self.cache

        missing: List[int] = []
        for page in range(first_page, last_page + 1):
            if not cache.lookup((ino, page)):
                missing.append(page)

        # One jittered CPU charge covering syscall entry, page lookups and copyout.
        latency = self._cpu_ns(
            self.cpu.syscall_overhead_ns
            + self.cpu.page_lookup_ns * page_count
            + self._copy_cost_ns(end - position)
        )

        if missing:
            latency += self._fault_in(inode, missing)

        file_pages = self._file_pages(inode)
        ra_start, ra_count = handle.readahead.advise(first_page, page_count, file_pages)
        if ra_count:
            self._prefetch(inode, ra_start, ra_count)

        handle.position = end
        self.stats.reads += 1
        self.stats.bytes_read += end - position
        self.clock.advance(latency)
        return latency

    def _file_pages(self, inode: Inode) -> int:
        return max(1, -(-inode.size_bytes // self.page_size))

    def _fault_in(self, inode: Inode, missing_pages: List[int]) -> float:
        """Bring missing pages in via cluster reads; returns device latency."""
        file_pages = self._file_pages(inode)
        cluster = self.fs.cluster_pages
        ranges: List[Tuple[int, int]] = []
        for page in missing_pages:
            start, count = cluster_range(min(page, file_pages - 1), cluster, file_pages)
            if ranges and start <= ranges[-1][0] + ranges[-1][1]:
                prev_start, prev_count = ranges[-1]
                new_end = max(prev_start + prev_count, start + count)
                ranges[-1] = (prev_start, new_end - prev_start)
            else:
                ranges.append((start, count))

        requests: List[IORequest] = []
        ino = inode.number
        cache = self.cache
        evicted_dirty: List[PageKey] = []
        for start, count in ranges:
            requests.extend(self.fs.map_read(inode, start, count))
            for page in range(start, start + count):
                for victim, was_dirty in cache.insert((ino, page)):
                    if was_dirty:
                        evicted_dirty.append(victim)

        latency = self._device_wait_and_service(requests)
        if evicted_dirty:
            latency += self._writeback_keys(evicted_dirty, synchronous=True)
        return latency

    def _prefetch(self, inode: Inode, start_page: int, count: int) -> None:
        """Asynchronous readahead: populate the cache, occupy the device."""
        ino = inode.number
        cache = self.cache
        needed = [p for p in range(start_page, start_page + count) if not cache.peek((ino, p))]
        if not needed:
            return
        requests = self.fs.map_read(inode, needed[0], needed[-1] - needed[0] + 1)
        evicted_dirty: List[PageKey] = []
        for page in needed:
            for victim, was_dirty in cache.insert((ino, page)):
                if was_dirty:
                    evicted_dirty.append(victim)
        self._device_async(requests)
        if evicted_dirty:
            self._writeback_keys(evicted_dirty, synchronous=False)
        self.stats.readahead_pages += len(needed)

    # --------------------------------------------------------------- writes
    def write(self, fd: int, nbytes: int, offset: Optional[int] = None) -> float:
        """Write ``nbytes`` at ``offset`` (or the current position).

        Data lands dirty in the page cache; blocks are allocated as needed.
        Returns the latency in nanoseconds (including any throttling).
        """
        handle = self._open_files[fd]
        inode = handle.inode
        position = handle.position if offset is None else offset
        if position < 0 or nbytes <= 0:
            raise ValueError("offset must be >= 0 and nbytes > 0")
        end = position + nbytes

        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._cpu_ns(self._copy_cost_ns(nbytes))

        # Allocate backing blocks for any new part of the range.
        cost = self.fs.allocate_range(inode, position, nbytes, self.clock.now_ns)
        latency += self._apply_cost(cost)

        first_page = position >> self._page_shift
        last_page = (end - 1) >> self._page_shift
        ino = inode.number
        cache = self.cache

        # Partial first/last pages of an existing file require read-modify-write.
        rmw_pages: List[int] = []
        if position % self.page_size and not cache.peek((ino, first_page)):
            if inode.lookup_extent(first_page) is not None:
                rmw_pages.append(first_page)
        if end % self.page_size and last_page != first_page and not cache.peek((ino, last_page)):
            if inode.lookup_extent(last_page) is not None:
                rmw_pages.append(last_page)
        if rmw_pages:
            latency += self._fault_in(inode, rmw_pages)

        evicted_dirty: List[PageKey] = []
        for page in range(first_page, last_page + 1):
            for victim, was_dirty in cache.insert((ino, page), dirty=True):
                if was_dirty:
                    evicted_dirty.append(victim)
        if evicted_dirty:
            latency += self._writeback_keys(evicted_dirty, synchronous=True)

        latency += self._maybe_throttle()

        handle.position = end
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.clock.advance(latency)
        return latency

    def _maybe_throttle(self) -> float:
        """Dirty-page throttling: writers pay for writeback beyond the limits."""
        cache = self.cache
        if cache.capacity_pages == 0:
            return 0.0
        dirty_fraction = cache.dirty_pages / cache.capacity_pages
        if dirty_fraction < self.dirty_background_ratio:
            return 0.0
        keys = cache.dirty_keys()[: self._writeback_batch_pages]
        if dirty_fraction >= self.dirty_ratio:
            # Hard limit: the writer blocks until the batch is on the device.
            self.stats.throttle_events += 1
            return self._writeback_keys(keys, synchronous=True)
        self._writeback_keys(keys, synchronous=False)
        return 0.0

    def _writeback_keys(self, keys: List[PageKey], synchronous: bool) -> float:
        """Write dirty pages to the device; returns latency if synchronous."""
        if not keys:
            return 0.0
        requests: List[IORequest] = []
        for key in keys:
            requests.append(self._writeback_request(key))
            self.cache.clean(key)
        self.stats.writeback_pages += len(keys)
        requests.sort(key=lambda r: r.offset_bytes)
        if self.tracer is None:
            if synchronous:
                return self._device_wait_and_service(requests)
            self._device_async(requests)
            return 0.0
        self.tracer.push_context("writeback")
        try:
            if synchronous:
                return self._device_wait_and_service(requests)
            self._device_async(requests)
            return 0.0
        finally:
            self.tracer.pop_context()

    def _writeback_request(self, key: PageKey) -> IORequest:
        ino, index = key
        page_size = self.page_size
        if ino == INODE_TABLE_PSEUDO_INO:
            return IORequest(offset_bytes=index * self.fs.block_size, nbytes=page_size, is_write=True)
        if ino == BITMAP_PSEUDO_INO:
            offset = (8 + (index % 1024)) * self.fs.block_size
            return IORequest(offset_bytes=offset, nbytes=page_size, is_write=True)
        if ino == MAPPING_PSEUDO_INO:
            offset = (16384 + (index % 16384)) * self.fs.block_size
            return IORequest(offset_bytes=offset, nbytes=page_size, is_write=True)
        try:
            inode = self.fs.inode(ino)
        except NotFoundError:
            # The file was deleted with dirty pages outstanding; write nowhere
            # cheaply (a real kernel would simply drop them).
            return IORequest(offset_bytes=0, nbytes=page_size, is_write=True)
        extent = inode.lookup_extent(index)
        if extent is None:
            return IORequest(offset_bytes=0, nbytes=page_size, is_write=True)
        return IORequest(
            offset_bytes=extent.device_block_for(index) * self.fs.block_size,
            nbytes=page_size,
            is_write=True,
        )

    # ------------------------------------------------------------- metadata
    def _apply_cost(self, cost: OperationCost) -> float:
        """Execute an :class:`OperationCost`; returns the latency incurred."""
        latency = self._cpu_ns(cost.cpu_ns) if cost.cpu_ns else 0.0
        for key, request in cost.metadata_reads:
            if not self.cache.lookup(key):
                latency += self._device_wait_and_service([request])
                for victim, was_dirty in self.cache.insert(key):
                    if was_dirty:
                        latency += self._writeback_keys([victim], synchronous=True)
        for key in cost.cache_fill_keys:
            self.cache.insert(key)
        for key in cost.dirty_page_keys:
            evicted = self.cache.insert(key, dirty=True)
            for victim, was_dirty in evicted:
                if was_dirty:
                    latency += self._writeback_keys([victim], synchronous=True)
        if cost.device_requests:
            latency += self._device_wait_and_service(list(cost.device_requests))
        if cost.discard_requests:
            # Like the real block layer: discards reach the device only when
            # it advertises TRIM support; everything else drops them before
            # any accounting, so non-TRIM devices behave bit-identically
            # whether or not the file system issues discards.
            if self.device.supports_discard:
                self.stats.discards_issued += len(cost.discard_requests)
                latency += self._device_wait_and_service(list(cost.discard_requests))
            else:
                self.stats.discards_dropped += len(cost.discard_requests)
        for _ in range(cost.flushes):
            flush_ns = self.device.flush(self.rng)
            if self.tracer is not None:
                self.tracer.flush(flush_ns)
            latency += flush_ns
        return latency

    def create(self, path: str) -> float:
        """Create an empty file; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        inode, cost = self.fs.create(path, self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.stats.creates += 1
        self.clock.advance(latency)
        return latency

    def mkdir(self, path: str) -> float:
        """Create a directory; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        _, cost = self.fs.mkdir(path, self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.clock.advance(latency)
        return latency

    def unlink(self, path: str) -> float:
        """Remove a file; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        inode = self.fs.resolve(path)
        self.cache.invalidate_inode(inode.number)
        cost = self.fs.unlink(path, self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.stats.unlinks += 1
        self.clock.advance(latency)
        return latency

    def truncate(self, path: str, size_bytes: int) -> float:
        """Truncate a file to ``size_bytes``; returns the latency charged.

        Shrinking drops the now-out-of-range cached pages and (on devices
        with TRIM support) discards the freed extents, keeping the FTL's
        free-space knowledge in sync with the namespace.
        """
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        inode = self.fs.resolve(path)
        old_pages = self._file_pages(inode)
        cost = self.fs.truncate(path, size_bytes, self.clock.now_ns)
        keep_pages = -(-size_bytes // self.page_size)
        for page in range(keep_pages, old_pages):
            self.cache.invalidate((inode.number, page))
        latency += self._apply_cost(cost)
        self.stats.truncates += 1
        self.clock.advance(latency)
        return latency

    def rmdir(self, path: str) -> float:
        """Remove an empty directory; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        cost = self.fs.rmdir(path, self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.clock.advance(latency)
        return latency

    def rename(self, old_path: str, new_path: str) -> float:
        """Rename a file or directory; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(old_path))
        latency += self._apply_cost(self.fs.lookup_cost(new_path))
        cost = self.fs.rename(old_path, new_path, self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.clock.advance(latency)
        return latency

    def stat(self, path: str) -> float:
        """``stat()`` a path; returns the latency charged."""
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._apply_cost(self.fs.lookup_cost(path))
        self.fs.resolve(path)
        self.stats.stats_calls += 1
        self.clock.advance(latency)
        return latency

    def fsync(self, fd: int) -> float:
        """Flush a file's dirty data and metadata; returns the latency charged."""
        handle = self._open_files[fd]
        inode = handle.inode
        ino = inode.number
        dirty = [key for key in self.cache.dirty_keys() if key[0] == ino]
        latency = self._cpu_ns(self.cpu.syscall_overhead_ns)
        latency += self._writeback_keys(dirty, synchronous=True)
        cost = self.fs.fsync_cost(inode, len(dirty), self.clock.now_ns)
        latency += self._apply_cost(cost)
        self.stats.fsyncs += 1
        self.clock.advance(latency)
        return latency

    # ------------------------------------------------------------ utilities
    def fallocate(self, fd: int, size_bytes: int, charge_time: bool = True) -> float:
        """Pre-allocate ``size_bytes`` for an open file (fileset setup helper).

        With ``charge_time=False`` the allocation happens "outside" the
        measured timeline: the clock is not advanced.  Benchmark setup uses
        this to build filesets without polluting warm-up measurements.
        """
        handle = self._open_files[fd]
        cost = self.fs.allocate_range(handle.inode, 0, size_bytes, self.clock.now_ns)
        flush = getattr(self.fs, "flush_delalloc", None)
        if flush is not None:
            cost = cost.merge(flush(handle.inode, self.clock.now_ns))
        if not charge_time:
            return 0.0
        latency = self._apply_cost(cost)
        self.clock.advance(latency)
        return latency

    def mkdirs_uncharged(self, path: str) -> None:
        """Create every missing directory component of ``path`` (mkdir -p).

        No time is charged: this is a setup helper for trace replay, aging
        and fileset construction, not a measured operation.
        """
        components = [c for c in path.split("/") if c]
        current = ""
        for component in components:
            current += "/" + component
            if not self.fs.exists(current):
                self.fs.mkdir(current, self.clock.now_ns)

    def sync(self) -> float:
        """Write back everything dirty (like ``sync(2)``)."""
        latency = self._writeback_keys(self.cache.dirty_keys(), synchronous=True)
        latency += self.device.flush(self.rng)
        self.clock.advance(latency)
        return latency

    def drop_caches(self) -> int:
        """Drop all clean pages after syncing dirty ones; returns pages dropped."""
        self.sync()
        return self.cache.drop_caches()

    def idle(self, duration_ns: float) -> None:
        """Advance the clock without doing work (think time in workloads)."""
        self.clock.advance(duration_ns)
