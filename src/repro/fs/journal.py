"""Write-ahead journal shared by the Ext3, Ext4 and XFS models.

Ext3 and Ext4 mount it as their metadata (and optionally data) journal; XFS
mounts a smaller instance as its metadata log.  Ext4 additionally resolves
outstanding delayed allocations before each commit (see
:mod:`repro.fs.ext4`) -- the journal itself only prices the commit.

The journal occupies a fixed, contiguous region of the device.  Committing a
transaction appends the logged blocks plus a commit record sequentially to the
journal head (wrapping around), optionally followed by a write barrier.  When
the journal fills beyond a checkpoint threshold, the logged blocks must be
written back to their home locations ("checkpointing"); the cost of that is
charged to the committing operation, which is how journal pressure shows up as
latency spikes in metadata-heavy benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.obs.metrics import MetricSource
from repro.storage.device import IORequest


@dataclass
class JournalStats(MetricSource):
    """Counters kept by the journal."""

    commits: int = 0
    blocks_logged: int = 0
    checkpoints: int = 0
    checkpoint_blocks: int = 0
    barriers: int = 0


@dataclass
class Transaction:
    """A set of metadata blocks (device addresses) to be logged atomically."""

    metadata_blocks: List[int] = field(default_factory=list)
    #: Extra payload blocks for data journaling (ext3 ``data=journal`` mode).
    data_blocks: int = 0

    def add_block(self, device_block: int) -> None:
        """Add a metadata block to the transaction (duplicates are collapsed)."""
        if device_block not in self.metadata_blocks:
            self.metadata_blocks.append(device_block)

    @property
    def logged_blocks(self) -> int:
        """Total blocks this transaction writes to the journal (plus commit record)."""
        return len(self.metadata_blocks) + self.data_blocks + 1


class Journal:
    """A circular write-ahead log placed in a contiguous device region.

    Parameters
    ----------
    start_block:
        First device block of the journal region.
    size_blocks:
        Length of the journal region in blocks (ext3 default is 32 MiB).
    block_size:
        Device block size in bytes.
    checkpoint_threshold:
        Fraction of the journal that may be dirty before a checkpoint is
        forced.
    use_barriers:
        Whether each commit is followed by a device cache flush.
    """

    def __init__(
        self,
        start_block: int,
        size_blocks: int,
        block_size: int = 4096,
        checkpoint_threshold: float = 0.75,
        use_barriers: bool = True,
    ) -> None:
        if size_blocks <= 2:
            raise ValueError("journal must be larger than two blocks")
        if not (0.0 < checkpoint_threshold <= 1.0):
            raise ValueError("checkpoint_threshold must be in (0, 1]")
        self.start_block = start_block
        self.size_blocks = size_blocks
        self.block_size = block_size
        self.checkpoint_threshold = checkpoint_threshold
        self.use_barriers = use_barriers
        self.stats = JournalStats()
        #: Optional :class:`repro.obs.Tracer`; commits and checkpoints drop
        #: zero-duration markers on the timeline when attached.
        self.tracer = None
        self._head = 0  # next journal-relative block to write
        self._pending_checkpoint_blocks: List[int] = []

    # ------------------------------------------------------------ geometry
    @property
    def used_blocks(self) -> int:
        """Journal blocks holding transactions that have not been checkpointed."""
        return len(self._pending_checkpoint_blocks)

    @property
    def utilization(self) -> float:
        """Fraction of the journal currently occupied."""
        return self.used_blocks / self.size_blocks

    def _journal_offset_bytes(self, journal_block: int) -> int:
        return (self.start_block + (journal_block % self.size_blocks)) * self.block_size

    # -------------------------------------------------------------- commits
    def commit(self, transaction: Transaction) -> Tuple[List[IORequest], bool]:
        """Commit a transaction.

        Returns ``(device_requests, needs_barrier)``:

        * ``device_requests`` -- the sequential journal writes, plus the
          checkpoint (home-location) writes when the journal crossed its
          checkpoint threshold.
        * ``needs_barrier`` -- True when the caller must also issue a device
          cache flush (the cost of a barrier depends on the device model, so
          the journal cannot price it itself).
        """
        if transaction.logged_blocks > self.size_blocks:
            raise ValueError("transaction larger than the journal")
        requests: List[IORequest] = []

        # Sequential append to the log (possibly wrapping).
        remaining = transaction.logged_blocks
        while remaining > 0:
            until_wrap = self.size_blocks - (self._head % self.size_blocks)
            chunk = min(remaining, until_wrap)
            requests.append(
                IORequest(
                    offset_bytes=self._journal_offset_bytes(self._head),
                    nbytes=chunk * self.block_size,
                    is_write=True,
                    priority=0,
                )
            )
            self._head += chunk
            remaining -= chunk

        self._pending_checkpoint_blocks.extend(transaction.metadata_blocks)
        self.stats.commits += 1
        self.stats.blocks_logged += transaction.logged_blocks
        if self.use_barriers:
            self.stats.barriers += 1
        if self.tracer is not None:
            self.tracer.marker(f"journal-commit:{transaction.logged_blocks}")

        # Checkpoint when the log is getting full.
        if self.used_blocks >= self.size_blocks * self.checkpoint_threshold:
            requests.extend(self._checkpoint())

        return requests, self.use_barriers

    def _checkpoint(self) -> List[IORequest]:
        """Write pending metadata blocks to their home locations and free the log."""
        requests = [
            IORequest(
                offset_bytes=block * self.block_size,
                nbytes=self.block_size,
                is_write=True,
                priority=1,
            )
            for block in sorted(set(self._pending_checkpoint_blocks))
        ]
        self.stats.checkpoints += 1
        self.stats.checkpoint_blocks += len(requests)
        if self.tracer is not None:
            self.tracer.marker(f"journal-checkpoint:{len(requests)}")
        self._pending_checkpoint_blocks.clear()
        return requests

    def force_checkpoint(self) -> List[IORequest]:
        """Checkpoint unconditionally (used by unmount / sync)."""
        if not self._pending_checkpoint_blocks:
            return []
        return self._checkpoint()

    # ------------------------------------------------------- snapshot support
    def export_state(self) -> dict:
        """The journal's mutable position state, for state snapshots."""
        return {"head": self._head, "pending": list(self._pending_checkpoint_blocks)}

    def restore_state(self, state: dict) -> None:
        """Restore state exported by :meth:`export_state`."""
        self._head = int(state["head"])
        self._pending_checkpoint_blocks = [int(block) for block in state["pending"]]
