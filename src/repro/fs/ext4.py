"""Ext4 model: ext3's ordered journal over an extent-based, delalloc layout.

Ext4 is the fourth filesystem of the survey era the paper covers, and it is
a genuine hybrid of the two families already modelled here:

* from the **ext3 family** it keeps the write-ahead journal with the three
  ``data=`` mount modes (ordered by default) and the block-group on-disk
  geometry (128 MiB groups with per-group metadata);
* from the **xfs family** it takes extent-based file mapping, delayed
  allocation (:class:`~repro.fs.common.DelayedAllocationMixin`) and a
  contiguous multi-block allocator
  (:class:`~repro.fs.allocation.MultiBlockAllocator`), plus HTree (B-tree
  style) directories and aggressive readahead.

The combination creates one interaction that exists in neither parent model
and is ext4's defining quirk: **delayed allocations must resolve before a
journal commit**.  In ``data=ordered`` mode the commit record may only be
written once the transaction's data is on disk, and data that is still a
delalloc reservation has no disk location yet -- so every journal commit
first materialises outstanding reservations (allocating real extents and
logging the affected inodes in the same transaction).  This is why ext4
files written between metadata bursts end up with more, smaller extents
than xfs files under the same workload, while an undisturbed stream of
appends stays as contiguous as xfs: the journal keeps "harvesting" the
reservations early.
"""

from __future__ import annotations

from typing import List

from repro.fs.allocation import MultiBlockAllocator
from repro.fs.base import Inode, OperationCost
from repro.fs.common import DelayedAllocationMixin, UnixFileSystemBase
from repro.fs.ext3 import JournalMode, commit_journal_transaction
from repro.fs.journal import Journal


class Ext4FileSystem(DelayedAllocationMixin, UnixFileSystemBase):
    """A behavioural model of Linux Ext4 (journal + extents + delalloc)."""

    name = "ext4"
    cluster_pages = 8
    directory_scan_is_linear = False  # HTree directories
    inode_size_bytes = 256
    metadata_cpu_factor = 1.2

    #: CPU cost of journal bookkeeping per transaction (handle + buffers);
    #: slightly below ext3's because jbd2 batches handles more aggressively.
    _JOURNAL_CPU_NS = 1_800.0

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 4096,
        blocks_per_group: int = 32768,
        journal_size_bytes: int = 128 * 1024 * 1024,
        journal_mode: JournalMode = JournalMode.ORDERED,
        use_barriers: bool = True,
        delayed_allocation: bool = True,
    ) -> None:
        self._blocks_per_group = blocks_per_group
        super().__init__(capacity_bytes, block_size)
        self.journal_mode = JournalMode(journal_mode)
        journal_blocks = max(8, journal_size_bytes // block_size)
        self.journal = Journal(
            start_block=self._INODE_TABLE_START_BLOCK + 4096,
            size_blocks=journal_blocks,
            block_size=block_size,
            use_barriers=use_barriers,
        )
        #: Reentrancy guard: resolving delalloc inside a commit allocates
        #: blocks, which itself wants to journal the mapping change; those
        #: nested changes fold into the outer transaction instead.
        self._in_commit = False
        self._absorbed_blocks: List[int] = []
        self._init_delalloc(delayed_allocation)

    def _make_allocator(self) -> MultiBlockAllocator:
        return MultiBlockAllocator(
            total_blocks=self.total_blocks,
            blocks_per_group=self._blocks_per_group,
        )

    # ---------------------------------------------------------- journaling
    def _journal_transaction(self, metadata_blocks: List[int]) -> OperationCost:
        """Commit a transaction, resolving outstanding delalloc first.

        This is the delalloc-into-journal code path described in the module
        docstring: in ordered (and data-journal) mode the commit record must
        not be written while data of the same transaction is still only a
        reservation, so reservations are materialised here and the affected
        inodes' metadata joins the transaction being committed.
        """
        if self._in_commit:
            # Nested request from resolving delalloc (the allocation wants to
            # journal the inode's mapping change): fold the blocks into the
            # transaction being committed instead of committing twice.
            self._absorbed_blocks.extend(metadata_blocks)
            return OperationCost()

        blocks = list(metadata_blocks)
        cost = OperationCost()
        if (
            self.journal_mode is not JournalMode.WRITEBACK
            and self.delayed_allocation
            and self._delalloc_reservations
        ):
            # Inodes are resolved in number order so the allocation sequence
            # (and therefore the resulting layout) is independent of
            # reservation insertion order -- snapshot-restored stacks replay
            # it identically.
            for number in sorted(self._delalloc_reservations):
                inode = self._inodes.get(number)
                if inode is None:
                    # Normal during unlink: the base class commits the
                    # unlink's transaction after deleting the inode but
                    # before DelayedAllocationMixin.unlink cancels the dead
                    # inode's reservation.  Nothing to allocate; drop it.
                    self._delalloc_reservations.pop(number, None)
                    continue
                cost = cost.merge(self._flush_absorbing(inode, inode.mtime_ns, blocks))
                table_block = self._inode_table_block(number)
                if table_block not in blocks:
                    blocks.append(table_block)

        return cost.merge(
            commit_journal_transaction(self, blocks, self.journal_mode, self._JOURNAL_CPU_NS)
        )

    def _flush_absorbing(self, inode: Inode, now_ns: float, blocks: List[int]) -> OperationCost:
        """Flush one inode's reservation, folding nested commits into ``blocks``.

        The allocation performed by :meth:`flush_delalloc` wants to journal
        the inode's mapping change; with the reentrancy guard set, that
        nested request lands in ``_absorbed_blocks`` and is folded into the
        caller's transaction block list instead of committing separately.
        """
        self._in_commit = True
        self._absorbed_blocks = []
        try:
            cost = self.flush_delalloc(inode, now_ns)
            for block in self._absorbed_blocks:
                if block not in blocks:
                    blocks.append(block)
            return cost
        finally:
            self._in_commit = False
            self._absorbed_blocks = []

    # -------------------------------------------------------------- fsync
    def fsync_cost(self, inode: Inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        cost = OperationCost(cpu_ns=self._cpu(self._FSYNC_BASE_NS))
        blocks = [self._inode_table_block(inode.number)]
        if self.delayed_allocation and self._delalloc_reservations.get(inode.number):
            # Flush this inode's reservation into the fsync's own commit (in
            # data=writeback mode the commit would not resolve it itself).
            cost = cost.merge(self._flush_absorbing(inode, now_ns, blocks))
        # fsync forces a journal commit covering the inode's metadata.
        cost = cost.merge(self._journal_transaction(blocks))
        if self.journal_mode is JournalMode.ORDERED and dirty_data_pages:
            # Ordered mode: data must reach the device before the commit
            # record; the VFS writes the data pages, we account the ordering
            # flush.
            cost.flushes += 1
        self.stats.metadata_writes += 1
        return cost
