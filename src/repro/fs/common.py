"""Shared machinery for the Unix-like file system models.

Ext2, Ext3, Ext4 and XFS differ in their allocators, journaling, directory
structures and prefetch (cluster-read) behaviour, but share the namespace
mechanics.  :class:`UnixFileSystemBase` implements those mechanics once and
exposes the differences as a handful of well-named knobs and hooks that the
concrete models override.  :class:`DelayedAllocationMixin` implements the
delalloc write path shared by the XFS and Ext4 models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.base import (
    DirectoryEntry,
    ExistsError,
    Extent,
    FileSystem,
    Inode,
    InodeType,
    IsADirectoryError_,
    NotADirectoryError_,
    NotEmptyError,
    NotFoundError,
    OperationCost,
)
from repro.storage.device import IORequest

#: Pseudo-inode number used for page-cache keys of inode-table blocks.
INODE_TABLE_PSEUDO_INO = -2
#: Pseudo-inode number used for page-cache keys of allocator bitmap blocks.
BITMAP_PSEUDO_INO = -3
#: Pseudo-inode number used for indirect/extent-map blocks of large files.
MAPPING_PSEUDO_INO = -4

PageKey = Tuple[int, int]


class UnixFileSystemBase(FileSystem):
    """Common implementation of the namespace and data-path cost model.

    Subclasses must:

    * call ``super().__init__`` and then :meth:`_setup_layout` (which calls
      the :meth:`_make_allocator` hook);
    * set the class attributes below to describe their personality.

    Class attributes
    ----------------
    cluster_pages:
        Pages brought into the cache per data miss.
    directory_scan_is_linear:
        Linear-scan directories (ext2/ext3) pay per-entry lookup CPU; B-tree
        directories (XFS, ext3+htree) pay logarithmic costs.
    inode_size_bytes:
        On-disk inode size; determines how many inodes share a metadata block.
    metadata_cpu_factor:
        Multiplier on metadata CPU costs, capturing "heavier" code paths.
    """

    directory_scan_is_linear: bool = True
    inode_size_bytes: int = 256
    metadata_cpu_factor: float = 1.0

    # Base CPU costs (ns) for metadata work; multiplied by metadata_cpu_factor.
    _DIRENT_LOOKUP_BASE_NS = 600.0
    _DIRENT_SCAN_PER_ENTRY_NS = 12.0
    _DIRENT_BTREE_PER_LEVEL_NS = 350.0
    _INODE_INIT_NS = 2_500.0
    _DIRENT_INSERT_NS = 1_200.0
    _DIRENT_REMOVE_NS = 1_000.0
    _ALLOC_CALL_NS = 3_000.0
    _EXTENT_MAP_NS = 400.0
    _FREE_CALL_NS = 2_000.0
    _FSYNC_BASE_NS = 4_000.0

    #: Directory entries per 4 KiB directory block.
    _ENTRIES_PER_DIR_BLOCK = 128
    #: First device block of the inode table region.
    _INODE_TABLE_START_BLOCK = 64
    #: File blocks covered by one indirect/extent-map block.
    _BLOCKS_PER_MAP_BLOCK = 1024

    def __init__(self, capacity_bytes: int, block_size: int = 4096) -> None:
        super().__init__(capacity_bytes, block_size)
        self._dir_goal_block: Dict[int, int] = {}
        self.allocator = self._make_allocator()
        self._inodes_per_block = max(1, self.block_size // self.inode_size_bytes)

    # ------------------------------------------------------------ subclass hooks
    def _make_allocator(self):
        """Create the block allocator for this file system."""
        raise NotImplementedError

    def _journal_transaction(self, metadata_blocks: List[int]) -> OperationCost:
        """Return the journaling cost for dirtying ``metadata_blocks``.

        The default (ext2) has no journal and returns an empty cost.
        """
        return OperationCost()

    # ------------------------------------------------------------ key helpers
    def _inode_table_block(self, inode_number: int) -> int:
        return self._INODE_TABLE_START_BLOCK + max(0, inode_number) // self._inodes_per_block

    def _inode_table_key(self, inode_number: int) -> PageKey:
        return (INODE_TABLE_PSEUDO_INO, self._inode_table_block(inode_number))

    def _inode_table_request(self, inode_number: int, is_write: bool = False) -> IORequest:
        return IORequest(
            offset_bytes=self._inode_table_block(inode_number) * self.block_size,
            nbytes=self.block_size,
            is_write=is_write,
        )

    def _dir_block_key(self, directory: Inode, entry_index: int) -> PageKey:
        return (directory.number, entry_index // self._ENTRIES_PER_DIR_BLOCK)

    def _dir_block_count(self, directory: Inode) -> int:
        return max(1, -(-len(directory.entries) // self._ENTRIES_PER_DIR_BLOCK))

    def _dir_block_request(self, directory: Inode, block_index: int) -> Optional[IORequest]:
        extent = directory.lookup_extent(block_index)
        if extent is None:
            return None
        return IORequest(
            offset_bytes=extent.device_block_for(block_index) * self.block_size,
            nbytes=self.block_size,
            is_write=False,
        )

    # ------------------------------------------------------------ cpu helpers
    def _cpu(self, base_ns: float) -> float:
        return base_ns * self.metadata_cpu_factor

    def _dirent_lookup_cpu(self, directory: Inode) -> float:
        entries = max(1, len(directory.entries))
        if self.directory_scan_is_linear:
            # Expected linear scan touches half the entries.
            return self._cpu(self._DIRENT_LOOKUP_BASE_NS + self._DIRENT_SCAN_PER_ENTRY_NS * entries / 2)
        depth = max(1, entries.bit_length() // 4)  # fan-out ~16 per B-tree level
        return self._cpu(self._DIRENT_LOOKUP_BASE_NS + self._DIRENT_BTREE_PER_LEVEL_NS * depth)

    # ------------------------------------------------------------ dir storage
    def _ensure_directory_blocks(self, directory: Inode, now_ns: float) -> OperationCost:
        """Allocate backing blocks for a directory that has grown."""
        needed_blocks = self._dir_block_count(directory)
        have_blocks = directory.blocks_allocated()
        cost = OperationCost()
        while have_blocks < needed_blocks:
            goal = self._goal_block_for(directory)
            runs = self.allocator.allocate(1, goal_block=goal)
            for start, count in runs:
                directory.add_extent(Extent(have_blocks, start, count))
                have_blocks += count
            cost.cpu_ns += self._cpu(self._ALLOC_CALL_NS)
            cost.dirty_page_keys.append((BITMAP_PSEUDO_INO, self.allocator_group_of(runs[0][0])))
            self.stats.block_allocations += 1
            self.stats.blocks_allocated += sum(count for _, count in runs)
        directory.size_bytes = needed_blocks * self.block_size
        directory.mtime_ns = now_ns
        return cost

    def allocator_group_of(self, device_block: int) -> int:
        """Allocator group index for a device block (used to key bitmap pages)."""
        return self.allocator.group_of_block(device_block)

    def _discard_request(self, device_block: int, count: int) -> IORequest:
        """A discard (TRIM) request covering a freed device-block run."""
        return IORequest(
            offset_bytes=device_block * self.block_size,
            nbytes=count * self.block_size,
            is_discard=True,
        )

    def _goal_block_for(self, inode: Inode) -> int:
        """Allocation goal: keep a file near its directory's previous allocations."""
        if inode.extents:
            last = inode.extents[-1]
            return last.device_block + last.count
        goal = self._dir_goal_block.get(inode.number)
        if goal is not None:
            return goal
        # Spread unrelated inodes across the device like block-group placement.
        spread = (inode.number * 2654435761) % max(1, self.total_blocks)
        return spread

    def _remember_goal(self, parent: Inode, device_block: int) -> None:
        self._dir_goal_block.setdefault(parent.number, device_block)

    # ------------------------------------------------------------ namespace ops
    def create(self, path: str, now_ns: float) -> Tuple[Inode, OperationCost]:
        parent, _, name = self._walk_parent(path)
        if not name:
            raise ExistsError(path)
        if not parent.is_directory:
            raise NotADirectoryError_(path)
        if name in parent.entries:
            raise ExistsError(path)

        inode = self._new_inode(InodeType.REGULAR)
        inode.atime_ns = inode.mtime_ns = inode.ctime_ns = now_ns
        parent.entries[name] = DirectoryEntry(name, inode.number, InodeType.REGULAR)
        parent.mtime_ns = now_ns

        cost = OperationCost(cpu_ns=self._cpu(self._INODE_INIT_NS + self._DIRENT_INSERT_NS))
        cost = cost.merge(self._ensure_directory_blocks(parent, now_ns))
        entry_index = len(parent.entries) - 1
        dirty_blocks = [
            self._inode_table_block(inode.number),
            self._inode_table_block(parent.number),
        ]
        cost.dirty_page_keys.append(self._inode_table_key(inode.number))
        cost.dirty_page_keys.append(self._inode_table_key(parent.number))
        cost.dirty_page_keys.append(self._dir_block_key(parent, entry_index))
        cost = cost.merge(self._journal_transaction(dirty_blocks))
        self.stats.creates += 1
        return inode, cost

    def mkdir(self, path: str, now_ns: float) -> Tuple[Inode, OperationCost]:
        parent, _, name = self._walk_parent(path)
        if not name:
            raise ExistsError(path)
        if not parent.is_directory:
            raise NotADirectoryError_(path)
        if name in parent.entries:
            raise ExistsError(path)

        inode = self._new_inode(InodeType.DIRECTORY)
        inode.atime_ns = inode.mtime_ns = inode.ctime_ns = now_ns
        inode.nlink = 2
        parent.entries[name] = DirectoryEntry(name, inode.number, InodeType.DIRECTORY)
        parent.nlink += 1
        parent.mtime_ns = now_ns

        cost = OperationCost(cpu_ns=self._cpu(self._INODE_INIT_NS + 2 * self._DIRENT_INSERT_NS))
        cost = cost.merge(self._ensure_directory_blocks(parent, now_ns))
        cost = cost.merge(self._ensure_directory_blocks(inode, now_ns))
        dirty_blocks = [
            self._inode_table_block(inode.number),
            self._inode_table_block(parent.number),
        ]
        cost.dirty_page_keys.append(self._inode_table_key(inode.number))
        cost.dirty_page_keys.append(self._inode_table_key(parent.number))
        cost.dirty_page_keys.append(self._dir_block_key(parent, len(parent.entries) - 1))
        cost = cost.merge(self._journal_transaction(dirty_blocks))
        self.stats.mkdirs += 1
        return inode, cost

    def unlink(self, path: str, now_ns: float) -> OperationCost:
        parent, _, name = self._walk_parent(path)
        entry = parent.entries.get(name)
        if entry is None:
            raise NotFoundError(path)
        inode = self.inode(entry.inode_number)
        if inode.is_directory:
            raise IsADirectoryError_(path)

        del parent.entries[name]
        parent.mtime_ns = now_ns
        inode.nlink -= 1

        cost = OperationCost(cpu_ns=self._cpu(self._DIRENT_REMOVE_NS))
        cost.dirty_page_keys.append(self._inode_table_key(parent.number))
        cost.dirty_page_keys.append(self._dir_block_key(parent, 0))
        dirty_blocks = [self._inode_table_block(parent.number)]

        if inode.nlink <= 0:
            freed_blocks = 0
            for extent in inode.extents:
                self.allocator.free(extent.device_block, extent.count)
                freed_blocks += extent.count
                cost.dirty_page_keys.append(
                    (BITMAP_PSEUDO_INO, self.allocator_group_of(extent.device_block))
                )
                cost.discard_requests.append(
                    self._discard_request(extent.device_block, extent.count)
                )
            cost.cpu_ns += self._cpu(self._FREE_CALL_NS + self._EXTENT_MAP_NS * len(inode.extents))
            cost.dirty_page_keys.append(self._inode_table_key(inode.number))
            dirty_blocks.append(self._inode_table_block(inode.number))
            self.stats.blocks_freed += freed_blocks
            del self._inodes[inode.number]

        cost = cost.merge(self._journal_transaction(dirty_blocks))
        self.stats.unlinks += 1
        return cost

    def rmdir(self, path: str, now_ns: float) -> OperationCost:
        parent, _, name = self._walk_parent(path)
        entry = parent.entries.get(name)
        if entry is None:
            raise NotFoundError(path)
        inode = self.inode(entry.inode_number)
        if not inode.is_directory:
            raise NotADirectoryError_(path)
        if inode.entries:
            raise NotEmptyError(path)

        del parent.entries[name]
        parent.nlink -= 1
        parent.mtime_ns = now_ns
        cost = OperationCost(cpu_ns=self._cpu(self._DIRENT_REMOVE_NS + self._FREE_CALL_NS))
        for extent in inode.extents:
            self.allocator.free(extent.device_block, extent.count)
            cost.discard_requests.append(
                self._discard_request(extent.device_block, extent.count)
            )
        del self._inodes[inode.number]
        cost.dirty_page_keys.append(self._inode_table_key(parent.number))
        cost.dirty_page_keys.append(self._dir_block_key(parent, 0))
        cost = cost.merge(
            self._journal_transaction(
                [self._inode_table_block(parent.number), self._inode_table_block(inode.number)]
            )
        )
        self.stats.rmdirs += 1
        return cost

    def rename(self, old_path: str, new_path: str, now_ns: float) -> OperationCost:
        old_parent, _, old_name = self._walk_parent(old_path)
        entry = old_parent.entries.get(old_name)
        if entry is None:
            raise NotFoundError(old_path)
        new_parent, _, new_name = self._walk_parent(new_path)
        if not new_name:
            raise ExistsError(new_path)

        cost = OperationCost(
            cpu_ns=self._cpu(self._DIRENT_REMOVE_NS + self._DIRENT_INSERT_NS)
        )
        existing = new_parent.entries.get(new_name)
        if existing is not None:
            target = self.inode(existing.inode_number)
            if target.is_directory:
                raise IsADirectoryError_(new_path)
            cost = cost.merge(self.unlink(new_path, now_ns))

        del old_parent.entries[old_name]
        new_parent.entries[new_name] = DirectoryEntry(new_name, entry.inode_number, entry.inode_type)
        old_parent.mtime_ns = now_ns
        new_parent.mtime_ns = now_ns
        cost = cost.merge(self._ensure_directory_blocks(new_parent, now_ns))

        cost.dirty_page_keys.append(self._dir_block_key(old_parent, 0))
        cost.dirty_page_keys.append(self._dir_block_key(new_parent, len(new_parent.entries) - 1))
        cost.dirty_page_keys.append(self._inode_table_key(old_parent.number))
        cost.dirty_page_keys.append(self._inode_table_key(new_parent.number))
        cost = cost.merge(
            self._journal_transaction(
                [
                    self._inode_table_block(old_parent.number),
                    self._inode_table_block(new_parent.number),
                ]
            )
        )
        self.stats.renames += 1
        return cost

    # ------------------------------------------------------------ data path
    def allocate_range(
        self, inode: Inode, offset_bytes: int, nbytes: int, now_ns: float
    ) -> OperationCost:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first_block = offset_bytes // self.block_size
        last_block = (offset_bytes + nbytes - 1) // self.block_size
        cost = OperationCost()

        # Find the unmapped gaps in [first_block, last_block].
        gaps: List[Tuple[int, int]] = []
        block = first_block
        while block <= last_block:
            extent = inode.lookup_extent(block)
            if extent is not None:
                block = extent.file_end
                continue
            gap_start = block
            next_mapped = inode._next_mapped_block(block)
            gap_end = last_block + 1 if next_mapped is None else min(last_block + 1, next_mapped)
            gaps.append((gap_start, gap_end - gap_start))
            block = gap_end

        mapped_new = 0
        for gap_start, gap_count in gaps:
            goal = self._goal_block_for(inode)
            runs = self.allocator.allocate(gap_count, goal_block=goal)
            file_block = gap_start
            for start, count in runs:
                inode.add_extent(Extent(file_block, start, count))
                file_block += count
                cost.dirty_page_keys.append(
                    (BITMAP_PSEUDO_INO, self.allocator_group_of(start))
                )
            mapped_new += gap_count
            cost.cpu_ns += self._cpu(self._ALLOC_CALL_NS + self._EXTENT_MAP_NS * len(runs))
            self.stats.block_allocations += 1
            self.stats.blocks_allocated += gap_count
            self._remember_goal(inode, runs[0][0])

        if mapped_new:
            # Large files dirty one mapping (indirect/extent) block per chunk.
            map_blocks = -(-mapped_new // self._BLOCKS_PER_MAP_BLOCK)
            for index in range(map_blocks):
                cost.dirty_page_keys.append(
                    (MAPPING_PSEUDO_INO, inode.number * 4096 + (first_block // self._BLOCKS_PER_MAP_BLOCK) + index)
                )
            cost.dirty_page_keys.append(self._inode_table_key(inode.number))
            cost = cost.merge(
                self._journal_transaction([self._inode_table_block(inode.number)])
            )

        new_size = offset_bytes + nbytes
        if new_size > inode.size_bytes:
            inode.size_bytes = new_size
        inode.mtime_ns = now_ns
        return cost

    def truncate(self, path: str, size_bytes: int, now_ns: float) -> OperationCost:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        inode = self.resolve(path)
        if not inode.is_regular:
            raise IsADirectoryError_(path)

        cost = OperationCost(cpu_ns=self._cpu(self._FREE_CALL_NS))
        keep_blocks = -(-size_bytes // self.block_size)
        freed = inode.truncate_extents(keep_blocks)
        freed_blocks = 0
        for extent in freed:
            self.allocator.free(extent.device_block, extent.count)
            freed_blocks += extent.count
            cost.dirty_page_keys.append(
                (BITMAP_PSEUDO_INO, self.allocator_group_of(extent.device_block))
            )
            cost.discard_requests.append(
                self._discard_request(extent.device_block, extent.count)
            )
        cost.cpu_ns += self._cpu(self._EXTENT_MAP_NS * len(freed))
        self.stats.blocks_freed += freed_blocks

        inode.size_bytes = size_bytes
        inode.mtime_ns = now_ns
        inode.ctime_ns = now_ns
        cost.dirty_page_keys.append(self._inode_table_key(inode.number))
        cost = cost.merge(
            self._journal_transaction([self._inode_table_block(inode.number)])
        )
        self.stats.truncates += 1
        return cost

    def map_read(self, inode: Inode, first_page: int, page_count: int) -> List[IORequest]:
        if page_count <= 0:
            raise ValueError("page_count must be positive")
        requests: List[IORequest] = []
        for device_block, run in inode.iter_device_runs(first_page, page_count):
            requests.append(
                IORequest(
                    offset_bytes=device_block * self.block_size,
                    nbytes=run * self.block_size,
                    is_write=False,
                )
            )
        self.stats.metadata_reads += 0  # data reads are not metadata; counter untouched
        return requests

    def lookup_cost(self, path: str) -> OperationCost:
        cost = OperationCost()
        components = [c for c in path.split("/") if c]
        current = self._root
        for component in components:
            cost.cpu_ns += self._dirent_lookup_cpu(current)
            cost.metadata_reads.append(
                (self._inode_table_key(current.number), self._inode_table_request(current.number))
            )
            request = self._dir_block_request(current, 0)
            if request is not None:
                cost.metadata_reads.append((self._dir_block_key(current, 0), request))
            entry = current.entries.get(component)
            if entry is None:
                break
            nxt = self._inodes.get(entry.inode_number)
            if nxt is None:
                break
            cost.metadata_reads.append(
                (self._inode_table_key(nxt.number), self._inode_table_request(nxt.number))
            )
            if not nxt.is_directory:
                break
            current = nxt
        self.stats.lookups += 1
        return cost

    def fsync_cost(self, inode: Inode, dirty_data_pages: int, now_ns: float) -> OperationCost:
        cost = OperationCost(cpu_ns=self._cpu(self._FSYNC_BASE_NS))
        cost.device_requests.append(self._inode_table_request(inode.number, is_write=True))
        cost.flushes += 1
        self.stats.metadata_writes += 1
        return cost

    # ------------------------------------------------------------ capacity
    def free_blocks(self) -> int:
        return self.allocator.free_blocks


class DelayedAllocationMixin:
    """Delayed allocation (delalloc) shared by the XFS and Ext4 models.

    Writes *reserve* space (cheap, in-memory bookkeeping) instead of
    allocating blocks; the reservation is converted into real, contiguous
    extents when something forces it -- a flush, an fsync, a read of the
    written range, or (on ext4) a journal commit.  Batching many small
    appends into one allocation call is what keeps delalloc file layouts
    contiguous.

    Mix in *before* :class:`UnixFileSystemBase` in the MRO and call
    :meth:`_init_delalloc` at the end of ``__init__``.
    """

    #: CPU cost of taking a delalloc reservation (in-memory only).
    _DELALLOC_RESERVE_CPU_NS = 900.0

    def _init_delalloc(self, enabled: bool) -> None:
        self.delayed_allocation = enabled
        #: Bytes reserved (delalloc) but not yet allocated, per inode number.
        self._delalloc_reservations: Dict[int, int] = {}

    # ----------------------------------------------------------- reservations
    def allocate_range(
        self, inode: Inode, offset_bytes: int, nbytes: int, now_ns: float
    ) -> OperationCost:
        if not self.delayed_allocation:
            return super().allocate_range(inode, offset_bytes, nbytes, now_ns)

        # Reserve now, allocate at flush time: extend the logical size and
        # remember the reservation; the actual extents are created lazily.
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        end = offset_bytes + nbytes
        reserved = self._delalloc_reservations.get(inode.number, 0)
        already_mapped_bytes = inode.blocks_allocated() * self.block_size
        new_reservation = max(reserved, end - already_mapped_bytes)
        if new_reservation > 0:
            self._delalloc_reservations[inode.number] = new_reservation
        else:
            # Overwriting an already-mapped range reserves nothing; a 0-byte
            # entry would still trigger commit-time resolution work.
            self._delalloc_reservations.pop(inode.number, None)
        if end > inode.size_bytes:
            inode.size_bytes = end
        inode.mtime_ns = now_ns
        return OperationCost(cpu_ns=self._cpu(self._DELALLOC_RESERVE_CPU_NS))

    def flush_delalloc(self, inode: Inode, now_ns: float) -> OperationCost:
        """Convert outstanding reservations into real, contiguous extents."""
        reserved = self._delalloc_reservations.pop(inode.number, 0)
        if reserved <= 0:
            return OperationCost()
        start_byte = inode.blocks_allocated() * self.block_size
        return super().allocate_range(inode, start_byte, reserved, now_ns)

    def delalloc_reserved_bytes(self) -> int:
        """Total bytes reserved but not yet backed by extents."""
        return sum(self._delalloc_reservations.values())

    # ------------------------------------------------------------ interactions
    def map_read(self, inode: Inode, first_page: int, page_count: int) -> List[IORequest]:
        # Reads force delayed allocations to materialise first (like a flush).
        requests: List[IORequest] = []
        if self.delayed_allocation and self._delalloc_reservations.get(inode.number):
            cost = self.flush_delalloc(inode, inode.mtime_ns)
            # The flush's device work (journal commit, checkpoint writes on
            # ext4; log writes on xfs) must reach the device with this read,
            # so it joins the returned batch.  The rest of the flush cost --
            # CPU, barrier flushes, and the dirty metadata pages
            # (bitmap/mapping/inode-table) it would mark -- is elided: the
            # map_read contract can only carry device requests.  A deliberate
            # simplification of the read-forces-materialisation model.
            requests.extend(cost.device_requests)
        requests.extend(super().map_read(inode, first_page, page_count))
        return requests

    def unlink(self, path: str, now_ns: float) -> OperationCost:
        # Dropping a never-flushed file cancels its reservation outright;
        # without this, stale reservations of dead inodes accumulate (and
        # leak into state snapshots).
        inode = self.resolve(path)
        cost = super().unlink(path, now_ns)
        if inode.nlink <= 0:
            self._delalloc_reservations.pop(inode.number, None)
        return cost

    def truncate(self, path: str, size_bytes: int, now_ns: float) -> OperationCost:
        # Shrinking trims the reservation before the extents: bytes that were
        # only ever reserved (never allocated) vanish for free, and the
        # reservation can never exceed the part of the file beyond the
        # mapped blocks.
        inode = self.resolve(path)
        cost = super().truncate(path, size_bytes, now_ns)
        reserved = self._delalloc_reservations.get(inode.number)
        if reserved is not None:
            mapped_bytes = inode.blocks_allocated() * self.block_size
            new_reserved = min(reserved, max(0, size_bytes - mapped_bytes))
            if new_reserved > 0:
                self._delalloc_reservations[inode.number] = new_reserved
            else:
                self._delalloc_reservations.pop(inode.number, None)
        return cost
