"""Table 1: the benchmark-usage survey, and its measured counterpart.

Unlike the figures, Table 1 is data the authors collected by reading 100
papers; reproducing it means regenerating the table (and its headline
statistics) from the structured survey dataset shipped with the library, and
verifying the totals the paper quotes in the text.

:func:`run_table1` can additionally run the *measured* counterpart of the
table (:class:`~repro.core.survey.MeasuredSurvey`): actual per-dimension
measurements across the full file-system grid -- ext2, ext3, ext4 and xfs --
printed next to the literature's usage counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.dimensions import Dimension
from repro.core.report import checks_line
from repro.core.survey import (
    MeasuredSurvey,
    MeasuredSurveyResult,
    PAPERS_SURVEYED_2009_2010,
    PAPERS_WITH_EVALUATION_2009_2010,
    SurveyDatabase,
    load_paper_survey,
)


@dataclass
class Table1Result:
    """The regenerated survey table plus its aggregate checks.

    ``measured`` carries the measured-survey counterpart when
    :func:`run_table1` was asked to produce one.
    """

    database: SurveyDatabase
    measured: Optional[MeasuredSurveyResult] = None

    def row_count(self) -> int:
        """Number of benchmark rows."""
        return len(self.database)

    def usage_counts(self) -> Dict[str, Dict[str, int]]:
        """benchmark -> period -> uses."""
        return {
            entry.name: {
                "1999_2007": entry.uses_1999_2007,
                "2009_2010": entry.uses_2009_2010,
            }
            for entry in self.database.entries()
        }

    def most_used(self, period: str = "2009_2010") -> str:
        """The most-used benchmark category in a period (Ad-hoc, per the paper)."""
        entries = self.database.entries()
        key = (lambda e: e.uses_2009_2010) if period == "2009_2010" else (lambda e: e.uses_1999_2007)
        return max(entries, key=key).name

    def checks(self) -> Dict[str, bool]:
        """The paper's claims about the survey, evaluated against the dataset."""
        database = self.database
        postmark = database.get("Postmark")
        filebench = database.get("Filebench")
        return {
            "nineteen_benchmark_rows": self.row_count() == 19,
            "adhoc_is_most_common": self.most_used("2009_2010") == "Ad-hoc"
            and self.most_used("1999_2007") == "Ad-hoc",
            "adhoc_counts_match_paper": database.get("Ad-hoc").uses_1999_2007 == 237
            and database.get("Ad-hoc").uses_2009_2010 == 67,
            "postmark_counts_match_paper": postmark.uses_1999_2007 == 30
            and postmark.uses_2009_2010 == 17,
            "filebench_used_in_8_papers_total": filebench.total_uses == 8,
            "no_benchmark_isolates_every_dimension": all(
                not all(entry.coverage.isolates(d) for d in Dimension.ordered())
                for entry in database.entries()
            ),
        }

    def render(self) -> str:
        """The regenerated Table 1 plus survey-level statistics."""
        lines = [
            "Table 1 reproduction -- benchmarks, dimension coverage and usage counts",
            "",
            self.database.render_table1(),
            "",
            f"Survey scope: {PAPERS_SURVEYED_2009_2010} papers reviewed for 2009-2010, "
            f"{PAPERS_WITH_EVALUATION_2009_2010} with a relevant evaluation.",
        ]
        lines.append(checks_line(self.checks()))
        if self.measured is not None:
            lines.append("")
            lines.append(self.measured.render())
        return "\n".join(lines)


def run_table1(
    measured_fs_types: Optional[Sequence[str]] = None,
    testbed=None,
    quick: bool = False,
    n_workers: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> Table1Result:
    """Regenerate Table 1 from the bundled survey dataset.

    When ``measured_fs_types`` is given, also run the measured survey across
    those file systems (the table's executable counterpart) and attach it to
    the result; the remaining parameters configure that run exactly as they
    do :class:`~repro.core.survey.MeasuredSurvey`.  Since the experiment-API
    redesign the measured counterpart executes as a declarative
    :class:`~repro.core.experiment.Experiment` (survey -> suite ->
    ``as_experiment``); this function is the thin compatibility shim over it.
    """
    database = load_paper_survey()
    measured = None
    if measured_fs_types:
        survey = MeasuredSurvey(
            database=database,
            testbed=testbed,
            quick=quick,
            n_workers=n_workers,
            cache_dir=cache_dir,
        )
        measured = survey.run(tuple(measured_fs_types))
    return Table1Result(database=database, measured=measured)
