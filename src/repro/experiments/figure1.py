"""Figure 1: Ext2 random-read throughput and relative std-dev vs file size.

Protocol (Section 3.1): one thread randomly reading 8 KiB blocks from a
single file; file size swept from 64 MB to 1024 MB in 64 MB steps; 512 MB of
RAM; each size run repeatedly; only steady-state throughput reported.  The
paper's observations this harness must reproduce:

* a memory-bound plateau (~10^4 ops/s) for sizes that fit in the page cache;
* a sudden, order-of-magnitude drop between 384 MB and 448 MB;
* I/O-bound throughput in the low hundreds of ops/s at 1024 MB;
* relative standard deviation several times higher in the I/O-bound range
  than in the memory-bound range, spiking in the transition region.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.fragility import FragilityReport, assess_sweep
from repro.analysis.transition import TransitionRegion, find_transition
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame, rows_for_run
from repro.core.parallel import group_label
from repro.core.report import checks_line, sweep_table
from repro.core.results import RepetitionSet, SweepResult
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.experiments.config import ExperimentScale, MiB, default_scale
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import random_read_workload

#: Mean throughput values printed above the bars of the paper's Figure 1.
PAPER_FIGURE1_OPS_S: Dict[int, float] = {
    64: 9682, 128: 9653, 192: 9679, 256: 9700, 320: 9543, 384: 9715,
    448: 1019, 512: 465, 576: 288, 640: 252, 704: 222, 768: 205,
    832: 183, 896: 182, 960: 166, 1024: 162,
}


@dataclass
class Figure1Result:
    """Measured Figure 1 data plus the paper's reference values."""

    fs_type: str
    sweep: SweepResult
    transition: Optional[TransitionRegion]
    fragility: FragilityReport
    scale_name: str

    def to_frame(self) -> ResultFrame:
        """The sweep as a tidy frame (one row per size x repetition x metric)."""
        frame = ResultFrame()
        for size_bytes in self.sweep.parameters():
            for run in self.sweep.repetitions_at(size_bytes):
                frame.extend(
                    rows_for_run(
                        {
                            "experiment": "figure1",
                            "fs": self.fs_type,
                            "file_size_mb": int(size_bytes // MiB),
                        },
                        run,
                    )
                )
        return frame

    def rows(self) -> List[Tuple[int, float, float]]:
        """(file size MiB, mean ops/s, relative stddev %) rows in sweep order."""
        rows = []
        rsd = dict(self.sweep.relative_stddevs())
        for size_bytes, mean in self.sweep.mean_throughputs():
            rows.append((int(size_bytes // MiB), mean, rsd[size_bytes]))
        return rows

    def memory_bound_mean(self) -> float:
        """Mean throughput across the sizes that clearly fit in the cache."""
        values = [mean for size, mean, _ in self.rows() if size <= 384]
        return sum(values) / len(values) if values else 0.0

    def io_bound_mean(self) -> float:
        """Mean throughput across the sizes clearly larger than the cache."""
        values = [mean for size, mean, _ in self.rows() if size >= 768]
        return sum(values) / len(values) if values else 0.0

    def drop_factor(self) -> float:
        """Ratio between the memory-bound plateau and the I/O-bound floor."""
        io_bound = self.io_bound_mean()
        return self.memory_bound_mean() / io_bound if io_bound > 0 else float("inf")

    def checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated against the measured data."""
        rows = self.rows()
        rsd_by_size = {size: rsd for size, _, rsd in rows}
        memory_sizes = [s for s, _, _ in rows if s <= 384]
        io_sizes = [s for s, _, _ in rows if s >= 768]
        memory_rsd = max((rsd_by_size[s] for s in memory_sizes), default=0.0)
        io_rsd = max((rsd_by_size[s] for s in io_sizes), default=0.0)
        in_transition = (
            self.transition is not None
            and 320 * MiB <= self.transition.parameter_low
            and self.transition.parameter_high <= 512 * MiB
        )
        return {
            "memory_bound_plateau_near_10k_ops": 5000 <= self.memory_bound_mean() <= 20000,
            "order_of_magnitude_drop": self.drop_factor() >= 10.0,
            "cliff_between_384_and_512_mb": in_transition,
            "io_bound_rsd_exceeds_memory_bound_rsd": io_rsd > memory_rsd,
            "io_bound_in_low_hundreds_ops": 50 <= self.io_bound_mean() <= 1000,
        }

    def render(self) -> str:
        """Figure-1-as-text: the sweep table, the transition and the warnings."""
        lines = [
            f"Figure 1 reproduction -- {self.fs_type} random read, {self.scale_name} scale",
            "",
            sweep_table(self.sweep, parameter_format="{:.0f}"),
            "",
        ]
        if self.transition is not None:
            lines.append("Transition: " + self.transition.describe("bytes"))
        lines.append("")
        lines.append("Fragility assessment:")
        lines.append(self.fragility.format())
        lines.append("")
        lines.append("Paper reference points (ops/s): " + ", ".join(
            f"{size}MB={value}" for size, value in sorted(PAPER_FIGURE1_OPS_S.items())
        ))
        checks = self.checks()
        lines.append("")
        lines.append(checks_line(checks))
        return "\n".join(lines)


def run_figure1(
    fs_type: str = "ext2",
    testbed: Optional[TestbedConfig] = None,
    scale: Optional[ExperimentScale] = None,
    sizes_mb: Optional[List[int]] = None,
    seed: int = 42,
) -> Figure1Result:
    """Run the Figure 1 sweep and return its result object.

    .. deprecated:: 1.3
        Thin shim over the declarative experiment API: the sweep is one
        :class:`~repro.core.experiment.Experiment` with a workload axis of
        per-size random-read specs.  Declare the grid directly for anything
        beyond regenerating the paper's figure.
    """
    warnings.warn(
        "run_figure1 is a deprecation shim; declare an Experiment with a "
        "workload axis of per-size specs instead (repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = scale if scale is not None else default_scale()
    scale.validate()
    testbed = testbed if testbed is not None else paper_testbed()
    sizes = list(sizes_mb) if sizes_mb is not None else list(scale.figure1_sizes_mb)

    config = BenchmarkConfig(
        duration_s=scale.figure1_duration_s,
        repetitions=scale.figure1_repetitions,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=max(1.0, scale.figure1_duration_s / 5.0),
        seed=seed,
    )
    specs = {size_mb: random_read_workload(size_mb * MiB) for size_mb in sizes}
    outcome = Experiment(
        grid=ParameterGrid.of(workload=list(specs.values()), fs=[fs_type]),
        name="figure1",
        config=config,
        testbed=testbed,
    ).run()

    sweep = SweepResult(parameter_name="file_size", unit="bytes")
    for size_mb, spec in specs.items():
        repetitions = outcome.sets[group_label(spec.name, fs_type)]
        sweep.add(
            size_mb * MiB, RepetitionSet(label=f"{size_mb}MB", runs=list(repetitions.runs))
        )

    return Figure1Result(
        fs_type=fs_type,
        sweep=sweep,
        transition=find_transition(sweep),
        fragility=assess_sweep(sweep),
        scale_name=scale.name,
    )
