"""Fresh-out-of-box vs steady-state SSD: the device-state scenario axis.

SSD benchmarking folklore (and every serious methodology document since)
says: never report numbers from a fresh drive.  A fresh-out-of-box SSD has
its whole over-provisioned pool free, so writes land at raw NAND program
speed; once the device has been filled and churned, every host write drags
garbage collection behind it.  This is the paper's hidden-state argument
pushed one layer below the file system -- same machine, same file system,
same workload, different *device state*, different results.

:func:`run_fresh_vs_steady` measures the divergence as a standard
two-valued ``device`` axis (``ssd-ftl-fresh`` vs ``ssd-ftl-steady``) on the
declarative :class:`~repro.core.experiment.Experiment` grid -- so it fans
out, caches and reproduces exactly like every other experiment.  The steady
device is manufactured deterministically by
:func:`~repro.storage.flash.precondition_ssd`, which itself reuses the
repository's steady-state detector to decide when the churned device's write
amplification has stabilised.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import Dict, Optional

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame
from repro.core.report import format_table
from repro.core.results import RepetitionSet
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.storage.config import TestbedConfig, paper_testbed


def default_ssd_steady_config(quick: bool = False) -> BenchmarkConfig:
    """Cold-cache, warmup-free protocol so device behaviour stays visible."""
    return BenchmarkConfig(
        duration_s=3.0 if quick else 10.0,
        repetitions=2 if quick else 5,
        warmup_mode=WarmupMode.NONE,
        cold_cache=True,
    )


@dataclass
class FreshVsSteadyResult:
    """Measurements of one workload on fresh and preconditioned SSD state."""

    fs_type: str
    workload_name: str
    testbed: TestbedConfig
    fresh: RepetitionSet
    steady: RepetitionSet
    frame: ResultFrame

    @property
    def slowdown_factor(self) -> float:
        """Mean fresh throughput over mean steady throughput (>1 = state hurts)."""
        steady_mean = self.steady.throughput_summary().mean
        if steady_mean <= 0:
            return float("inf")
        return self.fresh.throughput_summary().mean / steady_mean

    def _environment_mean(self, repetitions: RepetitionSet, key: str) -> float:
        values = [run.environment.get(key, 0.0) for run in repetitions.runs]
        return fmean(values) if values else 0.0

    @property
    def steady_write_amplification(self) -> float:
        """Mean measured-window write amplification on the steady device."""
        return self._environment_mean(self.steady, "device_write_amplification")

    @property
    def fresh_write_amplification(self) -> float:
        """Mean measured-window write amplification on the fresh device."""
        return self._environment_mean(self.fresh, "device_write_amplification")

    def checks(self) -> Dict[str, bool]:
        """The experiment's qualitative claims against the measured data."""
        return {
            "steady_write_amplification_above_1": self.steady_write_amplification > 1.0,
            "device_state_changes_throughput": self.slowdown_factor > 1.02
            or self.slowdown_factor < 0.98,
            "steady_gc_visible": self._environment_mean(self.steady, "device_gc_time_ns")
            > self._environment_mean(self.fresh, "device_gc_time_ns"),
        }

    def render(self) -> str:
        """Side-by-side report with flash telemetry and the qualitative checks."""
        fresh = self.fresh.throughput_summary()
        steady = self.steady.throughput_summary()
        rows = [
            [
                "fresh",
                f"{fresh.mean:.0f} +/-{fresh.relative_stddev_percent:.0f}%",
                f"{self.fresh_write_amplification:.2f}",
                f"{self._environment_mean(self.fresh, 'device_erases'):.0f}",
                f"{self._environment_mean(self.fresh, 'device_gc_time_ns') / 1e6:.1f}",
            ],
            [
                "steady",
                f"{steady.mean:.0f} +/-{steady.relative_stddev_percent:.0f}%",
                f"{self.steady_write_amplification:.2f}",
                f"{self._environment_mean(self.steady, 'device_erases'):.0f}",
                f"{self._environment_mean(self.steady, 'device_gc_time_ns') / 1e6:.1f}",
            ],
        ]
        lines = [
            "Fresh vs steady-state SSD",
            "=========================",
            f"workload: {self.workload_name} on {self.fs_type} "
            f"({self.testbed.describe()})",
            "",
            format_table(
                ["device state", "ops/s", "write amp", "erases", "GC ms"], rows
            ),
            "",
            f"fresh/steady throughput ratio: {self.slowdown_factor:.2f}x",
        ]
        for name, passed in self.checks().items():
            lines.append(f"[{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


def run_fresh_vs_steady(
    fs_type: str = "ext4",
    workload: str = "postmark",
    testbed: Optional[TestbedConfig] = None,
    config: Optional[BenchmarkConfig] = None,
    quick: bool = False,
    n_workers: Optional[int] = 1,
    cache_dir: Optional[str] = None,
) -> FreshVsSteadyResult:
    """Measure one workload on a fresh vs a preconditioned ``ssd-ftl`` device.

    Parameters
    ----------
    fs_type, workload:
        File system (``FS_REGISTRY``) and workload (``WORKLOAD_REGISTRY``
        name, or any object the experiment's workload axis accepts).
    testbed, config:
        Machine and protocol; default to the paper testbed and
        :func:`default_ssd_steady_config`.  The testbed's own device kind is
        irrelevant -- the ``device`` axis replaces it per cell.
    quick:
        Shorter protocol for CI and tests.
    n_workers, cache_dir:
        Parallel fan-out and persistent result cache, as everywhere else;
        the device kind is part of the testbed and therefore of the cache
        key, so fresh and steady cells never collide.
    """
    testbed = testbed if testbed is not None else paper_testbed()
    config = config if config is not None else default_ssd_steady_config(quick)

    outcome = Experiment(
        grid=ParameterGrid.of(
            fs=[fs_type],
            workload=[workload],
            device=["ssd-ftl-fresh", "ssd-ftl-steady"],
        ),
        name=f"ssd-fresh-vs-steady-{fs_type}",
        config=config,
        testbed=testbed,
        n_workers=n_workers,
        cache_dir=cache_dir,
    ).run()

    fresh = outcome.result_for(device="ssd-ftl-fresh")
    steady = outcome.result_for(device="ssd-ftl-steady")
    workload_name = outcome.cells[0].axes.get("workload", str(workload))
    return FreshVsSteadyResult(
        fs_type=fs_type,
        workload_name=str(workload_name),
        testbed=testbed,
        fresh=fresh,
        steady=steady,
        frame=outcome.frame,
    )
