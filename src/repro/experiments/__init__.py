"""Experiment harnesses: one module per figure/table of the paper.

Each harness builds the exact workload and measurement protocol of the
corresponding experiment in Section 3 of the paper (or the survey behind
Table 1), runs it on the simulated stack and returns a result object that can
render itself as text and check the paper's qualitative claims against the
measured data.  The ``benchmarks/`` directory exposes each harness through
pytest-benchmark, and ``EXPERIMENTS.md`` records paper-vs-measured values.

All harnesses accept ``paper_scale=True`` to run the original durations and
repetition counts; the defaults are shortened so the full set regenerates in
minutes.
"""

from repro.experiments.config import ExperimentScale, default_scale, paper_scale
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.zoom import TransitionZoomResult, run_transition_zoom
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "ExperimentScale",
    "default_scale",
    "paper_scale",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "TransitionZoomResult",
    "run_transition_zoom",
    "Table1Result",
    "run_table1",
]
