"""Experiment harnesses: one module per figure/table of the paper.

Each harness builds the exact workload and measurement protocol of the
corresponding experiment in Section 3 of the paper (or the survey behind
Table 1), runs it on the simulated stack and returns a result object that can
render itself as text and check the paper's qualitative claims against the
measured data.  The ``benchmarks/`` directory exposes each harness through
pytest-benchmark, and ``EXPERIMENTS.md`` records paper-vs-measured values.

All harnesses accept ``paper_scale=True`` to run the original durations and
repetition counts; the defaults are shortened so the full set regenerates in
minutes.

Since the experiment-API redesign every harness is a thin deprecation shim
over :class:`repro.core.experiment.Experiment`; ``EXPERIMENT_REGISTRY`` maps
the stable harness names (as printed by ``fsbench-rocket list``) to those
shims.
"""

from repro.experiments.config import ExperimentScale, default_scale, paper_scale
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.scalability import (
    ScalabilityResult,
    run_scalability,
    scale_mix_workload,
)
from repro.experiments.ssd_steady import FreshVsSteadyResult, run_fresh_vs_steady
from repro.experiments.zoom import TransitionZoomResult, run_transition_zoom
from repro.experiments.table1 import Table1Result, run_table1


def _registry():
    """Name -> (runner, description) for every named experiment harness."""
    from repro.aging.experiment import run_aged_vs_fresh
    from repro.core.suite import NanoBenchmarkSuite
    from repro.core.survey import MeasuredSurvey

    return {
        "figure1": (run_figure1, "throughput + relative stddev vs file size (the cache cliff)"),
        "figure2": (run_figure2, "cache warm-up timelines across file systems"),
        "figure3": (run_figure3, "read-latency histograms across working-set sizes"),
        "figure4": (run_figure4, "latency histograms sampled per interval over a warm-up run"),
        "table1": (run_table1, "the benchmark-usage survey (add --measured to execute it)"),
        "zoom": (run_transition_zoom, "bisect the memory-to-disk transition region"),
        "aged-vs-fresh": (run_aged_vs_fresh, "same benchmark on fresh vs realistically aged state"),
        "ssd-steady": (run_fresh_vs_steady, "same benchmark on fresh vs preconditioned (steady-state) SSD"),
        "scalability": (run_scalability, "throughput and tail latency vs concurrent clients on fresh/aged/steady-ssd stacks"),
        "suite": (NanoBenchmarkSuite, "the multi-dimensional nano-benchmark suite"),
        "survey": (MeasuredSurvey, "measured counterpart of Table 1 across dimensions"),
    }


#: Cache behind the lazy ``EXPERIMENT_REGISTRY`` module attribute.
_experiment_registry = None


def __getattr__(name):
    # EXPERIMENT_REGISTRY is the named-experiment catalogue ``fsbench-rocket
    # list`` enumerates: stable name -> (runner callable or class, one-line
    # description), all executing through repro.core.experiment.Experiment.
    # Built on first access so importing this package does not eagerly pull
    # the aging/suite/survey subsystems (_registry imports them lazily).
    if name == "EXPERIMENT_REGISTRY":
        global _experiment_registry
        if _experiment_registry is None:
            _experiment_registry = _registry()
        return _experiment_registry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentScale",
    "default_scale",
    "paper_scale",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "TransitionZoomResult",
    "run_transition_zoom",
    "Table1Result",
    "run_table1",
    "FreshVsSteadyResult",
    "run_fresh_vs_steady",
    "ScalabilityResult",
    "run_scalability",
    "scale_mix_workload",
]
