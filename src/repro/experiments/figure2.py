"""Figure 2: Ext2, Ext3 and XFS throughput over time (cache warm-up).

Protocol (Section 3.1): a 410 MB file -- "the largest file that fits in the
page cache" of the 512 MB machine -- read randomly by one thread, throughput
recorded every 10 seconds from a cold cache.  The paper's observations:

* at the start all three file systems are limited to disk throughput;
* at the end all three run at memory speed;
* in between ("between 4 and 13 minutes") they differ, by up to nearly an
  order of magnitude, because they warm the cache at different rates;
* only the whole curve characterises the systems fairly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame
from repro.core.parallel import group_label
from repro.core.report import checks_line
from repro.core.results import RunResult
from repro.core.runner import BenchmarkConfig, EnvironmentNoise, WarmupMode
from repro.core.steady_state import detect_steady_state
from repro.experiments.config import ExperimentScale, MiB, default_scale
from repro.storage.config import TestbedConfig, paper_testbed, scaled_testbed
from repro.workloads.micro import random_read_workload

DEFAULT_FILESYSTEMS = ("ext2", "ext3", "xfs")


@dataclass
class Figure2Result:
    """Per-file-system throughput timelines for the warm-up experiment."""

    file_size_bytes: int
    runs: Dict[str, RunResult] = field(default_factory=dict)
    scale_name: str = "default"

    def filesystems(self) -> List[str]:
        """File systems present, in insertion order."""
        return list(self.runs)

    def series(self, fs_type: str) -> List[Tuple[float, float]]:
        """The (time, ops/s) curve of one file system."""
        return self.runs[fs_type].timeline.throughput_series()

    def mid_run_spread(self) -> float:
        """Largest cross-file-system throughput ratio over the middle intervals.

        This is the paper's "differences ranging anywhere from a few
        percentage points to nearly an order of magnitude" claim in a single
        number: how far apart the systems get while the cache warms.
        """
        matrices = [self.runs[fs].timeline.throughputs() for fs in self.filesystems()]
        length = min(len(m) for m in matrices)
        if length == 0:
            return 1.0
        worst = 1.0
        for index in range(length):
            column = [m[index] for m in matrices if m[index] > 0]
            if len(column) >= 2:
                worst = max(worst, max(column) / min(column))
        return worst

    def endpoint_agreement(self) -> Tuple[float, float]:
        """Cross-FS max/min ratio at the first and at the last interval."""
        first = []
        last = []
        for fs in self.filesystems():
            throughputs = self.runs[fs].timeline.throughputs()
            if throughputs:
                first.append(throughputs[0])
                last.append(throughputs[-1])
        def ratio(values: List[float]) -> float:
            positive = [v for v in values if v > 0]
            return (max(positive) / min(positive)) if len(positive) >= 2 else 1.0
        return ratio(first), ratio(last)

    def warmup_interval_index(self, fs_type: str) -> Optional[int]:
        """Interval at which a file system's throughput became steady (warm)."""
        return detect_steady_state(self.runs[fs_type].timeline.throughputs(), window=4, cov_threshold=0.15)

    def checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated against the measured data."""
        start_ratio, end_ratio = self.endpoint_agreement()
        warmups = {fs: self.warmup_interval_index(fs) for fs in self.filesystems()}
        known = {fs: w for fs, w in warmups.items() if w is not None}
        distinct_order = len(set(known.values())) > 1 if len(known) > 1 else False
        return {
            "similar_at_cold_start": start_ratio <= 2.0,
            "similar_when_warm": end_ratio <= 1.5,
            "large_mid_run_differences": self.mid_run_spread() >= 3.0,
            "filesystems_warm_at_different_times": distinct_order,
        }

    def to_frame(self) -> ResultFrame:
        """The warm-up curves as a tidy frame (one row per fs x interval)."""
        frame = ResultFrame()
        for fs in self.filesystems():
            timeline = self.runs[fs].timeline
            for index, throughput in enumerate(timeline.throughputs()):
                frame.append(
                    {
                        "experiment": "figure2",
                        "fs": fs,
                        "time_s": (index + 1) * timeline.interval_s,
                        "metric": "interval_throughput_ops_s",
                        "value": throughput,
                    }
                )
        return frame

    def render(self) -> str:
        """Figure-2-as-text: one throughput column per file system.

        The table is a pivot of :meth:`to_frame` (time down, file systems
        across) -- the shared frame renderer, not bespoke table code.
        """
        table = self.to_frame().pivot(index="time_s", columns="fs").render(
            index_headers=["time (s)"],
            column_header=lambda fs: f"{fs} ops/s",
            value_format="{:.0f}",
            index_format="{:.0f}",
        )
        start_ratio, end_ratio = self.endpoint_agreement()
        summary = (
            f"\nCold-start cross-FS ratio {start_ratio:.2f}x, warm ratio {end_ratio:.2f}x, "
            f"worst mid-run ratio {self.mid_run_spread():.1f}x\n"
            + checks_line(self.checks())
        )
        return (
            f"Figure 2 reproduction -- {self.file_size_bytes // MiB} MB file, random read from cold cache\n\n"
            + table
            + summary
        )


def run_figure2(
    fs_types: Sequence[str] = DEFAULT_FILESYSTEMS,
    testbed: Optional[TestbedConfig] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> Figure2Result:
    """Run the warm-up timeline experiment for each file system.

    Following the paper, the file is "the largest file that fits in the page
    cache" of the testbed.  When no explicit testbed is given, the scale's
    ``figure2_testbed_scale`` shrinks the machine (RAM and file together) so
    the default regeneration stays fast while preserving the curve's shape;
    ``paper_scale()`` uses the full 512 MB machine and its 410 MB file.
    """
    warnings.warn(
        "run_figure2 is a deprecation shim; declare an Experiment with an fs "
        "axis instead (repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = scale if scale is not None else default_scale()
    scale.validate()
    if testbed is None:
        testbed = (
            paper_testbed()
            if scale.figure2_testbed_scale >= 1.0
            else scaled_testbed(scale.figure2_testbed_scale)
        )
    file_size = testbed.page_cache_bytes

    config = BenchmarkConfig(
        duration_s=scale.figure2_duration_s,
        repetitions=1,
        warmup_mode=WarmupMode.NONE,
        interval_s=scale.interval_s,
        histogram_interval_s=None,
        cold_cache=True,
        seed=seed,
        # A single timeline per file system, exactly like the paper's figure:
        # no cross-repetition environment noise (the file must keep fitting
        # in the cache for the warm endpoint to be reached).
        noise=EnvironmentNoise(enabled=False),
    )
    spec = random_read_workload(file_size)
    ordered_fs = list(dict.fromkeys(fs_types))
    outcome = Experiment(
        grid=ParameterGrid.of(fs=ordered_fs, workload=[spec]),
        name="figure2",
        config=config,
        testbed=testbed,
    ).run()
    result = Figure2Result(file_size_bytes=file_size, scale_name=scale.name)
    for fs_type in ordered_fs:
        result.runs[fs_type] = outcome.sets[group_label(spec.name, fs_type)].first()
    return result
