"""Figure 4: latency histograms sampled over time (Ext2, 256 MB file).

Protocol (Section 3.2): the random-read workload on a 256 MB file (which fits
in the cache), started cold, with a latency histogram collected for every
10-second interval.  The paper's observations:

* early intervals are dominated by a disk-latency peak (around 2^23 ns);
* as the cache warms the disk peak fades and a memory peak (around 2^11 ns)
  grows;
* the distribution is bi-modal during most of the run, so measuring "the"
  latency at any single point in time is arbitrary.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame
from repro.core.parallel import group_label
from repro.core.report import checks_line
from repro.core.results import RunResult
from repro.core.runner import BenchmarkConfig, EnvironmentNoise, WarmupMode
from repro.core.timeline import HistogramTimeline
from repro.experiments.config import ExperimentScale, MiB, default_scale
from repro.experiments.figure3 import DISK_PEAK_BUCKET_RANGE, MEMORY_PEAK_BUCKET_RANGE
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import random_read_workload


@dataclass
class Figure4Result:
    """The histogram-vs-time surface for the warm-up run."""

    fs_type: str
    file_size_bytes: int
    run: RunResult
    scale_name: str = "default"

    @property
    def timeline(self) -> HistogramTimeline:
        """The per-interval histograms."""
        if self.run.histogram_timeline is None:
            raise ValueError("figure 4 requires histogram_interval_s to be enabled")
        return self.run.histogram_timeline

    def disk_peak_fraction(self, interval: int) -> float:
        """Fraction of operations in the disk-latency buckets for one interval."""
        histogram = self.timeline.histogram_at(interval)
        low, high = DISK_PEAK_BUCKET_RANGE
        return sum(histogram.fractions()[low : high + 1])

    def memory_peak_fraction(self, interval: int) -> float:
        """Fraction of operations in the memory-latency buckets for one interval."""
        histogram = self.timeline.histogram_at(interval)
        low, high = MEMORY_PEAK_BUCKET_RANGE
        return sum(histogram.fractions()[low : high + 1])

    def peak_migration(self) -> List[Tuple[float, float, float]]:
        """(time s, disk fraction, memory fraction) per interval."""
        times = self.timeline.interval_times_s()
        return [
            (times[index], self.disk_peak_fraction(index), self.memory_peak_fraction(index))
            for index in range(len(self.timeline))
        ]

    def bimodal_fraction(self) -> float:
        """Fraction of intervals with a bi-modal latency distribution."""
        return self.timeline.bimodal_fraction()

    def checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated against the measured data."""
        migration = self.peak_migration()
        if len(migration) < 3:
            return {"enough_intervals": False}
        first_disk = migration[0][1]
        last_disk = migration[-1][1]
        first_memory = migration[0][2]
        last_memory = migration[-1][2]
        return {
            "enough_intervals": True,
            "disk_peak_dominates_early": first_disk > first_memory,
            "memory_peak_dominates_late": last_memory > last_disk,
            "disk_peak_fades": last_disk < first_disk * 0.5 or last_disk < 0.1,
            "bimodal_for_much_of_run": self.bimodal_fraction() >= 0.3,
        }

    def to_frame(self) -> ResultFrame:
        """The histogram-vs-time surface as a tidy frame (rows per interval)."""
        frame = ResultFrame()
        for time_s, disk, memory in self.peak_migration():
            histogram_index = int(time_s / self.timeline.interval_s) - 1
            bimodal = self.timeline.histogram_at(histogram_index).is_bimodal()
            base = {"experiment": "figure4", "fs": self.fs_type, "time_s": time_s}
            frame.append({**base, "metric": "disk-peak %", "value": round(100 * disk, 1)})
            frame.append({**base, "metric": "memory-peak %", "value": round(100 * memory, 1)})
            frame.append({**base, "metric": "bimodal", "value": "yes" if bimodal else "no"})
        return frame

    def render(self) -> str:
        """Figure-4-as-text: per-interval peak fractions and modality.

        The table is a pivot of :meth:`to_frame` (time down, metrics across)
        -- the shared frame renderer, not bespoke table code.
        """
        table = self.to_frame().pivot(
            index="time_s", columns="metric", aggregate="first"
        ).render(index_headers=["time (s)"], index_format="{:.0f}")
        lines = [
            f"Figure 4 reproduction -- {self.fs_type}, {self.file_size_bytes // MiB} MB file, "
            "histograms per 10 s interval",
            "",
            table,
            "",
            f"Bi-modal intervals: {100 * self.bimodal_fraction():.0f}% of the run",
            checks_line(self.checks()),
        ]
        return "\n".join(lines)


def run_figure4(
    fs_type: str = "ext2",
    testbed: Optional[TestbedConfig] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
) -> Figure4Result:
    """Run the histogram-over-time experiment.

    .. deprecated:: 1.3
        Thin shim over a single-cell
        :class:`~repro.core.experiment.Experiment`.
    """
    warnings.warn(
        "run_figure4 is a deprecation shim; declare an Experiment instead "
        "(repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = scale if scale is not None else default_scale()
    scale.validate()
    testbed = testbed if testbed is not None else paper_testbed()
    file_size = scale.figure4_file_mb * MiB

    config = BenchmarkConfig(
        duration_s=scale.figure4_duration_s,
        repetitions=1,
        warmup_mode=WarmupMode.NONE,
        interval_s=scale.interval_s,
        histogram_interval_s=scale.interval_s,
        cold_cache=True,
        seed=seed,
        noise=EnvironmentNoise(enabled=False),
    )
    spec = random_read_workload(file_size)
    outcome = Experiment(
        grid=ParameterGrid.of(workload=[spec], fs=[fs_type]),
        name="figure4",
        config=config,
        testbed=testbed,
    ).run()
    return Figure4Result(
        fs_type=fs_type,
        file_size_bytes=file_size,
        run=outcome.sets[group_label(spec.name, fs_type)].first(),
        scale_name=scale.name,
    )
