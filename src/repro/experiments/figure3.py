"""Figure 3: read-latency histograms for 64 MB, 1024 MB and 25 GB files.

Protocol (Section 3.2): the same single-threaded random-read workload with
latency histograms (log2 ns buckets) collected per operation, for three file
sizes spanning the working-set spectrum.  The paper's observations:

* 64 MB (fits in memory): a single peak around 4 microseconds;
* 1024 MB (twice RAM): two peaks of roughly equal height -- cache hits on the
  left, disk reads on the right;
* 25 GB (far larger than RAM): the memory peak becomes invisible, essentially
  all operations are disk reads;
* overall, working-set size moves reported latency across more than three
  orders of magnitude.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.histogram import LatencyHistogram, bucket_label
from repro.core.parallel import group_label
from repro.core.report import checks_line
from repro.core.results import RunResult
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.experiments.config import ExperimentScale, MiB, default_scale
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import random_read_workload

#: Bucket index (log2 ns) of a ~4 us cache-hit peak.
MEMORY_PEAK_BUCKET_RANGE = (10, 15)
#: Bucket index (log2 ns) of a ~4-30 ms disk peak.
DISK_PEAK_BUCKET_RANGE = (21, 26)


@dataclass
class Figure3Result:
    """Latency histograms per file size."""

    histograms: Dict[int, LatencyHistogram] = field(default_factory=dict)
    runs: Dict[int, RunResult] = field(default_factory=dict)
    scale_name: str = "default"

    def sizes_mb(self) -> List[int]:
        """File sizes (MiB) present, ascending."""
        return sorted(self.histograms)

    def modes_for(self, size_mb: int) -> List[int]:
        """Histogram peak bucket indices for one file size."""
        return self.histograms[size_mb].modes()

    def _has_peak_in(self, size_mb: int, bucket_range) -> bool:
        low, high = bucket_range
        return any(low <= mode <= high for mode in self.modes_for(size_mb))

    def latency_span_orders(self) -> float:
        """Orders of magnitude spanned across all three histograms."""
        merged = LatencyHistogram()
        for histogram in self.histograms.values():
            merged = merged.merge(histogram)
        return merged.span_orders_of_magnitude()

    def checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated against the measured data."""
        sizes = self.sizes_mb()
        small, medium, large = sizes[0], sizes[len(sizes) // 2], sizes[-1]
        medium_histogram = self.histograms[medium]
        large_histogram = self.histograms[large]
        # For the huge file the memory peak should be negligible.
        memory_fraction_large = sum(
            large_histogram.fractions()[MEMORY_PEAK_BUCKET_RANGE[0] : MEMORY_PEAK_BUCKET_RANGE[1] + 1]
        )
        return {
            "small_file_single_memory_peak": (
                self._has_peak_in(small, MEMORY_PEAK_BUCKET_RANGE)
                and not self._has_peak_in(small, DISK_PEAK_BUCKET_RANGE)
            ),
            "medium_file_bimodal": medium_histogram.is_bimodal()
            and self._has_peak_in(medium, MEMORY_PEAK_BUCKET_RANGE)
            and self._has_peak_in(medium, DISK_PEAK_BUCKET_RANGE),
            "large_file_disk_peak_dominates": self._has_peak_in(large, DISK_PEAK_BUCKET_RANGE)
            and memory_fraction_large < 0.15,
            "latencies_span_three_orders_of_magnitude": self.latency_span_orders() >= 3.0,
        }

    def render(self) -> str:
        """Figure-3-as-text: one histogram per file size."""
        lines = ["Figure 3 reproduction -- read latency histograms (log2 ns buckets)", ""]
        for size_mb in self.sizes_mb():
            histogram = self.histograms[size_mb]
            modes = ", ".join(f"{m} ({bucket_label(m)})" for m in histogram.modes())
            lines.append(f"--- {size_mb} MB file: n={histogram.total}, peaks at buckets [{modes}]")
            lines.append(histogram.to_ascii())
            lines.append("")
        lines.append(checks_line(self.checks()))
        return "\n".join(lines)


def run_figure3(
    fs_type: str = "ext2",
    testbed: Optional[TestbedConfig] = None,
    scale: Optional[ExperimentScale] = None,
    sizes_mb: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> Figure3Result:
    """Collect the Figure 3 latency histograms.

    .. deprecated:: 1.3
        Thin shim over one :class:`~repro.core.experiment.Experiment` with a
        per-size workload axis.
    """
    warnings.warn(
        "run_figure3 is a deprecation shim; declare an Experiment with a "
        "workload axis of per-size specs instead (repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = scale if scale is not None else default_scale()
    scale.validate()
    testbed = testbed if testbed is not None else paper_testbed()
    sizes = list(sizes_mb) if sizes_mb is not None else list(scale.figure3_sizes_mb)

    config = BenchmarkConfig(
        duration_s=0.0,
        max_ops=scale.figure3_ops,
        repetitions=1,
        warmup_mode=WarmupMode.PREWARM,
        interval_s=10.0,
        cold_cache=True,
        seed=seed,
    )
    specs = {size_mb: random_read_workload(size_mb * MiB) for size_mb in sizes}
    outcome = Experiment(
        grid=ParameterGrid.of(workload=list(specs.values()), fs=[fs_type]),
        name="figure3",
        config=config,
        testbed=testbed,
    ).run()

    result = Figure3Result(scale_name=scale.name)
    for size_mb, spec in specs.items():
        run = outcome.sets[group_label(spec.name, fs_type)].first()
        result.histograms[size_mb] = run.histogram
        result.runs[size_mb] = run
    return result
