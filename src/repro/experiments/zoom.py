"""The transition zoom (Section 3.1 text).

"It was surprising, at first, that such a sudden performance drop happens
within a narrow range of only 64MB.  We zoomed into the region between 384MB
and 448MB and observed that performance drops within an even narrower
region -- less than 6MB in size. ... we observed that in the transition
region ... the relative standard deviation skyrockets by up to 35%."

This harness reproduces the zoom: a coarse Figure-1 style sweep locates the
cliff, bisection narrows it, and a fine sweep across the narrowed region
measures how the relative standard deviation spikes inside it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.transition import TransitionRegion, find_transition, refine_transition
from repro.core.experiment import Experiment, ParameterGrid
from repro.core.parallel import group_label
from repro.core.report import checks_line, sweep_table
from repro.core.results import RepetitionSet, SweepResult
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.experiments.config import ExperimentScale, MiB, default_scale
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.micro import random_read_workload


@dataclass
class TransitionZoomResult:
    """Outcome of zooming into the memory-to-disk transition."""

    fs_type: str
    coarse_sweep: SweepResult
    fine_sweep: SweepResult
    coarse_region: Optional[TransitionRegion]
    refined_region: Optional[TransitionRegion]
    extra_measurements: int
    scale_name: str = "default"

    def refined_width_mb(self) -> Optional[float]:
        """Width of the refined transition region in MiB."""
        if self.refined_region is None:
            return None
        return self.refined_region.width / MiB

    def peak_rsd_percent(self) -> float:
        """Largest relative standard deviation seen across the fine sweep."""
        return max((rsd for _, rsd in self.fine_sweep.relative_stddevs()), default=0.0)

    def checks(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated against the measured data."""
        width = self.refined_width_mb()
        memory_rsds = [rsd for _, rsd in self.coarse_sweep.relative_stddevs()]
        baseline_rsd = min(memory_rsds) if memory_rsds else 0.0
        return {
            "transition_found": self.refined_region is not None,
            "transition_narrower_than_coarse_step": width is not None and width <= 32.0,
            "rsd_spikes_in_transition": self.peak_rsd_percent() >= max(10.0, 3 * baseline_rsd),
        }

    def render(self) -> str:
        """Readable report of the zoom."""
        lines = [f"Transition zoom -- {self.fs_type} random read ({self.scale_name} scale)", ""]
        if self.coarse_region is not None:
            lines.append("Coarse transition: " + self.coarse_region.describe("bytes"))
        if self.refined_region is not None:
            lines.append(
                "Refined transition: "
                + self.refined_region.describe("bytes")
                + f" (~{self.refined_width_mb():.1f} MiB wide, {self.extra_measurements} extra measurements)"
            )
        lines.append("")
        lines.append("Fine sweep across the transition region:")
        lines.append(sweep_table(self.fine_sweep))
        lines.append("")
        lines.append(f"Peak relative standard deviation in the region: {self.peak_rsd_percent():.0f}%")
        lines.append(checks_line(self.checks()))
        return "\n".join(lines)


def run_transition_zoom(
    fs_type: str = "ext2",
    testbed: Optional[TestbedConfig] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
    fine_step_mb: int = 8,
    target_width_mb: float = 8.0,
) -> TransitionZoomResult:
    """Locate the Figure-1 cliff, bisect it, and sweep finely across it.

    .. deprecated:: 1.3
        Thin shim: every measurement is one single-cell
        :class:`~repro.core.experiment.Experiment` run (the zoom is adaptive,
        so the grid is built one point at a time).
    """
    warnings.warn(
        "run_transition_zoom is a deprecation shim; drive single-cell "
        "Experiments from your own bisection instead (repro.core.experiment)",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = scale if scale is not None else default_scale()
    scale.validate()
    testbed = testbed if testbed is not None else paper_testbed()

    config = BenchmarkConfig(
        duration_s=scale.figure1_duration_s,
        # The run-to-run spread inside the transition region is the result;
        # a handful of repetitions is the minimum needed to estimate it.
        repetitions=max(5, scale.figure1_repetitions),
        warmup_mode=WarmupMode.PREWARM,
        interval_s=max(1.0, scale.figure1_duration_s / 5.0),
        seed=seed,
    )

    def measure(size_bytes: float) -> RepetitionSet:
        spec = random_read_workload(int(size_bytes))
        outcome = Experiment(
            grid=ParameterGrid.of(workload=[spec], fs=[fs_type]),
            name="transition-zoom",
            config=config,
            testbed=testbed,
        ).run()
        repetitions = outcome.sets[group_label(spec.name, fs_type)]
        return RepetitionSet(
            label=f"zoom-{int(size_bytes) // MiB}MB", runs=list(repetitions.runs)
        )

    # Coarse sweep bracketing the expected cliff (cache capacity +/- 64 MB).
    cache_bytes = testbed.page_cache_bytes
    coarse_sizes = [cache_bytes - 64 * MiB, cache_bytes - 32 * MiB, cache_bytes,
                    cache_bytes + 32 * MiB, cache_bytes + 64 * MiB]
    coarse = SweepResult(parameter_name="file_size", unit="bytes")
    for size in coarse_sizes:
        coarse.add(size, measure(size))

    coarse_region = find_transition(coarse)
    refined_region = None
    extra = 0
    if coarse_region is not None:
        refined_region, extra = refine_transition(
            coarse_region, measure, target_width=target_width_mb * MiB
        )

    # Fine sweep across (a neighbourhood of) the refined region.
    center = (
        (refined_region.parameter_low + refined_region.parameter_high) / 2
        if refined_region is not None
        else cache_bytes
    )
    fine = SweepResult(parameter_name="file_size", unit="bytes")
    for offset_mb in range(-2 * fine_step_mb, 2 * fine_step_mb + 1, fine_step_mb):
        size = int(center + offset_mb * MiB)
        if size > 0:
            fine.add(size, measure(size))

    return TransitionZoomResult(
        fs_type=fs_type,
        coarse_sweep=coarse,
        fine_sweep=fine,
        coarse_region=coarse_region,
        refined_region=refined_region,
        extra_measurements=extra,
        scale_name=scale.name,
    )
