"""Throughput and latency vs. concurrent clients: the contention scenario axis.

The survey's published evaluations measure one benchmark process on an
otherwise idle machine; real deployments run many.  This experiment sweeps
the ``clients`` axis (the deterministic virtual-time event loop of
:mod:`repro.core.concurrency`) across three stack states -- a fresh file
system on the mechanical disk, the same file system realistically *aged*,
and a fresh file system on the steady-state (preconditioned) FTL SSD --
and reports how aggregate throughput scales and per-client tail latency
degrades as sessions contend for the shared cache, allocator, journal and
device queue.

The default workload (:func:`scale_mix_workload`) gives every client one
large preallocated file it random-reads and fsync-appends.  Each state then
fails in its own honest way:

* **fresh/hdd** -- each client's file is contiguous but lives in its own
  block group, so contending clients drag the head across the whole disk:
  aggregate throughput *drops* below the single-client baseline.
* **aged/hdd** -- the churn-aged allocator shreds every file into
  hole-sized fragments, so the uncontended baseline is already slower than
  fresh.  (Under heavy contention aging can *help* on a mechanical disk:
  the aged free space is confined to a narrow region, which bounds
  inter-client seeks -- an effect the per-series tables make visible
  rather than hide.)
* **steady/ssd-ftl** -- no seeks, so throughput scales much better, but
  every fsynced append lands on a preconditioned FTL with no free erase
  blocks: garbage-collection time grows with the number of contending
  writers.

Everything is a standard :class:`~repro.core.experiment.Experiment` grid
(``clients`` is just a ``BenchmarkConfig`` override axis), so the sweep
fans out, caches and reproduces bit-identically like every other
experiment; the aged series restores a deterministic
:class:`~repro.aging.snapshot.StateSnapshot` manufactured on the fly,
exactly as ``aged-vs-fresh`` does.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from statistics import fmean
from typing import Dict, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, ParameterGrid
from repro.core.frame import ResultFrame
from repro.core.report import format_table
from repro.core.results import RepetitionSet, RunResult
from repro.core.runner import BenchmarkConfig, WarmupMode
from repro.storage.config import TestbedConfig, paper_testbed
from repro.workloads.fileset import FilesetSpec
from repro.workloads.randomdist import UniformSizes
from repro.workloads.spec import (
    FileSelector,
    FlowOp,
    OffsetMode,
    OpType,
    WorkloadSpec,
)

KiB = 1024
MiB = 1024 * 1024

#: The series labels, in report order.
FRESH_HDD = "fresh/hdd"
AGED_HDD = "aged/hdd"
STEADY_SSD_FTL = "steady/ssd-ftl"


def scale_mix_workload(
    file_bytes: int = 30 * MiB,
    iosize: int = 64 * KiB,
    read_repeat: int = 8,
    op_overhead_ns: float = 98_000.0,
) -> WorkloadSpec:
    """The default contention workload: one big file per client, reads + appends.

    Each client owns a single ``file_bytes`` preallocated file (the
    multi-client runner derives per-client filesets automatically) and
    alternates ``read_repeat`` uniform random reads with one fsynced append.
    The single-file working set is deliberate: it isolates *intra-file*
    placement, so the aged allocator's fragmentation shows up as a slower
    uncontended baseline instead of being masked by inter-file distance,
    while the fsynced appends generate the flash-translation-layer write
    traffic the steady-SSD series needs.  Size the sweep so every client's
    file fits the aged free space (``clients * file_bytes`` must stay well
    under the aging profile's free-space target).
    """
    return WorkloadSpec(
        name="scale-mix",
        description=(
            "Uniform random reads of one large preallocated file "
            "interleaved with fsynced appends"
        ),
        flowops=[
            FlowOp(
                op=OpType.READ,
                iosize=iosize,
                offset_mode=OffsetMode.RANDOM,
                file_selector=FileSelector.SAME,
                repeat=read_repeat,
            ),
            FlowOp(
                op=OpType.APPEND,
                iosize=iosize,
                file_selector=FileSelector.SAME,
                fsync_after=True,
            ),
        ],
        fileset=FilesetSpec(
            name="scaleset",
            file_count=1,
            size_distribution=UniformSizes(file_bytes, file_bytes),
            directories=1,
            prealloc_fraction=1.0,
        ),
        threads=1,
        op_overhead_ns=op_overhead_ns,
        dimensions=["io", "scaling"],
    )


def default_scalability_config(quick: bool = False) -> BenchmarkConfig:
    """Cold-cache, warmup-free protocol: contention starts at operation one."""
    return BenchmarkConfig(
        duration_s=2.0 if quick else 8.0,
        repetitions=2 if quick else 3,
        warmup_mode=WarmupMode.NONE,
        cold_cache=True,
    )


def _run_p95_ns(run: RunResult) -> float:
    """The per-client p95 of one repetition.

    Multi-client runs report the mean of the exact per-client percentiles;
    the single-client baseline has no per-client table (it is the legacy
    path, by design) so its one client's p95 comes from the latency
    histogram -- the same quantity, bucket-approximated.
    """
    if run.client_metrics:
        return fmean(row["p95_latency_ns"] for row in run.client_metrics)
    return run.p95_latency_ns


@dataclass
class ScalabilitySeries:
    """One stack state measured across the client counts.

    All values are means over the repetitions of the corresponding cell;
    ratios are relative to the smallest client count measured (the
    uncontended baseline).
    """

    label: str
    clients: Tuple[int, ...]
    throughput_ops_s: Dict[int, float]
    p95_latency_ns: Dict[int, float]
    gc_time_ns: Dict[int, float]

    @property
    def baseline(self) -> int:
        """The smallest measured client count."""
        return min(self.clients)

    def speedup(self, clients: int) -> float:
        """Aggregate throughput at ``clients`` relative to the baseline."""
        base = self.throughput_ops_s[self.baseline]
        return self.throughput_ops_s[clients] / base if base > 0 else float("inf")

    def p95_degradation(self, clients: int) -> float:
        """Per-client p95 at ``clients`` relative to the baseline."""
        base = self.p95_latency_ns[self.baseline]
        return self.p95_latency_ns[clients] / base if base > 0 else float("inf")


@dataclass
class ScalabilityResult:
    """The three series plus the tidy frame of every repetition."""

    fs_type: str
    workload_name: str
    testbed: TestbedConfig
    clients: Tuple[int, ...]
    series: Dict[str, ScalabilitySeries]
    frame: ResultFrame
    snapshot_path: str

    @property
    def max_clients(self) -> int:
        return max(self.clients)

    def checks(self) -> Dict[str, bool]:
        """The experiment's qualitative claims against the measured data.

        Contention must be visible (sublinear scaling everywhere,
        measurable per-client tail degradation everywhere, and an outright
        aggregate-throughput *drop* on the seek-bound fresh disk), and
        state must cost something: the aged file system's fragmentation
        makes its uncontended baseline slower than fresh, and the
        steady-state FTL pays garbage-collection time that grows with the
        number of contending writers.
        """
        top = self.max_clients
        fresh = self.series[FRESH_HDD]
        aged = self.series[AGED_HDD]
        ssd = self.series[STEADY_SSD_FTL]
        return {
            "aggregate_throughput_sublinear": all(
                s.speedup(top) < top for s in self.series.values()
            ),
            "per_client_p95_degrades": all(
                s.p95_degradation(top) > 1.05 for s in self.series.values()
            ),
            "fresh_hdd_seek_bound_under_load": fresh.speedup(top) < 1.0,
            "aged_baseline_slower_than_fresh": (
                aged.throughput_ops_s[aged.baseline]
                < fresh.throughput_ops_s[fresh.baseline]
            ),
            "ssd_ftl_gc_grows_with_clients": (
                ssd.gc_time_ns[top] > ssd.gc_time_ns[ssd.baseline]
            ),
        }

    def render(self) -> str:
        """Per-series scaling table with the qualitative checks appended."""
        headers = ["clients"]
        for label in (FRESH_HDD, AGED_HDD, STEADY_SSD_FTL):
            headers += [f"{label} ops/s", f"{label} p95 ms"]
        rows = []
        for count in self.clients:
            row = [str(count)]
            for label in (FRESH_HDD, AGED_HDD, STEADY_SSD_FTL):
                series = self.series[label]
                row.append(
                    f"{series.throughput_ops_s[count]:.0f} "
                    f"({series.speedup(count):.2f}x)"
                )
                row.append(
                    f"{series.p95_latency_ns[count] / 1e6:.1f} "
                    f"({series.p95_degradation(count):.2f}x)"
                )
            rows.append(row)
        lines = [
            "Multi-client scalability",
            "========================",
            f"workload: {self.workload_name} on {self.fs_type} "
            f"({self.testbed.describe()})",
            f"aged state: {self.snapshot_path}",
            "",
            format_table(headers, rows),
            "",
        ]
        for name, passed in self.checks().items():
            lines.append(f"[{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


def _series_from_sets(
    label: str, clients: Sequence[int], sets: Dict[int, RepetitionSet]
) -> ScalabilitySeries:
    return ScalabilitySeries(
        label=label,
        clients=tuple(clients),
        throughput_ops_s={
            count: fmean(run.throughput_ops_s for run in sets[count].runs)
            for count in clients
        },
        p95_latency_ns={
            count: fmean(_run_p95_ns(run) for run in sets[count].runs)
            for count in clients
        },
        gc_time_ns={
            count: fmean(
                run.environment.get("device_gc_time_ns", 0.0) for run in sets[count].runs
            )
            for count in clients
        },
    )


def _aged_snapshot(
    fs_type: str, testbed: TestbedConfig, snapshot_dir: Optional[str], quick: bool
) -> str:
    """Manufacture (or reuse) the aged state the aged series restores from."""
    if snapshot_dir is None:
        snapshot_dir = tempfile.mkdtemp(prefix="fsbench-scalability-")
    os.makedirs(snapshot_dir, exist_ok=True)
    path = os.path.join(snapshot_dir, f"aged-{fs_type}.snapshot.json")
    if not os.path.exists(path):
        from repro.aging.engines import AgingConfig, ChurnAger, quick_aging_config
        from repro.aging.snapshot import save_snapshot, snapshot_stack
        from repro.fs.stack import build_stack

        aging = quick_aging_config() if quick else AgingConfig()
        stack = build_stack(fs_type, testbed=testbed, seed=aging.seed)
        ChurnAger(aging).age(stack)
        save_snapshot(snapshot_stack(stack), path)
    return path


def run_scalability(
    fs_type: str = "ext4",
    workload: Optional[object] = None,
    clients: Sequence[int] = (1, 2, 4),
    testbed: Optional[TestbedConfig] = None,
    config: Optional[BenchmarkConfig] = None,
    quick: bool = False,
    n_workers: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
) -> ScalabilityResult:
    """Sweep client counts over fresh-hdd, aged-hdd and steady ssd-ftl stacks.

    Parameters
    ----------
    fs_type, workload:
        File system (``FS_REGISTRY``) and workload (``WORKLOAD_REGISTRY``
        name or any object the workload axis accepts); the default is
        :func:`scale_mix_workload`, designed so every qualitative check
        has a physical mechanism behind it (see the module docstring).
    clients:
        Client counts to sweep; must contain at least two distinct values
        (the smallest is the uncontended baseline of every ratio).
    testbed, config:
        Machine and protocol; default to the paper testbed and
        :func:`default_scalability_config`.  The testbed must be
        hdd-based: the device axis supplies the SSD variant per cell.
    quick:
        Shorter protocol, fewer repetitions, CI-sized aging profile.
    n_workers, cache_dir:
        Parallel fan-out and persistent result cache.  ``clients`` is part
        of each cell's cache key (except ``clients=1``, whose key is the
        legacy one -- shared with every other experiment that measured the
        same cell).
    snapshot_dir:
        Where the aged snapshot is written (a private temp directory by
        default).  An existing ``aged-<fs>.snapshot.json`` there is reused,
        so repeated runs age only once.

    The sweep is two grids rather than one cross-product because an aged
    snapshot records file-system geometry: state aged on the 250 GB
    mechanical disk cannot restore onto the 4 GiB flash device, so the
    ``snapshot`` axis only meets the hdd testbed.
    """
    testbed = testbed if testbed is not None else paper_testbed()
    config = config if config is not None else default_scalability_config(quick)
    workload = workload if workload is not None else scale_mix_workload()
    counts = sorted(dict.fromkeys(int(count) for count in clients))
    if len(counts) < 2:
        raise ValueError("clients must contain at least two distinct counts")
    if any(count < 1 for count in counts):
        raise ValueError("client counts must be >= 1")

    snapshot_path = _aged_snapshot(fs_type, testbed, snapshot_dir, quick)

    devices = Experiment(
        grid=ParameterGrid.of(
            fs=[fs_type],
            workload=[workload],
            device=["hdd", "ssd-ftl-steady"],
            clients=counts,
        ),
        name=f"scalability-devices-{fs_type}",
        config=config,
        testbed=testbed,
        n_workers=n_workers,
        cache_dir=cache_dir,
    ).run()
    aged = Experiment(
        grid=ParameterGrid.of(
            fs=[fs_type],
            workload=[workload],
            snapshot=[snapshot_path],
            clients=counts,
        ),
        name=f"scalability-aged-{fs_type}",
        config=config,
        testbed=testbed,
        n_workers=n_workers,
        cache_dir=cache_dir,
    ).run()

    series = {
        FRESH_HDD: _series_from_sets(
            FRESH_HDD,
            counts,
            {c: devices.result_for(device="hdd", clients=c) for c in counts},
        ),
        AGED_HDD: _series_from_sets(
            AGED_HDD,
            counts,
            {c: aged.result_for(clients=c) for c in counts},
        ),
        STEADY_SSD_FTL: _series_from_sets(
            STEADY_SSD_FTL,
            counts,
            {c: devices.result_for(device="ssd-ftl-steady", clients=c) for c in counts},
        ),
    }

    frame = ResultFrame()
    for outcome in (devices, aged):
        for row in outcome.frame.rows:
            frame.append(dict(row))

    workload_name = devices.cells[0].axes.get("workload", str(workload))
    return ScalabilityResult(
        fs_type=fs_type,
        workload_name=str(workload_name),
        testbed=testbed,
        clients=tuple(counts),
        series=series,
        frame=frame,
        snapshot_path=snapshot_path,
    )
