"""Shared experiment scaling.

The paper's protocol (20-minute runs, 10 repetitions, 16 file sizes) is
faithful but slow to simulate in full on every benchmark run.  Every harness
therefore takes an :class:`ExperimentScale` with two presets:

* :func:`default_scale` -- shortened measured windows and fewer repetitions;
  the *shape* of every figure is preserved (the physics does not depend on
  how long we average).
* :func:`paper_scale` -- the original durations and repetition counts, for
  when fidelity matters more than wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class ExperimentScale:
    """Durations and repetition counts used by the experiment harnesses.

    Attributes
    ----------
    name:
        "default" or "paper" (free-form for custom scales).
    figure1_duration_s, figure1_repetitions:
        Measured window and repetitions per file size for Figure 1.
    figure1_sizes_mb:
        File sizes for the Figure 1 sweep, in MiB.
    figure2_duration_s:
        Length of the Figure 2 timeline (the paper records 20 minutes).
    figure2_file_mb:
        File size of the Figure 2/timeline experiment (410 MB in the paper).
        Only used when an explicit testbed is supplied; by default the
        harness follows the paper's definition and uses "the largest file
        that fits in the page cache" of whatever testbed it runs on.
    figure2_testbed_scale:
        Fraction by which the simulated machine is shrunk for the Figure 2
        warm-up experiment.  Shrinking RAM and file size together preserves
        the curve's shape exactly (the same number of cache misses per byte
        of file) while keeping the default regeneration time reasonable;
        ``paper_scale()`` uses 1.0.
    figure3_ops:
        Operations per histogram in Figure 3.
    figure3_sizes_mb:
        File sizes of the Figure 3 histograms (64 MB, 1024 MB, 25 GB).
    figure4_duration_s:
        Length of the Figure 4 histogram-timeline run.
    figure4_file_mb:
        File size of the Figure 4 experiment (256 MB in the paper).
    interval_s:
        Timeline sampling interval (10 s in the paper).
    """

    name: str
    figure1_duration_s: float
    figure1_repetitions: int
    figure1_sizes_mb: tuple
    figure2_duration_s: float
    figure2_file_mb: int
    figure2_testbed_scale: float
    figure3_ops: int
    figure3_sizes_mb: tuple
    figure4_duration_s: float
    figure4_file_mb: int
    interval_s: float = 10.0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical scales."""
        if self.figure1_duration_s <= 0 or self.figure2_duration_s <= 0 or self.figure4_duration_s <= 0:
            raise ValueError("durations must be positive")
        if self.figure1_repetitions <= 0 or self.figure3_ops <= 0:
            raise ValueError("repetitions and op counts must be positive")
        if not self.figure1_sizes_mb or not self.figure3_sizes_mb:
            raise ValueError("size lists must not be empty")
        if not (0.0 < self.figure2_testbed_scale <= 1.0):
            raise ValueError("figure2_testbed_scale must be in (0, 1]")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


def default_scale() -> ExperimentScale:
    """Shortened protocol used by tests, benchmarks and examples."""
    return ExperimentScale(
        name="default",
        figure1_duration_s=5.0,
        figure1_repetitions=3,
        figure1_sizes_mb=tuple(range(64, 1025, 64)),
        figure2_duration_s=360.0,
        figure2_file_mb=410,
        figure2_testbed_scale=0.25,
        figure3_ops=4000,
        figure3_sizes_mb=(64, 1024, 25 * 1024),
        figure4_duration_s=280.0,
        figure4_file_mb=256,
        interval_s=10.0,
    )


def paper_scale() -> ExperimentScale:
    """The paper's original protocol (slow: full 20-minute simulated runs)."""
    return ExperimentScale(
        name="paper",
        figure1_duration_s=60.0,
        figure1_repetitions=10,
        figure1_sizes_mb=tuple(range(64, 1025, 64)),
        figure2_duration_s=1200.0,
        figure2_file_mb=410,
        figure2_testbed_scale=1.0,
        figure3_ops=20000,
        figure3_sizes_mb=(64, 1024, 25 * 1024),
        figure4_duration_s=280.0,
        figure4_file_mb=256,
        interval_s=10.0,
    )


def quick_scale() -> ExperimentScale:
    """An even smaller protocol for unit tests (seconds of wall clock)."""
    return ExperimentScale(
        name="quick",
        figure1_duration_s=2.0,
        figure1_repetitions=2,
        figure1_sizes_mb=(256, 384, 448, 512, 1024),
        figure2_duration_s=150.0,
        figure2_file_mb=410,
        figure2_testbed_scale=0.125,
        figure3_ops=800,
        figure3_sizes_mb=(64, 1024, 4096),
        figure4_duration_s=280.0,
        figure4_file_mb=256,
        interval_s=10.0,
    )
