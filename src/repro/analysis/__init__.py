"""Analysis of benchmark results: regimes, transitions, fragility, comparison.

The modules here turn raw results into the judgements the paper says careful
researchers should be making explicitly:

* :mod:`repro.analysis.regimes` -- label measurements as memory-bound,
  transition or I/O-bound rather than averaging across regimes;
* :mod:`repro.analysis.transition` -- locate and characterise the
  memory-to-disk transition of a parameter sweep (the Figure 1 cliff and the
  "less than 6 MB" zoom);
* :mod:`repro.analysis.fragility` -- quantify how fragile a configuration is
  and generate explicit warnings for reports;
* :mod:`repro.analysis.comparison` -- honest multi-system comparison that
  refuses to produce a single-number winner when the data spans regimes.
"""

from repro.analysis.comparison import ComparisonVerdict, compare_repetition_sets, compare_sweeps
from repro.analysis.fragility import (
    FragilityReport,
    FragilityWarning,
    assess_aging,
    assess_sweep,
)
from repro.analysis.regimes import Regime, classify_run, classify_sweep_point
from repro.analysis.transition import TransitionRegion, find_transition, refine_transition

__all__ = [
    "ComparisonVerdict",
    "compare_repetition_sets",
    "compare_sweeps",
    "FragilityReport",
    "FragilityWarning",
    "assess_aging",
    "assess_sweep",
    "Regime",
    "classify_run",
    "classify_sweep_point",
    "TransitionRegion",
    "find_transition",
    "refine_transition",
]
