"""Regime labelling: memory-bound, transition, or I/O-bound.

Section 3.1 of the paper: "For file sizes less than 384MB, we mostly exercise
the memory subsystem; for file sizes greater than 448MB, we exercise the disk
system.  This suggests that researchers should either publish results that
span a wide range or make explicit both the memory- and I/O-bound
performance."  These helpers make that labelling explicit and automatic.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from repro.core.results import RepetitionSet, RunResult, SweepResult


class Regime(str, Enum):
    """Which subsystem a measurement is actually exercising."""

    MEMORY_BOUND = "memory-bound"
    TRANSITION = "transition"
    IO_BOUND = "io-bound"

    @property
    def description(self) -> str:
        """One-line description for reports."""
        return {
            Regime.MEMORY_BOUND: "working set fits in the page cache; measures the memory/software path",
            Regime.TRANSITION: "working set is near the cache size; results are fragile",
            Regime.IO_BOUND: "working set greatly exceeds the cache; measures the device",
        }[self]


#: Hit ratios above this are treated as fully cached.
MEMORY_BOUND_HIT_RATIO = 0.97
#: Hit ratios below this are treated as device-bound.
IO_BOUND_HIT_RATIO = 0.60


def classify_run(run: RunResult) -> Regime:
    """Classify one run by its measured cache hit ratio."""
    if run.cache_hit_ratio >= MEMORY_BOUND_HIT_RATIO:
        return Regime.MEMORY_BOUND
    if run.cache_hit_ratio <= IO_BOUND_HIT_RATIO:
        return Regime.IO_BOUND
    return Regime.TRANSITION


def classify_repetitions(repetitions: RepetitionSet) -> Regime:
    """Classify a repetition set: the majority regime of its runs.

    When repetitions disagree (some memory-bound, some I/O-bound), the whole
    set is labelled :attr:`Regime.TRANSITION` -- disagreement across
    repetitions is itself the transition signature.
    """
    regimes = [classify_run(run) for run in repetitions]
    if not regimes:
        raise ValueError("cannot classify an empty repetition set")
    unique = set(regimes)
    if len(unique) > 1:
        return Regime.TRANSITION
    return regimes[0]


def classify_sweep_point(sweep: SweepResult, parameter: float) -> Regime:
    """Classify one swept parameter value."""
    return classify_repetitions(sweep.repetitions_at(parameter))


def classify_sweep(sweep: SweepResult) -> Dict[float, Regime]:
    """Classify every point of a sweep."""
    return {parameter: classify_sweep_point(sweep, parameter) for parameter in sweep.parameters()}


def regime_ranges(sweep: SweepResult) -> List[Tuple[Regime, float, float]]:
    """Contiguous parameter ranges per regime, in sweep order.

    Returns a list of ``(regime, first_parameter, last_parameter)`` tuples --
    the machine-readable version of "for file sizes less than 384 MB ... for
    file sizes greater than 448 MB ...".
    """
    labelled = classify_sweep(sweep)
    parameters = sweep.parameters()
    ranges: List[Tuple[Regime, float, float]] = []
    for parameter in parameters:
        regime = labelled[parameter]
        if ranges and ranges[-1][0] is regime:
            ranges[-1] = (regime, ranges[-1][1], parameter)
        else:
            ranges.append((regime, parameter, parameter))
    return ranges


def per_regime_summary(sweep: SweepResult) -> Dict[Regime, Dict[str, float]]:
    """Mean throughput and spread per regime (the honest way to summarise Figure 1)."""
    labelled = classify_sweep(sweep)
    grouped: Dict[Regime, List[float]] = {}
    for parameter, regime in labelled.items():
        grouped.setdefault(regime, []).extend(sweep.repetitions_at(parameter).throughputs())
    summary: Dict[Regime, Dict[str, float]] = {}
    for regime, values in grouped.items():
        mean = sum(values) / len(values)
        summary[regime] = {
            "mean_ops_s": mean,
            "min_ops_s": min(values),
            "max_ops_s": max(values),
            "samples": float(len(values)),
        }
    return summary
