"""Honest cross-system comparison.

"What does it mean for one file system to be better than another?"  The
comparison helpers answer per dimension and per regime, refuse to collapse
incomparable regimes into a single winner, and never declare a difference the
confidence intervals cannot support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.regimes import Regime, classify_repetitions
from repro.core.results import RepetitionSet, SweepResult
from repro.core.stats import overlapping_confidence_intervals


@dataclass(frozen=True)
class ComparisonVerdict:
    """The outcome of comparing two systems on one configuration."""

    label_a: str
    label_b: str
    mean_a: float
    mean_b: float
    significant: bool
    winner: Optional[str]
    regime: Optional[Regime] = None

    @property
    def speedup(self) -> float:
        """Ratio of the faster mean to the slower mean (>= 1)."""
        low = min(self.mean_a, self.mean_b)
        high = max(self.mean_a, self.mean_b)
        return high / low if low > 0 else float("inf")

    def format(self) -> str:
        """Render the verdict as one report line."""
        regime_note = f" [{self.regime.value}]" if self.regime is not None else ""
        if not self.significant:
            return (
                f"{self.label_a} ({self.mean_a:.0f}) vs {self.label_b} ({self.mean_b:.0f}){regime_note}: "
                "confidence intervals overlap -- no demonstrated difference"
            )
        return (
            f"{self.winner} is {self.speedup:.2f}x faster{regime_note} "
            f"({self.mean_a:.0f} vs {self.mean_b:.0f} ops/s)"
        )


def compare_repetition_sets(
    label_a: str, a: RepetitionSet, label_b: str, b: RepetitionSet
) -> ComparisonVerdict:
    """Compare two repetition sets of the same workload configuration."""
    mean_a = a.throughput_summary().mean
    mean_b = b.throughput_summary().mean
    overlap = overlapping_confidence_intervals(a.throughputs(), b.throughputs())
    regime_a = classify_repetitions(a)
    regime_b = classify_repetitions(b)
    regime = regime_a if regime_a is regime_b else Regime.TRANSITION
    if overlap:
        return ComparisonVerdict(
            label_a=label_a, label_b=label_b, mean_a=mean_a, mean_b=mean_b,
            significant=False, winner=None, regime=regime,
        )
    winner = label_a if mean_a > mean_b else label_b
    return ComparisonVerdict(
        label_a=label_a, label_b=label_b, mean_a=mean_a, mean_b=mean_b,
        significant=True, winner=winner, regime=regime,
    )


@dataclass
class SweepComparison:
    """Point-by-point comparison of two sweeps of the same parameter."""

    label_a: str
    label_b: str
    verdicts: Dict[float, ComparisonVerdict] = field(default_factory=dict)

    def parameters(self) -> List[float]:
        """Compared parameter values in ascending order."""
        return sorted(self.verdicts)

    def wins(self, label: str) -> int:
        """Number of points where ``label`` is the significant winner."""
        return sum(1 for v in self.verdicts.values() if v.significant and v.winner == label)

    def undecided(self) -> int:
        """Number of points with overlapping confidence intervals."""
        return sum(1 for v in self.verdicts.values() if not v.significant)

    def crossover_parameters(self) -> List[float]:
        """Parameter values where the significant winner changes.

        A non-empty list is the strongest possible argument against a
        single-number comparison: each system wins somewhere.
        """
        ordered = self.parameters()
        crossovers: List[float] = []
        previous_winner: Optional[str] = None
        for parameter in ordered:
            verdict = self.verdicts[parameter]
            if not verdict.significant:
                continue
            if previous_winner is not None and verdict.winner != previous_winner:
                crossovers.append(parameter)
            previous_winner = verdict.winner
        return crossovers

    def summary(self) -> str:
        """Render the comparison as a short paragraph."""
        lines = [
            f"{self.label_a} wins at {self.wins(self.label_a)} point(s), "
            f"{self.label_b} wins at {self.wins(self.label_b)} point(s), "
            f"{self.undecided()} point(s) undecided."
        ]
        crossovers = self.crossover_parameters()
        if crossovers:
            formatted = ", ".join(f"{c:g}" for c in crossovers)
            lines.append(
                f"The winner changes at parameter value(s): {formatted} -- "
                "a single-number comparison would hide this."
            )
        for parameter in self.parameters():
            lines.append(f"  {parameter:g}: {self.verdicts[parameter].format()}")
        return "\n".join(lines)


def compare_sweeps(label_a: str, sweep_a: SweepResult, label_b: str, sweep_b: SweepResult) -> SweepComparison:
    """Compare two sweeps point by point over their common parameter values."""
    comparison = SweepComparison(label_a=label_a, label_b=label_b)
    common = sorted(set(sweep_a.parameters()) & set(sweep_b.parameters()))
    for parameter in common:
        comparison.verdicts[parameter] = compare_repetition_sets(
            label_a, sweep_a.repetitions_at(parameter), label_b, sweep_b.repetitions_at(parameter)
        )
    return comparison
