"""Fragility assessment: how much can this result be trusted?

"Benchmarks are very fragile: just a tiny variation in the amount of
available cache space can produce a large variation in performance."  The
functions here scan a finished sweep (or a single repetition set) and emit
explicit, human-readable warnings wherever the data shows one of the paper's
failure patterns:

* run-to-run relative standard deviation above a threshold,
* an order-of-magnitude cliff between adjacent parameter values,
* repetitions that straddle regimes (some cached, some not),
* bi-modal latency distributions hiding behind a mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.regimes import classify_run
from repro.analysis.transition import find_transition
from repro.core.results import RepetitionSet, SweepResult


@dataclass(frozen=True)
class FragilityWarning:
    """One specific reason to distrust (or heavily qualify) a result."""

    kind: str
    message: str
    parameter: Optional[float] = None
    severity: str = "warning"  # "warning" | "severe"

    def format(self) -> str:
        """Render as a single report line."""
        prefix = "SEVERE" if self.severity == "severe" else "warning"
        where = f" at {self.parameter:g}" if self.parameter is not None else ""
        return f"[{prefix}] {self.kind}{where}: {self.message}"


@dataclass
class FragilityReport:
    """All warnings for one sweep or repetition set."""

    warnings: List[FragilityWarning] = field(default_factory=list)

    def add(self, warning: FragilityWarning) -> None:
        """Append one warning."""
        self.warnings.append(warning)

    @property
    def is_clean(self) -> bool:
        """True when nothing suspicious was found."""
        return not self.warnings

    @property
    def severe_count(self) -> int:
        """Number of severe warnings."""
        return sum(1 for w in self.warnings if w.severity == "severe")

    def format(self) -> str:
        """Render the report (or a clean bill of health)."""
        if self.is_clean:
            return "No fragility indicators found."
        return "\n".join(warning.format() for warning in self.warnings)


#: Relative standard deviation (in %) above which a result is flagged.
RSD_WARNING_PERCENT = 10.0
RSD_SEVERE_PERCENT = 25.0
#: Adjacent-point change factor above which a cliff is flagged.
CLIFF_FACTOR = 3.0
#: Aged/fresh throughput divergence factor above which a result is flagged.
AGING_DELTA_FACTOR = 1.25


def assess_repetitions(
    repetitions: RepetitionSet, parameter: Optional[float] = None
) -> List[FragilityWarning]:
    """Warnings for one repetition set."""
    warnings: List[FragilityWarning] = []
    summary = repetitions.throughput_summary()
    rsd = summary.relative_stddev_percent
    if rsd >= RSD_SEVERE_PERCENT:
        warnings.append(
            FragilityWarning(
                kind="run-to-run variation",
                parameter=parameter,
                severity="severe",
                message=(
                    f"relative standard deviation is {rsd:.0f}% across {summary.n} repetitions; "
                    "the mean alone is meaningless here"
                ),
            )
        )
    elif rsd >= RSD_WARNING_PERCENT:
        warnings.append(
            FragilityWarning(
                kind="run-to-run variation",
                parameter=parameter,
                message=f"relative standard deviation is {rsd:.0f}% across {summary.n} repetitions",
            )
        )

    regimes = {classify_run(run) for run in repetitions}
    if len(regimes) > 1:
        names = ", ".join(sorted(r.value for r in regimes))
        warnings.append(
            FragilityWarning(
                kind="regime instability",
                parameter=parameter,
                severity="severe",
                message=(
                    f"repetitions fall into different regimes ({names}); "
                    "a few megabytes of cache decide which subsystem is measured"
                ),
            )
        )

    merged = repetitions.merged_histogram()
    if not merged.is_empty and merged.is_bimodal():
        warnings.append(
            FragilityWarning(
                kind="bi-modal latency",
                parameter=parameter,
                message=(
                    "the latency distribution has multiple peaks "
                    f"(spanning {merged.span_orders_of_magnitude():.1f} orders of magnitude); "
                    "report the histogram, not the average"
                ),
            )
        )
    return warnings


def assess_aging(
    fresh: RepetitionSet,
    aged: RepetitionSet,
    delta_factor: float = AGING_DELTA_FACTOR,
) -> List[FragilityWarning]:
    """Warnings when the same benchmark diverges between fresh and aged state.

    A fresh-vs-aged throughput gap means the published number depends on a
    state variable (file system age) that evaluations almost never disclose;
    a *regime* difference means fresh and aged runs are not even measuring
    the same subsystem.
    """
    if delta_factor <= 1.0:
        raise ValueError("delta_factor must exceed 1.0")
    warnings: List[FragilityWarning] = []
    fresh_mean = fresh.throughput_summary().mean
    aged_mean = aged.throughput_summary().mean
    if fresh_mean > 0 and aged_mean > 0:
        ratio = max(fresh_mean / aged_mean, aged_mean / fresh_mean)
        if ratio >= delta_factor:
            warnings.append(
                FragilityWarning(
                    kind="aged-state sensitivity",
                    severity="severe" if ratio >= 2 * delta_factor else "warning",
                    message=(
                        f"throughput differs {ratio:.2f}x between fresh and aged states "
                        f"({fresh_mean:.0f} vs {aged_mean:.0f} ops/s); "
                        "results are meaningless without disclosing file system age"
                    ),
                )
            )

    fresh_regimes = {classify_run(run) for run in fresh}
    aged_regimes = {classify_run(run) for run in aged}
    if fresh_regimes and aged_regimes and fresh_regimes != aged_regimes:
        fresh_names = ", ".join(sorted(r.value for r in fresh_regimes))
        aged_names = ", ".join(sorted(r.value for r in aged_regimes))
        warnings.append(
            FragilityWarning(
                kind="aging regime shift",
                severity="severe",
                message=(
                    f"fresh runs are {fresh_names} but aged runs are {aged_names}; "
                    "aging moved the benchmark to a different subsystem entirely"
                ),
            )
        )
    return warnings


def assess_sweep(sweep: SweepResult) -> FragilityReport:
    """Full fragility report for a parameter sweep."""
    report = FragilityReport()
    for parameter in sweep.parameters():
        for warning in assess_repetitions(sweep.repetitions_at(parameter), parameter):
            report.add(warning)

    transition = find_transition(sweep, min_drop_factor=CLIFF_FACTOR)
    if transition is not None:
        report.add(
            FragilityWarning(
                kind="performance cliff",
                parameter=transition.parameter_low,
                severity="severe",
                message=(
                    f"{transition.describe(sweep.unit)}; any single point in this range "
                    "misrepresents the system"
                ),
            )
        )

    dynamic_range = sweep.dynamic_range()
    if dynamic_range >= 10.0:
        report.add(
            FragilityWarning(
                kind="wide dynamic range",
                message=(
                    f"mean throughput varies {dynamic_range:.0f}x across the sweep; "
                    "publish the whole curve, not a point"
                ),
            )
        )
    return report
