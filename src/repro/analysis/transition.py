"""Locating and characterising the memory-to-disk transition.

Figure 1's cliff and the Section 3.1 zoom ("performance drops within an even
narrower region -- less than 6 MB in size") are both statements about where,
and how abruptly, a sweep's throughput collapses.  :func:`find_transition`
extracts that from a finished :class:`~repro.core.results.SweepResult`;
:func:`refine_transition` runs additional measurements to narrow the region,
bisection style, the way the authors zoomed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.results import RepetitionSet, SweepResult


@dataclass(frozen=True)
class TransitionRegion:
    """A localised performance transition within a parameter sweep."""

    parameter_low: float
    parameter_high: float
    throughput_before: float
    throughput_after: float

    @property
    def width(self) -> float:
        """Width of the region in parameter units."""
        return self.parameter_high - self.parameter_low

    @property
    def drop_factor(self) -> float:
        """How many times throughput drops across the region (>= 1)."""
        if self.throughput_after <= 0:
            return float("inf")
        factor = self.throughput_before / self.throughput_after
        return factor if factor >= 1.0 else 1.0 / factor

    def describe(self, unit: str = "") -> str:
        """Readable summary of the region."""
        unit_suffix = f" {unit}" if unit else ""
        return (
            f"throughput changes {self.drop_factor:.1f}x between "
            f"{self.parameter_low:.0f}{unit_suffix} and {self.parameter_high:.0f}{unit_suffix} "
            f"({self.width:.0f}{unit_suffix} wide)"
        )


def find_transition(sweep: SweepResult, min_drop_factor: float = 2.0) -> Optional[TransitionRegion]:
    """Find the sharpest adjacent-point throughput change in a sweep.

    Returns ``None`` when no adjacent pair changes by at least
    ``min_drop_factor``.
    """
    if min_drop_factor <= 1.0:
        raise ValueError("min_drop_factor must exceed 1")
    means = sweep.mean_throughputs()
    if len(means) < 2:
        return None
    best: Optional[TransitionRegion] = None
    best_factor = min_drop_factor
    for (left_param, left_mean), (right_param, right_mean) in zip(means, means[1:]):
        low = min(left_mean, right_mean)
        high = max(left_mean, right_mean)
        if low <= 0:
            factor = float("inf") if high > 0 else 1.0
        else:
            factor = high / low
        if factor >= best_factor:
            best_factor = factor
            best = TransitionRegion(
                parameter_low=left_param,
                parameter_high=right_param,
                throughput_before=left_mean,
                throughput_after=right_mean,
            )
    return best


def refine_transition(
    region: TransitionRegion,
    measure: Callable[[float], RepetitionSet],
    target_width: float,
    max_measurements: int = 16,
    min_drop_factor: float = 2.0,
) -> Tuple[TransitionRegion, int]:
    """Narrow a transition region by bisection.

    ``measure`` runs the benchmark at one parameter value and returns its
    repetition set.  Returns the refined region and the number of additional
    measurements performed.  This is the mechanism behind the paper's
    observation that the Figure 1 drop happens "within an even narrower
    region -- less than 6 MB in size".
    """
    if target_width <= 0:
        raise ValueError("target_width must be positive")
    low = region.parameter_low
    high = region.parameter_high
    low_throughput = region.throughput_before
    high_throughput = region.throughput_after
    measurements = 0

    while (high - low) > target_width and measurements < max_measurements:
        midpoint = (low + high) / 2.0
        mid_throughput = measure(midpoint).throughput_summary().mean
        measurements += 1
        # Keep the half that still contains the big change.
        left_factor = _change_factor(low_throughput, mid_throughput)
        right_factor = _change_factor(mid_throughput, high_throughput)
        if left_factor >= right_factor:
            high, high_throughput = midpoint, mid_throughput
        else:
            low, low_throughput = midpoint, mid_throughput
        if max(left_factor, right_factor) < min_drop_factor:
            # The change has been diluted below significance; stop refining.
            break

    return (
        TransitionRegion(
            parameter_low=low,
            parameter_high=high,
            throughput_before=low_throughput,
            throughput_after=high_throughput,
        ),
        measurements,
    )


def _change_factor(a: float, b: float) -> float:
    low = min(a, b)
    high = max(a, b)
    if low <= 0:
        return float("inf") if high > 0 else 1.0
    return high / low


def expected_transition_bytes(page_cache_bytes: int) -> Tuple[int, int]:
    """The file-size range where the cliff is expected for a given cache size.

    The cliff happens where the file stops fitting in the available page
    cache; environmental noise of a few MiB widens it.  Used by tests and by
    the zoom experiment to position their fine sweeps.
    """
    if page_cache_bytes <= 0:
        raise ValueError("page_cache_bytes must be positive")
    slack = 16 * 1024 * 1024
    return (page_cache_bytes - slack, page_cache_bytes + slack)
