"""A single schema for the repository's benchmark-timing trajectory.

CI has committed one ``BENCH_PR*.json`` per performance-relevant PR, each in
pytest-benchmark's raw output format -- write-only artifacts until now.
This module gives them one read path: :func:`load_bench_json` accepts both
the raw pytest-benchmark layout and the normalized layout this repo emits
going forward (``benchmarks/conftest.py`` embeds the normalized mapping into
the same file via the ``pytest_benchmark_update_json`` hook), and returns a
common ``{benchmark name -> BenchStats}`` shape that
:mod:`repro.obs.benchdiff` and tests consume.

The normalized layout is deliberately tiny and stable::

    {"schema": "fsbench-bench/1",
     "benchmarks": {"<name>": {"mean": ..., "min": ..., "max": ...,
                               "stddev": ..., "median": ..., "rounds": ...}}}

so a baseline survives pytest-benchmark version churn: only the six summary
statistics the regression gate needs are part of the contract.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Any, Dict, Union

__all__ = ["SCHEMA", "BenchStats", "load_bench_json", "normalize", "dump_bench_json"]

#: Version tag of the normalized layout.
SCHEMA = "fsbench-bench/1"


@dataclass(frozen=True)
class BenchStats:
    """Summary timing statistics of one benchmark, in seconds."""

    mean: float
    min: float
    max: float
    stddev: float
    median: float
    rounds: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _bench_name(record: Dict[str, Any]) -> str:
    """The stable identity of one raw pytest-benchmark record.

    ``name`` (test function plus parametrization) rather than ``fullname``:
    the identity must survive a file move, and the repository's benchmark
    modules already keep function names unique.
    """
    return str(record.get("name") or record.get("fullname"))


def normalize(document: Dict[str, Any]) -> Dict[str, BenchStats]:
    """Reduce either layout to the common ``{name -> BenchStats}`` shape."""
    benchmarks = document.get("benchmarks", {})
    out: Dict[str, BenchStats] = {}
    if isinstance(benchmarks, dict):
        # Already normalized (possibly embedded under the raw layout).
        for name, stats in benchmarks.items():
            out[str(name)] = BenchStats(
                mean=float(stats["mean"]),
                min=float(stats["min"]),
                max=float(stats["max"]),
                stddev=float(stats["stddev"]),
                median=float(stats["median"]),
                rounds=int(stats["rounds"]),
            )
        return out
    for record in benchmarks:
        stats = record["stats"]
        out[_bench_name(record)] = BenchStats(
            mean=float(stats["mean"]),
            min=float(stats["min"]),
            max=float(stats["max"]),
            stddev=float(stats["stddev"]),
            median=float(stats["median"]),
            rounds=int(stats["rounds"]),
        )
    return out


def load_bench_json(path: str) -> Dict[str, BenchStats]:
    """Load a ``BENCH_*.json`` file, raw or normalized, into the common shape.

    A raw file that embeds a ``normalized`` section (everything this repo's
    benchmark harness writes going forward) is read through that section, so
    the contract layout wins whenever it is present.
    """
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a benchmark JSON document")
    if isinstance(document.get("normalized"), dict):
        return normalize(document["normalized"])
    if "benchmarks" not in document:
        raise ValueError(f"{path}: no 'benchmarks' section")
    return normalize(document)


def dump_bench_json(stats: Dict[str, BenchStats], handle: Union[IO[str], str]) -> None:
    """Write the normalized layout (round-trips through :func:`normalize`)."""
    document = {
        "schema": SCHEMA,
        "benchmarks": {name: s.to_dict() for name, s in sorted(stats.items())},
    }
    if isinstance(handle, str):
        with open(handle, "w") as out:
            json.dump(document, out, indent=2, sort_keys=True)
            out.write("\n")
    else:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
