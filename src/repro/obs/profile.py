"""Wall-clock phase profiling of the real execution pipeline.

:mod:`repro.obs.trace` answers "where did the *virtual* seconds go?" inside
one measured window.  This module answers the complementary question the
ROADMAP's raw-speed item needs: where do a campaign's *real* seconds go --
stack construction, snapshot restore, workload setup, warm-up, the measured
window itself, result serialization?

The design mirrors the tracer's non-perturbation argument, transposed to
wall time:

* The simulation never reads the profiler.  Phases bracket host-side work
  (:func:`repro.core.runner.run_single_repetition` and the result cache's
  serialization path call :func:`phase` at fixed points), and the profiler
  only ever *observes* ``time.perf_counter`` -- virtual time, cache keys and
  run payloads are untouched, which ``tests/test_telemetry.py`` pins against
  the golden hashes.
* When no profiler is installed, :func:`phase` returns a shared no-op
  context manager: the disabled path allocates nothing and reads no clock,
  so profiling-off runs are structurally identical to every release before
  this module existed.

This module (together with :mod:`repro.obs.telemetry`) is deliberately the
only place in ``src/repro`` allowed to read the host clock; the DET001
lint exemption lives in ``lint.toml`` with this rationale.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PHASES",
    "PhaseProfiler",
    "disable",
    "enable",
    "active",
    "phase",
    "hotspot_report",
]

#: The bracket points of one repetition, in pipeline order.  The list is
#: documentation, not an enum: :func:`phase` accepts any name, so callers
#: can bracket new host-side work without touching this module.
PHASES = (
    "stack-build",      # build_stack: device + cache + fs + VFS construction
    "snapshot-restore", # aged-state restoration (nested inside stack-build)
    "setup",            # workload fileset creation, cache drop
    "warmup",           # cache conditioning before the measured window
    "measured-run",     # the measured window itself
    "serialize",        # result serialization into the cache
)


class _NullPhase:
    """The disabled-profiler context manager: one shared, stateless object."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """One live bracket: measures its own wall time minus nested phases'."""

    __slots__ = ("profiler", "name", "start_s", "child_s")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self.child_s = 0.0

    def __enter__(self) -> "_Phase":
        self.profiler._stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self.start_s
        stack = self.profiler._stack
        stack.pop()
        self.profiler._add(self.name, elapsed - self.child_s)
        if stack:
            stack[-1].child_s += elapsed
        return False


class PhaseProfiler:
    """Accumulates per-phase *self* wall time (nested brackets subtract).

    A profiler is cheap enough to create per work unit: the parallel
    executor's timed path installs a fresh one around each execution (in the
    worker process, when pooled) and ships ``totals()`` home alongside the
    result, so per-cell hotspots aggregate in the parent without any shared
    state.
    """

    def __init__(self) -> None:
        self._self_s: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._stack: List[_Phase] = []

    def phase(self, name: str) -> _Phase:
        """A context manager bracketing one phase occurrence."""
        return _Phase(self, name)

    def _add(self, name: str, self_s: float) -> None:
        self._self_s[name] = self._self_s.get(name, 0.0) + self_s
        self._calls[name] = self._calls.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        """Per-phase self time in seconds, insertion (first-bracket) order."""
        return dict(self._self_s)

    def calls(self) -> Dict[str, int]:
        """Per-phase bracket counts."""
        return dict(self._calls)

    def merge(self, phases: Dict[str, float], calls: Optional[Dict[str, int]] = None) -> None:
        """Fold another profiler's totals (e.g. from a pool worker) into this one."""
        for name, seconds in phases.items():
            self._self_s[name] = self._self_s.get(name, 0.0) + seconds
            self._calls[name] = self._calls.get(name, 0) + (
                calls.get(name, 1) if calls else 1
            )


#: The installed profiler; ``None`` keeps :func:`phase` a strict no-op.
_ACTIVE: Optional[PhaseProfiler] = None


def enable(profiler: Optional[PhaseProfiler] = None) -> PhaseProfiler:
    """Install ``profiler`` (or a fresh one) as the process-wide profiler."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else PhaseProfiler()
    return _ACTIVE


def disable() -> None:
    """Uninstall the profiler; :func:`phase` reverts to the no-op path."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[PhaseProfiler]:
    """The installed profiler, or ``None``."""
    return _ACTIVE


def phase(name: str):
    """Bracket one phase of host-side work.

    With no profiler installed this returns a shared no-op context manager
    and reads no clock -- the bracket costs one attribute load and one
    ``is None`` test, which is what lets the brackets live permanently in
    the runner's hot path.
    """
    if _ACTIVE is None:
        return _NULL_PHASE
    return _ACTIVE.phase(name)


# ------------------------------------------------------------------ reporting
def top_phases(phases: Dict[str, float], top: int = 3) -> List[Tuple[str, float]]:
    """The ``top`` phases by self time, heaviest first."""
    return sorted(phases.items(), key=lambda item: (-item[1], item[0]))[:top]


def hotspot_report(
    phases: Dict[str, float],
    calls: Optional[Dict[str, int]] = None,
    title: str = "wall-clock hotspots",
    top: Optional[int] = None,
) -> str:
    """Render per-phase self time as a fixed-width hotspot table.

    ``top`` limits the table to the heaviest phases; the share column is
    always relative to the *full* total so a truncated table cannot inflate
    the shown phases' importance.
    """
    total = sum(phases.values())
    rows = top_phases(phases, top if top is not None else len(phases))
    lines = [title, f"{'phase':<18} {'calls':>6} {'self_s':>9} {'share':>7}"]
    for name, seconds in rows:
        count = calls.get(name, 0) if calls else 0
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{name:<18} {count:>6} {seconds:>9.3f} {share:>6.1%}")
    lines.append(f"{'total':<18} {'':>6} {total:>9.3f} {'100.0%':>7}")
    return "\n".join(lines)
