"""Virtual-time tracing and full-stack latency attribution.

The paper's central complaint is that benchmark numbers arrive without the
evidence needed to explain them.  This module supplies that evidence for the
simulated stack: a :class:`Tracer` that records structured events against the
*virtual* clock while a run executes, and an :class:`Attribution` accumulator
that folds those events into a per-layer, per-op-type breakdown of where the
simulated time went.

Design constraints, in order of importance:

1. **Non-perturbing.**  The clock is virtual, so tracing cannot perturb a
   measurement *by construction* -- as long as the hooks never draw from a
   shared RNG, never reorder float arithmetic, and only observe values the
   simulation already computed.  Every hook in the stack follows the pattern
   ``value = <unchanged expression>; tracer.record(value)``: the traced and
   untraced runs execute bit-identical latency math.  Golden-hash tests pin
   this (``tests/test_obs.py``).
2. **Zero-cost when disabled.**  Disabled tracing is a single
   ``tracer is None`` check at each hook site; no event objects, no dict
   lookups, no component captures.
3. **Bounded memory.**  Events land in a ring buffer (``deque(maxlen=...)``);
   a long run overwrites its oldest events but keeps exact counters
   (``total_events``, ``dropped``) and the *complete* attribution, which is
   accumulated incrementally rather than derived from the ring.

Span model
----------
The workload engine opens an *op span* around each flowop it executes
(:meth:`Tracer.begin_op` / :meth:`Tracer.end_op`).  Inside the span, every
charged latency component -- CPU jitter, device queue wait, per-request
service time, journal flushes, FTL garbage-collection pauses -- is recorded
with :meth:`Tracer.record` and attributed to the span's op type and the
current client.  Because the virtual clock only advances when the op
*completes*, events are timestamped with a running cursor that starts at the
span's issue time and tiles the components end to end; the exported timeline
therefore reads like a classic trace even though "now" was frozen while the
op executed.  Charges that occur outside any span (background activity) land
in a separate ``(background)`` bucket; fire-and-forget work (readahead,
asynchronous writeback) is ring-only -- visible on the timeline, never
attributed, because nobody waited for it.

Categories
----------
Attribution uses a fixed seven-slot taxonomy (:data:`CATEGORIES`):

``cpu``
    Charges from ``VFS._cpu_ns`` (per-op CPU cost with jitter).
``cache``
    Device queue-wait stalls: time an op spent blocked behind a device made
    busy by readahead, writeback, or other clients.
``journal``
    Device time of journal-region / checkpoint writes and, on journalled
    file systems, flush barriers.
``writeback``
    Synchronous page-cache writeback: dirty-ratio throttling, dirty
    evictions, fsync/sync data writes, and any other non-journal write.
``seek``
    The positioning component (overhead + seek + rotation) of mechanical
    disk reads.
``transfer``
    The media-transfer component of reads; whole service time for
    non-mechanical models; discards.
``gc-pause``
    The FTL garbage-collection component of flash writes.

Per op type, the recorded components sum to the op's measured latency
exactly (up to float accumulation order), which the invariant tests assert.
"""

from __future__ import annotations

import collections
import json
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CATEGORIES",
    "BACKGROUND",
    "TraceEvent",
    "Attribution",
    "Tracer",
    "write_jsonl",
    "chrome_trace",
]

#: The fixed attribution taxonomy, in display order.
CATEGORIES: Tuple[str, ...] = (
    "cpu",
    "cache",
    "journal",
    "writeback",
    "seek",
    "transfer",
    "gc-pause",
)

#: Bucket for synchronous charges recorded outside any op span.
BACKGROUND = "(background)"

#: One traced occurrence.  ``ts_ns``/``dur_ns`` are virtual nanoseconds;
#: ``op`` is the enclosing span's op type (``None`` outside spans); ``client``
#: is the session index the charge belongs to.  A plain namedtuple keeps the
#: ring cheap and pickle-friendly.
TraceEvent = collections.namedtuple(
    "TraceEvent", ("ts_ns", "dur_ns", "name", "cat", "op", "client")
)


class Attribution:
    """Incremental per-op-type and per-client latency breakdown.

    Kept separate from the event ring so a bounded ring never loses
    attribution: every :meth:`add` updates the totals immediately.
    """

    __slots__ = ("ops", "clients", "background")

    def __init__(self) -> None:
        #: op type -> category -> accumulated virtual ns.
        self.ops: Dict[str, Dict[str, float]] = {}
        #: client index -> category -> accumulated virtual ns.
        self.clients: Dict[int, Dict[str, float]] = {}
        #: category -> virtual ns charged outside any op span.
        self.background: Dict[str, float] = {}

    def add(self, op: Optional[str], client: int, category: str, duration_ns: float) -> None:
        if op is None:
            self.background[category] = self.background.get(category, 0.0) + duration_ns
            return
        per_op = self.ops.setdefault(op, {})
        per_op[category] = per_op.get(category, 0.0) + duration_ns
        per_client = self.clients.setdefault(client, {})
        per_client[category] = per_client.get(category, 0.0) + duration_ns

    def totals(self) -> Dict[str, float]:
        """Category totals across all op types (excluding background)."""
        out: Dict[str, float] = {}
        for per_op in self.ops.values():
            for category, duration_ns in per_op.items():
                out[category] = out.get(category, 0.0) + duration_ns
        return out

    def op_total(self, op: str) -> float:
        return sum(self.ops.get(op, {}).values())

    def client_total(self, client: int) -> float:
        return sum(self.clients.get(client, {}).values())

    def to_dict(self) -> Dict[str, object]:
        """A plain-dict form for ``RunResult.attribution``.

        Deliberately *not* part of the serialized result payload (see
        ``repro.core.persistence``): attribution is derived evidence,
        reproducible on demand, and keeping it out of the payload keeps
        cached entries byte-identical with tracing on or off.
        """
        return {
            "categories": list(CATEGORIES),
            "ops": {op: dict(cats) for op, cats in sorted(self.ops.items())},
            "clients": {str(idx): dict(cats) for idx, cats in sorted(self.clients.items())},
            "background": dict(self.background),
            "totals": self.totals(),
        }


class Tracer:
    """Span-stack tracer recording against the virtual clock.

    One tracer instance observes one measured window of one run.  The stack
    attaches it via :meth:`repro.fs.stack.StorageStack.attach_tracer`, which
    also configures :attr:`has_journal` and :attr:`journal_region` so device
    requests can be classified without the journal participating.
    """

    def __init__(self, clock, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        self.capacity = int(capacity)
        self.events: "collections.deque[TraceEvent]" = collections.deque(maxlen=self.capacity)
        #: Count of all events ever appended (ring overwrites don't forget).
        self.total_events = 0
        self.attribution = Attribution()
        #: Session index charges are attributed to; the multi-client event
        #: loop updates this before each dispatched op.
        self.current_client = 0
        #: ``(start_byte, end_byte)`` of the journal's on-disk region, or None.
        self.journal_region: Optional[Tuple[float, float]] = None
        #: Whether the traced file system journals (drives flush/barrier
        #: classification).
        self.has_journal = False
        self._op: Optional[str] = None
        self._op_start_ns = 0.0
        self._cursor_ns = 0.0
        self._contexts: List[Tuple[str, bool]] = []
        self._async_depth = 0

    # ------------------------------------------------------------ ring state
    @property
    def dropped(self) -> int:
        """Events overwritten by the bounded ring."""
        return max(0, self.total_events - len(self.events))

    def events_list(self) -> List[TraceEvent]:
        return list(self.events)

    def _append(self, ts_ns: float, dur_ns: float, name: str, cat: str) -> None:
        self.events.append(TraceEvent(ts_ns, dur_ns, name, cat, self._op, self.current_client))
        self.total_events += 1

    # -------------------------------------------------------------- op spans
    def begin_op(self, name: str) -> None:
        """Open the span for one workload operation.

        The event cursor starts at the op's issue time; recorded components
        tile forward from there (the clock itself only advances at op end).
        """
        self._op = name
        self._op_start_ns = self._cursor_ns = self.clock.now_ns

    def end_op(self, latency_ns: float) -> None:
        """Close the current span, emitting the op-level event."""
        if self._op is None:
            return
        self._append(self._op_start_ns, latency_ns, self._op, "op")
        self._op = None

    # --------------------------------------------------------- dispatch state
    def push_context(self, name: str, async_: bool = False) -> None:
        """Enter a dispatch context (e.g. ``writeback``, async readahead).

        Async contexts mark fire-and-forget work: recorded events stay on the
        timeline but are excluded from attribution because no op waited for
        them.
        """
        self._contexts.append((name, async_))
        if async_:
            self._async_depth += 1

    def pop_context(self) -> None:
        name, async_ = self._contexts.pop()
        if async_:
            self._async_depth -= 1

    def in_context(self, name: str) -> bool:
        return any(entry[0] == name for entry in self._contexts)

    # ---------------------------------------------------------------- records
    def record(self, category: str, duration_ns: float, name: Optional[str] = None) -> None:
        """Record one already-computed latency component.

        The caller must pass a value the simulation computed anyway -- this
        method never touches RNG state or the clock, so it cannot perturb
        virtual time.
        """
        if duration_ns <= 0.0:
            return
        if self._async_depth:
            # Fire-and-forget: timeline-only, never attributed.
            self._append(self.clock.now_ns, duration_ns, name or category, category)
            return
        if self._op is not None:
            ts_ns = self._cursor_ns
            self._cursor_ns += duration_ns
        else:
            ts_ns = self.clock.now_ns
        self._append(ts_ns, duration_ns, name or category, category)
        self.attribution.add(self._op, self.current_client, category, duration_ns)

    def marker(self, name: str) -> None:
        """A zero-duration annotation (journal commit/checkpoint, ...)."""
        self._append(self.clock.now_ns, 0.0, name, "marker")

    def cpu(self, duration_ns: float) -> None:
        self.record("cpu", duration_ns, name="cpu")

    def queue_wait(self, duration_ns: float) -> None:
        self.record("cache", duration_ns, name="queue-wait")

    def flush(self, duration_ns: float) -> None:
        """A device flush/barrier: journal cost on journalled file systems,
        plain writeback otherwise."""
        self.record("journal" if self.has_journal else "writeback", duration_ns, name="flush")

    def device_request(self, request, service_ns: float, components=None) -> None:
        """Classify and record one block-device request's service time.

        ``components`` is the device model's exact decomposition of
        ``service_ns`` (``last_components``), populated only while tracing so
        the untraced hot path pays nothing.  Classification precedence:
        journal writes (by region, checkpoint priority, or context) beat the
        writeback/seek/transfer split; the FTL's garbage-collection component
        is always carved out into ``gc-pause``.
        """
        gc_ns = 0.0
        base_ns = service_ns
        if components:
            gc_ns = components.get("gc-pause", 0.0)
            if gc_ns:
                base_ns = components.get("transfer", service_ns - gc_ns)
        name = "discard" if request.is_discard else ("write" if request.is_write else "read")
        if self.has_journal and not request.is_discard and request.is_write and (
            request.priority == 1
            or self.in_context("journal")
            or self._in_journal_region(request)
        ):
            category = "journal"
        elif request.is_discard:
            category = "transfer"
        elif request.is_write:
            category = "writeback"
        else:
            if components and "seek" in components:
                self.record("seek", components["seek"], name="read-position")
                base_ns = components.get("transfer", 0.0)
            category = "transfer"
        self.record(category, base_ns, name=name)
        if gc_ns:
            self.record("gc-pause", gc_ns, name="ftl-gc")

    def _in_journal_region(self, request) -> bool:
        region = self.journal_region
        if region is None:
            return False
        start, end = region
        return start <= request.offset_bytes < end


# ------------------------------------------------------------------ exports
def write_jsonl(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    """Write events as JSON Lines (one event object per line)."""
    count = 0
    for event in events:
        stream.write(
            json.dumps(
                {
                    "ts_ns": event.ts_ns,
                    "dur_ns": event.dur_ns,
                    "name": event.name,
                    "cat": event.cat,
                    "op": event.op,
                    "client": event.client,
                },
                sort_keys=True,
            )
        )
        stream.write("\n")
        count += 1
    return count


def chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Events in Chrome trace-event format (load via ``chrome://tracing`` or
    Perfetto).  Virtual nanoseconds map to trace microseconds; clients map to
    thread lanes."""
    trace_events = []
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "cat": event.cat if event.op is None else f"{event.cat},{event.op}",
                "ph": "X",
                "ts": event.ts_ns / 1000.0,
                "dur": event.dur_ns / 1000.0,
                "pid": 1,
                "tid": event.client,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "fsbench-rocket trace"},
    }
