"""The benchmark-regression gate: machine-checked perf trajectories.

The paper's discipline -- a measurement process must itself be
characterized -- applied to this repository's own harness: the committed
``BENCH_PR*.json`` baselines become a checked trajectory instead of
write-only artifacts.  :func:`diff_benchmarks` compares two bench files
benchmark by benchmark; ``fsbench-rocket bench-diff OLD NEW`` renders the
deltas and exits non-zero when any shared benchmark regressed beyond the
threshold, which is what lets CI gate on it.

Classification is deliberately conservative: only benchmarks present in
*both* files can regress (the committed baselines cover disjoint benchmark
sets across PRs, so added/removed entries are reported but never fail the
gate), and the default threshold is generous because the baselines were
recorded on different machines -- the gate catches order-of-magnitude
mistakes, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.obs.benchjson import BenchStats, load_bench_json

__all__ = ["DEFAULT_THRESHOLD", "BenchDelta", "BenchDiff", "diff_benchmarks", "diff_files"]

#: Default regression threshold: NEW mean > (1 + threshold) * OLD mean fails.
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class BenchDelta:
    """One shared benchmark's old-vs-new comparison."""

    name: str
    old_mean: float
    new_mean: float
    threshold: float

    @property
    def ratio(self) -> float:
        """``new / old`` mean (``inf`` when the old mean was zero)."""
        if self.old_mean == 0:
            return float("inf") if self.new_mean > 0 else 1.0
        return self.new_mean / self.old_mean

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"


@dataclass
class BenchDiff:
    """The full comparison: shared deltas plus membership changes."""

    deltas: List[BenchDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[BenchDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def exit_code(self) -> int:
        """``1`` when any shared benchmark regressed beyond the threshold."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [
            f"benchmark diff (threshold {self.threshold:.0%}: mean must stay "
            f"within {1.0 + self.threshold:.2f}x of the baseline)"
        ]
        if self.deltas:
            lines.append(
                f"  {'benchmark':<44} {'old_s':>9} {'new_s':>9} {'ratio':>7}  verdict"
            )
            for delta in self.deltas:
                lines.append(
                    f"  {delta.name:<44} {delta.old_mean:>9.4f} {delta.new_mean:>9.4f} "
                    f"{delta.ratio:>6.2f}x  {delta.verdict}"
                )
        else:
            lines.append("  no benchmarks in common")
        for name in self.added:
            lines.append(f"  + {name} (new benchmark, not gated)")
        for name in self.removed:
            lines.append(f"  - {name} (no longer measured)")
        count = len(self.regressions)
        lines.append(
            f"{count} regression(s) beyond threshold"
            if count
            else "no regressions beyond threshold"
        )
        return "\n".join(lines)


def diff_benchmarks(
    old: dict, new: dict, threshold: float = DEFAULT_THRESHOLD
) -> BenchDiff:
    """Compare two ``{name -> BenchStats}`` mappings (see
    :func:`repro.obs.benchjson.load_bench_json`)."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    result = BenchDiff(threshold=threshold)
    for name in sorted(set(old) & set(new)):
        old_stats: BenchStats = old[name]
        new_stats: BenchStats = new[name]
        result.deltas.append(
            BenchDelta(
                name=name,
                old_mean=old_stats.mean,
                new_mean=new_stats.mean,
                threshold=threshold,
            )
        )
    result.added = sorted(set(new) - set(old))
    result.removed = sorted(set(old) - set(new))
    return result


def diff_files(
    old_path: str, new_path: str, threshold: float = DEFAULT_THRESHOLD
) -> BenchDiff:
    """Compare two bench-JSON files (raw or normalized layouts)."""
    return diff_benchmarks(
        load_bench_json(old_path), load_bench_json(new_path), threshold=threshold
    )
