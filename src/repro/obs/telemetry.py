"""Campaign telemetry: the executor's wall-clock event log and live progress.

The virtual-time tracer (:mod:`repro.obs.trace`) explains one measured
window from the inside; this module watches the *campaign* from the outside.
:class:`repro.core.parallel.ParallelExecutor` emits one lifecycle event per
:class:`~repro.core.parallel.WorkUnit` -- ``queued``, ``cache-hit``,
``pack-hit``, ``exec-start``, ``exec-done``, ``failed`` -- into a bounded
:class:`TelemetrySink` that mirrors the stream to a JSONL file, and
``fsbench-rocket report`` renders campaign health (stage breakdown, cache
efficiency, slowest cells, worker utilization) from that file after the
fact.

Non-perturbation is the same argument as the tracer's, transposed to wall
time: nothing in the simulation ever reads the sink or the clockings.  The
executor observes wall time around ``execute_unit`` (via
:func:`timed_execute`) and the runner's phase brackets observe it inside
(:mod:`repro.obs.profile`); virtual-time metrics, cache keys and serialized
run payloads are byte-identical with telemetry on or off, which
``tests/test_telemetry.py`` pins against the golden hashes.  Telemetry
fields live in :class:`TelemetryEvent`, a type
:func:`repro.core.persistence.canonical_run_payload` never serializes, so
they *cannot* leak into result payloads or cache keys.

This module (together with :mod:`repro.obs.profile`) is deliberately the
only place in ``src/repro`` allowed to read the host clock; the DET001
lint exemption lives in ``lint.toml`` with this rationale.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "EVENT_KINDS",
    "TelemetryEvent",
    "TelemetrySink",
    "UnitTiming",
    "timed_execute",
    "ProgressReporter",
    "load_events",
    "render_report",
]

#: Lifecycle of one work unit, in emission order.  Every unit gets exactly
#: one ``queued`` and exactly one terminal event (``cache-hit``,
#: ``pack-hit``, ``exec-done`` or ``failed``); fresh executions additionally
#: get an ``exec-start`` carrying the worker's true start timestamp.
EVENT_KINDS = ("queued", "cache-hit", "pack-hit", "exec-start", "exec-done", "failed")

#: Default event-ring capacity of a sink.  Mirrors the tracer's bounded-ring
#: discipline: the in-memory view is capped, the JSONL mirror is complete.
RING_CAPACITY = 4096


@dataclass
class TelemetryEvent:
    """One executor lifecycle event.

    ``t_s`` is wall-clock seconds since the sink was opened; ``wall_s`` is
    the unit's execution duration (terminal events of fresh executions
    only); ``worker`` is the executing process id; ``phases`` carries the
    per-phase self-time seconds measured by the worker's
    :class:`~repro.obs.profile.PhaseProfiler`.
    """

    kind: str
    group: str = ""
    fs: str = ""
    workload: str = ""
    repetition: int = 0
    seed: int = 0
    key: str = ""
    t_s: float = 0.0
    wall_s: float = 0.0
    worker: int = 0
    error: str = ""
    phases: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; empty optional fields are omitted to keep the
        JSONL mirror lean (``load_events`` restores them via defaults)."""
        out = asdict(self)
        for name in ("key", "error"):
            if not out[name]:
                del out[name]
        if not out["phases"]:
            del out["phases"]
        if out["wall_s"] == 0.0:
            del out["wall_s"]
        if out["worker"] == 0:
            del out["worker"]
        return out


class TelemetrySink:
    """Bounded in-memory event ring with an optional complete JSONL mirror.

    The ring keeps the last ``capacity`` events for in-process consumers
    (live progress, tests); every event is additionally appended to ``path``
    when given, so post-hoc reporting never depends on the ring bound.
    ``counts`` tallies every event kind ever emitted, ring or not.
    """

    def __init__(self, path: Optional[str] = None, capacity: int = RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("telemetry ring capacity must be positive")
        self.path = path
        self.capacity = capacity
        self.events: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {}
        self.total_events = 0
        #: Cumulative wall seconds of fresh executions (``exec-done`` events).
        self.exec_wall_s = 0.0
        self._epoch0 = time.time()
        self._handle: Optional[IO[str]] = None
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "w")

    def now_s(self) -> float:
        """Wall-clock seconds since the sink was opened."""
        return time.time() - self._epoch0

    def to_sink_time(self, epoch_s: float) -> float:
        """Convert an absolute ``time.time()`` stamp (e.g. from a pool
        worker) into sink-relative seconds."""
        return epoch_s - self._epoch0

    def emit(self, event: TelemetryEvent, t_s: Optional[float] = None) -> None:
        """Record one event, stamping ``t_s`` (sink-relative) unless the
        caller supplies a worker-measured stamp."""
        event.t_s = self.now_s() if t_s is None else t_s
        self.events.append(event)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        self.total_events += 1
        if event.kind == "exec-done":
            self.exec_wall_s += event.wall_s
        if self._handle is not None:
            self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
            self._handle.write("\n")
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -------------------------------------------------------- timed execution
@dataclass
class UnitTiming:
    """Wall-clock facts of one fresh execution, measured where it ran.

    ``started_epoch_s``/``ended_epoch_s`` are absolute ``time.time()``
    stamps (comparable across processes); ``wall_s`` is the precise
    ``perf_counter`` duration; ``phases``/``calls`` are the phase
    profiler's self-time totals and bracket counts.
    """

    started_epoch_s: float
    ended_epoch_s: float
    wall_s: float
    pid: int
    phases: Dict[str, float] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)


def timed_execute(unit: Any) -> Tuple[Any, UnitTiming]:
    """Run one work unit under a fresh phase profiler; return (run, timing).

    Pure and picklable, like :func:`repro.core.parallel.execute_unit` which
    it wraps: this is the function the executor ships to pool workers when a
    telemetry sink is attached.  The profiler is installed for exactly the
    duration of the unit (and the previous profiler, if any, restored), so
    profiling composes with callers that keep their own.
    """
    from repro.core.parallel import execute_unit
    from repro.obs import profile

    previous = profile.active()
    profiler = profile.enable()
    started_epoch_s = time.time()
    start = time.perf_counter()
    try:
        run = execute_unit(unit)
    finally:
        if previous is not None:
            profile.enable(previous)
        else:
            profile.disable()
    wall_s = time.perf_counter() - start
    timing = UnitTiming(
        started_epoch_s=started_epoch_s,
        ended_epoch_s=started_epoch_s + wall_s,
        wall_s=wall_s,
        pid=os.getpid(),
        phases=profiler.totals(),
        calls=profiler.calls(),
    )
    return run, timing


# ------------------------------------------------------------ live progress
class ProgressReporter:
    """Streaming campaign progress: cells done, hit rate, utilization, ETA.

    Composes with the Experiment streaming callbacks: wire ``unit_done``
    into ``on_unit`` and ``cell_done`` into ``on_cell`` (the CLI does both).
    Lines go through ``emit`` -- by default straight to stderr, the CLI
    passes its logger -- so stdout stays machine-consumable.
    """

    def __init__(
        self,
        total_units: int,
        total_cells: int,
        n_workers: int = 1,
        sink: Optional[TelemetrySink] = None,
        emit: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.total_units = total_units
        self.total_cells = total_cells
        self.n_workers = max(1, n_workers)
        self.sink = sink
        self._emit = emit if emit is not None else self._stderr
        self._start = time.perf_counter()
        self.units_done = 0
        self.cache_hits = 0
        self.cells_done = 0
        self.fresh_done = 0
        self.busy_s = 0.0

    @staticmethod
    def _stderr(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def unit_done(self, unit: Any, run: Any, cached: bool) -> None:
        """Per-repetition hook (the ``on_unit`` shape)."""
        self.units_done += 1
        if cached:
            self.cache_hits += 1

    def record_wall(self, wall_s: float) -> None:
        """Account one fresh execution's wall time (only needed when no sink
        is attached -- with one, ``status`` reads the sink's aggregates)."""
        self.fresh_done += 1
        self.busy_s += wall_s

    def _busy(self) -> "Tuple[int, float]":
        """(fresh executions, cumulative wall seconds), sink-first."""
        if self.sink is not None:
            return self.sink.counts.get("exec-done", 0), self.sink.exec_wall_s
        return self.fresh_done, self.busy_s

    def status(self) -> str:
        """The tail of a progress line: units, hit rate, utilization, ETA."""
        parts = [f"units {self.units_done}/{self.total_units}"]
        if self.units_done:
            rate = self.cache_hits / self.units_done
            parts.append(f"hits {self.cache_hits} ({rate:.0%})")
        elapsed = time.perf_counter() - self._start
        fresh_done, busy_s = self._busy()
        if fresh_done and elapsed > 0:
            utilization = busy_s / (elapsed * self.n_workers)
            parts.append(f"util {min(utilization, 1.0):.0%}")
            remaining = self.total_units - self.units_done
            eta_s = remaining * (busy_s / fresh_done) / self.n_workers
            parts.append(f"eta ~{eta_s:.0f}s")
        return ", ".join(parts)

    def cell_done(self, cell: Any, repetitions: Any) -> None:
        """Per-cell hook (the ``on_cell`` shape): emit one progress line."""
        self.cells_done += 1
        label = getattr(cell, "label", str(cell))
        try:
            summary = repetitions.throughput_summary()
            result = (
                f"{summary.mean:.0f} ops/s +/-{summary.relative_stddev_percent:.0f}% "
                f"({len(repetitions)} reps)"
            )
        except (AttributeError, ValueError):
            result = f"{len(repetitions)} reps"
        self._emit(
            f"[{self.cells_done}/{self.total_cells}] {label}: {result} | {self.status()}"
        )


# ---------------------------------------------------------------- reporting
def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file back into event dictionaries."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def events_to_dicts(sink: TelemetrySink) -> List[Dict[str, Any]]:
    """The sink's in-memory ring as report-ready dictionaries."""
    return [event.to_dict() for event in sink.events]


def render_report(events: List[Dict[str, Any]], top: int = 5) -> str:
    """Render campaign health from an event stream.

    Sections: the campaign summary (units by outcome, wall span), cache
    efficiency, the wall-clock stage breakdown aggregated from the phase
    profiler's per-unit totals, the slowest cells, and per-worker
    utilization.  Works on :func:`load_events` output or on
    :func:`events_to_dicts` of a live sink.
    """
    from repro.obs.profile import hotspot_report

    kinds: Dict[str, int] = {}
    for event in events:
        kinds[event.get("kind", "?")] = kinds.get(event.get("kind", "?"), 0) + 1
    queued = kinds.get("queued", 0)
    loose_hits = kinds.get("cache-hit", 0)
    pack_hits = kinds.get("pack-hit", 0)
    done = kinds.get("exec-done", 0)
    failed = kinds.get("failed", 0)
    hits = loose_hits + pack_hits

    terminal = [e for e in events if e.get("kind") in ("exec-done", "failed")]
    span_s = 0.0
    if events:
        stamps = [e.get("t_s", 0.0) for e in events]
        span_s = max(stamps) - min(stamps)

    lines = [
        "campaign telemetry report",
        f"  units: {queued} queued, {done} executed, {hits} cache hits, {failed} failed",
        f"  wall span: {span_s:.1f}s across {len({e.get('worker', 0) for e in terminal})} worker(s)",
    ]

    settled = hits + done + failed
    if settled:
        lines.append(
            f"  cache efficiency: {hits}/{settled} ({hits / settled:.0%}) -- "
            f"{loose_hits} loose, {pack_hits} pack"
        )

    phases: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    for event in events:
        for name, seconds in event.get("phases", {}).items():
            phases[name] = phases.get(name, 0.0) + seconds
            calls[name] = calls.get(name, 0) + 1
    if phases:
        lines.append("")
        lines.append(hotspot_report(phases, calls, title="stage breakdown (wall-clock self time)"))

    cell_wall: Dict[str, float] = {}
    cell_units: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "exec-done":
            group = event.get("group", "?")
            cell_wall[group] = cell_wall.get(group, 0.0) + event.get("wall_s", 0.0)
            cell_units[group] = cell_units.get(group, 0) + 1
    if cell_wall:
        total_wall = sum(cell_wall.values())
        lines.append("")
        lines.append(f"slowest cells (top {min(top, len(cell_wall))} of {len(cell_wall)})")
        lines.append(f"  {'cell':<40} {'units':>5} {'wall_s':>8} {'share':>7}")
        ranked = sorted(cell_wall.items(), key=lambda item: (-item[1], item[0]))[:top]
        for group, wall in ranked:
            share = wall / total_wall if total_wall > 0 else 0.0
            lines.append(f"  {group:<40} {cell_units[group]:>5} {wall:>8.2f} {share:>6.1%}")

    worker_busy: Dict[int, float] = {}
    for event in events:
        if event.get("kind") == "exec-done":
            worker = event.get("worker", 0)
            worker_busy[worker] = worker_busy.get(worker, 0.0) + event.get("wall_s", 0.0)
    if worker_busy and span_s > 0:
        lines.append("")
        lines.append("worker utilization")
        for worker in sorted(worker_busy):
            busy = worker_busy[worker]
            lines.append(
                f"  worker {worker}: busy {busy:.2f}s of {span_s:.1f}s "
                f"({min(busy / span_s, 1.0):.0%})"
            )

    if failed:
        lines.append("")
        lines.append("failures")
        for event in events:
            if event.get("kind") == "failed":
                lines.append(
                    f"  {event.get('group', '?')} rep {event.get('repetition', 0)}: "
                    f"{event.get('error', 'unknown error')}"
                )
    return "\n".join(lines)
