"""repro.obs -- virtual-time tracing, latency attribution, unified metrics.

The observability layer the paper's methodology demands: every measurement
can carry the evidence explaining *where* its time went.  See
``docs/architecture.md`` section 8 for the span model and the argument for
why tracing cannot perturb virtual time.
"""

from repro.obs.explain import (
    payloads_match,
    render_attribution,
    render_client_attribution,
    run_unit_traced,
)
from repro.obs.metrics import MetricSource, MetricsRegistry
from repro.obs.trace import (
    BACKGROUND,
    CATEGORIES,
    Attribution,
    TraceEvent,
    Tracer,
    chrome_trace,
    write_jsonl,
)

__all__ = [
    "Attribution",
    "BACKGROUND",
    "CATEGORIES",
    "MetricSource",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "payloads_match",
    "render_attribution",
    "render_client_attribution",
    "run_unit_traced",
    "write_jsonl",
]
