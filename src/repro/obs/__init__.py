"""repro.obs -- virtual-time tracing, latency attribution, unified metrics,
and wall-clock campaign telemetry.

The observability layer the paper's methodology demands: every measurement
can carry the evidence explaining *where* its time went -- in virtual time
(tracing/attribution, section 8 of ``docs/architecture.md``) and in real
time (the executor event log and phase profiler, section 11).  Both halves
share one argument for why observing cannot perturb the measurement.
"""

from repro.obs.benchdiff import BenchDelta, BenchDiff, diff_benchmarks, diff_files
from repro.obs.benchjson import BenchStats, dump_bench_json, load_bench_json
from repro.obs.explain import (
    payloads_match,
    render_attribution,
    render_client_attribution,
    run_unit_traced,
)
from repro.obs.metrics import MetricSource, MetricsRegistry
from repro.obs.profile import PhaseProfiler, hotspot_report
from repro.obs.telemetry import (
    EVENT_KINDS,
    ProgressReporter,
    TelemetryEvent,
    TelemetrySink,
    load_events,
    render_report,
    timed_execute,
)
from repro.obs.trace import (
    BACKGROUND,
    CATEGORIES,
    Attribution,
    TraceEvent,
    Tracer,
    chrome_trace,
    write_jsonl,
)

__all__ = [
    "Attribution",
    "BACKGROUND",
    "BenchDelta",
    "BenchDiff",
    "BenchStats",
    "CATEGORIES",
    "EVENT_KINDS",
    "MetricSource",
    "MetricsRegistry",
    "PhaseProfiler",
    "ProgressReporter",
    "TelemetryEvent",
    "TelemetrySink",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "diff_benchmarks",
    "diff_files",
    "dump_bench_json",
    "hotspot_report",
    "load_bench_json",
    "load_events",
    "payloads_match",
    "render_attribution",
    "render_client_attribution",
    "render_report",
    "run_unit_traced",
    "timed_execute",
    "write_jsonl",
]
