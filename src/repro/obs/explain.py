"""Rendering and re-run helpers behind ``fsbench-rocket explain``/``trace``.

``explain`` answers the paper's "where did the time go?" question for any
experiment cell: it re-executes the cell with tracing enabled (bypassing the
result cache -- a cache hit skips execution and therefore carries no
attribution), checks the traced measurement is bit-identical to the cached
one, and renders the per-layer breakdown.

Module-level imports stay within ``repro.obs`` so the runner can import the
tracer without a circular dependency; the helpers that need the execution
machinery import it lazily.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.trace import BACKGROUND, CATEGORIES

__all__ = [
    "render_attribution",
    "render_client_attribution",
    "run_unit_traced",
    "payloads_match",
]


def _fmt_ms(value_ns: float) -> str:
    return f"{value_ns / 1e6:.3f}"


def render_attribution(attribution: Dict[str, object], title: Optional[str] = None) -> str:
    """Render an ``RunResult.attribution`` dict as a fixed-width pivot.

    Rows are op types (plus an ``(all ops)`` total row and a ``share`` row of
    category percentages); columns are the seven attribution categories plus
    a row total.  Values are virtual milliseconds.
    """
    ops: Dict[str, Dict[str, float]] = attribution.get("ops", {})  # type: ignore[assignment]
    totals: Dict[str, float] = attribution.get("totals", {})  # type: ignore[assignment]
    background: Dict[str, float] = attribution.get("background", {})  # type: ignore[assignment]
    grand_total = sum(totals.values())

    headers = ["op"] + [f"{cat}_ms" for cat in CATEGORIES] + ["total_ms"]
    rows: List[List[str]] = []
    for op in sorted(ops):
        cats = ops[op]
        row_total = sum(cats.values())
        rows.append([op] + [_fmt_ms(cats.get(cat, 0.0)) for cat in CATEGORIES] + [_fmt_ms(row_total)])
    rows.append(
        ["(all ops)"] + [_fmt_ms(totals.get(cat, 0.0)) for cat in CATEGORIES] + [_fmt_ms(grand_total)]
    )
    if grand_total > 0:
        rows.append(
            ["share"]
            + [f"{100.0 * totals.get(cat, 0.0) / grand_total:.1f}%" for cat in CATEGORIES]
            + ["100.0%"]
        )

    widths = [max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(len(headers))]

    def fmt_row(cells: List[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = [cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:])]
        return "  ".join([first] + rest)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-" * len(lines[-1]))
    lines.extend(fmt_row(row) for row in rows)
    if background:
        bg_total = sum(background.values())
        lines.append(f"{BACKGROUND} outside op spans: {_fmt_ms(bg_total)} ms")
    return "\n".join(lines)


def render_client_attribution(attribution: Dict[str, object]) -> str:
    """Per-client category breakdown (multi-client runs only)."""
    clients: Dict[str, Dict[str, float]] = attribution.get("clients", {})  # type: ignore[assignment]
    if len(clients) <= 1:
        return ""
    headers = ["client"] + [f"{cat}_ms" for cat in CATEGORIES] + ["total_ms"]
    rows = []
    for client in sorted(clients, key=lambda c: int(c)):
        cats = clients[client]
        rows.append(
            [client]
            + [_fmt_ms(cats.get(cat, 0.0)) for cat in CATEGORIES]
            + [_fmt_ms(sum(cats.values()))]
        )
    widths = [max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(len(headers))]
    lines = ["  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def run_unit_traced(unit):
    """Execute one :class:`~repro.core.parallel.WorkUnit` with tracing on.

    Deliberately bypasses the :class:`~repro.core.parallel.ResultCache`: the
    point is to *execute* and collect attribution.  Because tracing is
    non-perturbing, the returned measurement is bit-identical to the cached
    one -- ``payloads_match`` verifies exactly that.
    """
    from dataclasses import replace

    from repro.core.parallel import execute_unit

    traced = replace(unit, config=replace(unit.config, trace=True))
    return execute_unit(traced)


def payloads_match(run_a, run_b) -> bool:
    """Whether two runs serialize to the identical payload (bit-identity)."""
    from repro.core.persistence import run_result_to_dict

    return run_result_to_dict(run_a) == run_result_to_dict(run_b)
