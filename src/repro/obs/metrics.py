"""A uniform snapshot/reset protocol for the stack's per-layer counters.

Before this module each layer kept its own ad-hoc stats dataclass
(``VfsStats``, ``BlockDeviceStats``, ``DeviceStats``, ``JournalStats``,
``CacheStats``) with hand-written ``reset`` methods, and the runner plucked
individual fields into ``RunResult.environment`` by name.  Now every stats
holder mixes in :class:`MetricSource` -- ``snapshot()`` returns the counters
as a flat ``{name: float}`` dict (dataclass fields plus any derived
properties the class lists in ``derived_metrics``), ``reset()`` restores
dataclass defaults -- and a :class:`MetricsRegistry` built by the storage
stack collects them all uniformly.

Counters are pure observers: nothing in the simulation reads them back, so
snapshotting or resetting them can never perturb virtual time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Tuple

__all__ = ["MetricSource", "MetricsRegistry"]


class MetricSource:
    """Mixin giving a stats dataclass the ``snapshot()/reset()`` protocol.

    Subclasses may set ``derived_metrics`` to a tuple of property names to
    include in snapshots (e.g. a cache's ``hit_ratio``, a flash device's
    ``write_amplification``).
    """

    #: Property names included in :meth:`snapshot` alongside the fields.
    derived_metrics: Tuple[str, ...] = ()

    def snapshot(self) -> Dict[str, float]:
        """All counters as floats, fields first, derived metrics after."""
        out: Dict[str, float] = {}
        for field in dataclasses.fields(self):
            out[field.name] = float(getattr(self, field.name))
        for name in self.derived_metrics:
            out[name] = float(getattr(self, name))
        return out

    def reset(self) -> None:
        """Restore every dataclass field to its declared default."""
        for field in dataclasses.fields(self):
            if field.default is not dataclasses.MISSING:
                setattr(self, field.name, field.default)
            elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                setattr(self, field.name, field.default_factory())  # type: ignore[misc]


class MetricsRegistry:
    """Named collection of the stack's :class:`MetricSource` instances.

    Built per stack (see ``StorageStack.metrics_registry``); layer names are
    stable identifiers (``vfs``, ``cache``, ``fs``, ``journal``, ``block``,
    ``device``) so snapshots are self-describing.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, MetricSource] = {}

    def register(self, name: str, source: MetricSource) -> None:
        if not callable(getattr(source, "snapshot", None)) or not callable(
            getattr(source, "reset", None)
        ):
            raise TypeError(f"metric source {name!r} must provide snapshot() and reset()")
        if name in self._sources:
            raise ValueError(f"duplicate metric source {name!r}")
        self._sources[name] = source

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __iter__(self) -> Iterator[str]:
        return iter(self._sources)

    def source(self, name: str) -> MetricSource:
        return self._sources[name]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Every layer's counters: ``{layer: {counter: value}}``."""
        return {name: source.snapshot() for name, source in self._sources.items()}

    def reset(self) -> None:
        for source in self._sources.values():
            source.reset()
