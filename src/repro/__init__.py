"""fsbench-rocket: file system benchmarking as a multi-dimensional discipline.

A reproduction of "Benchmarking File System Benchmarking: It *IS* Rocket
Science" (Tarasov, Bhanage, Zadok, Seltzer -- HotOS XIII, 2011) as a usable
Python library:

* :mod:`repro.core` -- the benchmarking methodology the paper calls for:
  dimension taxonomy, nano-benchmark suite, statistically honest runners,
  latency histograms, timelines, steady-state detection, self-scaling sweeps,
  range-based reporting, the Table-1 survey database and its measured
  counterpart, the parallel executor + persistent result cache that fan
  surveys out over processes with bit-identical results, and the declarative
  :class:`~repro.core.experiment.Experiment` API (parameter grids over named
  axes, tidy :class:`~repro.core.frame.ResultFrame` results) that every
  legacy harness now shims onto.
* :mod:`repro.storage` -- the simulated storage substrate (virtual clock,
  disk/SSD models including the stateful page-mapped FTL with garbage
  collection and TRIM, page cache, readahead, block layer).
* :mod:`repro.fs` -- behavioural Ext2/Ext3/XFS models and the VFS gluing the
  stack together.
* :mod:`repro.workloads` -- the workload model (flowops, filesets), micro
  workloads, Filebench-like personalities, PostMark, compile and IOmeter-like
  generators, and trace record/replay.
* :mod:`repro.analysis` -- regime labelling, transition detection, fragility
  and honest cross-system comparison.
* :mod:`repro.aging` -- file system aging engines, fragmentation metrics and
  deterministic state snapshots (the aged-vs-fresh scenario axis).
* :mod:`repro.obs` -- virtual-time tracing and full-stack latency
  attribution: a span-stack :class:`~repro.obs.Tracer`, the per-layer
  :class:`~repro.obs.Attribution` breakdown behind ``fsbench-rocket
  trace``/``explain``, and the unified metrics registry.
* :mod:`repro.store` -- the packed result store: read-optimized, compressed,
  integrity-checked ``.frpack`` campaign artifacts (pack/merge/verify/query
  behind ``fsbench-rocket results``) that plug back into execution as a
  read-through cache tier.
* :mod:`repro.experiments` -- one harness per figure/table of the paper.

Quick start::

    from repro import Experiment, ParameterGrid

    outcome = Experiment(
        ParameterGrid.of(fs=("ext2", "ext4"), workload=("postmark",), seed=range(5))
    ).run()
    print(outcome.render())
    outcome.frame.filter(metric="throughput_ops_s").to_csv("results.csv")
"""

from repro.core import (
    BenchmarkConfig,
    BenchmarkRunner,
    Coverage,
    Dimension,
    DimensionVector,
    Experiment,
    ExperimentResult,
    LatencyHistogram,
    MeasuredSurvey,
    NanoBenchmark,
    NanoBenchmarkSuite,
    ParallelExecutor,
    ParameterGrid,
    PivotTable,
    RepetitionSet,
    ResultCache,
    ResultFrame,
    RunResult,
    SelfScalingBenchmark,
    SummaryStatistics,
    SurveyDatabase,
    SweepResult,
    WarmupMode,
    default_suite,
    load_paper_survey,
    run_single_repetition,
    summarize,
)
from repro.aging import (
    AgingConfig,
    ChurnAger,
    StateSnapshot,
    TraceAger,
    load_snapshot,
    restore_stack,
    run_aged_vs_fresh,
    save_snapshot,
    snapshot_stack,
)
from repro.fs import build_stack, StorageStack
from repro.obs import Attribution, MetricsRegistry, Tracer
from repro.storage import (
    FlashGeometry,
    FlashTranslationLayer,
    TestbedConfig,
    paper_testbed,
    precondition_ssd,
    scaled_testbed,
    ssd_ftl_testbed,
)
from repro.workloads import (
    WorkloadEngine,
    WorkloadSpec,
    random_read_workload,
    sequential_read_workload,
)

#: The single source of the package version: setup.py parses it from here and
#: the CLI's ``--version`` flag reports it.
__version__ = "1.9.0"

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ParameterGrid",
    "PivotTable",
    "ResultFrame",
    "AgingConfig",
    "ChurnAger",
    "StateSnapshot",
    "TraceAger",
    "load_snapshot",
    "restore_stack",
    "run_aged_vs_fresh",
    "save_snapshot",
    "snapshot_stack",
    "BenchmarkConfig",
    "BenchmarkRunner",
    "Coverage",
    "Dimension",
    "DimensionVector",
    "LatencyHistogram",
    "NanoBenchmark",
    "NanoBenchmarkSuite",
    "RepetitionSet",
    "RunResult",
    "SelfScalingBenchmark",
    "SummaryStatistics",
    "SurveyDatabase",
    "SweepResult",
    "WarmupMode",
    "default_suite",
    "load_paper_survey",
    "summarize",
    "MeasuredSurvey",
    "ParallelExecutor",
    "ResultCache",
    "run_single_repetition",
    "build_stack",
    "StorageStack",
    "Attribution",
    "MetricsRegistry",
    "Tracer",
    "paper_testbed",
    "scaled_testbed",
    "ssd_ftl_testbed",
    "TestbedConfig",
    "FlashGeometry",
    "FlashTranslationLayer",
    "precondition_ssd",
    "WorkloadEngine",
    "WorkloadSpec",
    "random_read_workload",
    "sequential_read_workload",
    "__version__",
]
