"""Page cache with pluggable eviction policies.

The page cache is the component responsible for the headline result of the
paper's case study: whether a working set fits in it determines whether a
"file system benchmark" is measuring memory or the disk.  The cache is
page-granular; keys are ``(inode_number, page_index)`` tuples supplied by the
VFS layer.

Four eviction policies are provided:

* :class:`LRUPolicy` -- strict least-recently-used (a good stand-in for the
  paper-era Linux page cache behaviour under random reads).
* :class:`ClockPolicy` -- second-chance / CLOCK, closer to what Linux actually
  implements.
* :class:`ARCPolicy` -- Adaptive Replacement Cache, scan-resistant.
* :class:`TwoQPolicy` -- the 2Q algorithm (A1in/A1out/Am queues).

The ablation benchmark ``benchmarks/test_bench_ablation_cache.py`` sweeps the
Figure-1 experiment across these policies to show how much of the published
"file system performance" is actually an artifact of the cache policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, List, Set, Tuple

from repro.obs.metrics import MetricSource

PageKey = Tuple[int, int]


class CachePolicy(str, Enum):
    """Names of the available eviction policies."""

    LRU = "lru"
    CLOCK = "clock"
    ARC = "arc"
    TWO_Q = "2q"
    FIFO = "fifo"


@dataclass
class CacheStats(MetricSource):
    """Hit/miss and eviction counters for a cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    #: Included in :meth:`MetricSource.snapshot` alongside the raw counters.
    derived_metrics = ("accesses", "hit_ratio")

    @property
    def accesses(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups happened."""
        total = self.accesses
        return self.hits / total if total else 0.0


class EvictionPolicy(ABC):
    """Bookkeeping interface used by :class:`PageCache`.

    A policy tracks *which* resident page should be evicted next; the cache
    itself tracks residency and dirtiness.
    """

    @abstractmethod
    def on_hit(self, key: Hashable) -> None:
        """Record an access to a resident page."""

    @abstractmethod
    def on_insert(self, key: Hashable) -> None:
        """Record the insertion of a new resident page."""

    @abstractmethod
    def select_victim(self) -> Hashable:
        """Evict and return the next victim.

        The victim is removed from the policy's *resident* tracking; policies
        with ghost lists (ARC, 2Q) may keep remembering the key there.
        """

    @abstractmethod
    def discard(self, key: Hashable) -> None:
        """Forget a page that was removed without eviction (invalidation)."""

    @abstractmethod
    def clear(self) -> None:
        """Forget everything."""

    @abstractmethod
    def resident_order(self) -> List[Hashable]:
        """Resident keys ordered so that re-inserting them into a fresh policy
        best reproduces this policy's state (next victim first).

        State snapshots (:mod:`repro.aging.snapshot`) persist this order and
        rebuild the policy by replaying inserts; every policy must implement
        it so snapshotting can never silently fall back to an arbitrary
        order.  Ghost lists and reference bits are not captured -- the
        reconstruction is an approximation, but a deterministic one.
        """


class LRUPolicy(EvictionPolicy):
    """Strict least-recently-used ordering."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def select_victim(self) -> Hashable:
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def clear(self) -> None:
        self._order.clear()

    def resident_order(self) -> List[Hashable]:
        return list(self._order)


class FIFOPolicy(EvictionPolicy):
    """First-in first-out: insertion order, accesses do not promote."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        # FIFO ignores recency.
        return

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def select_victim(self) -> Hashable:
        key, _ = self._order.popitem(last=False)
        return key

    def discard(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def clear(self) -> None:
        self._order.clear()

    def resident_order(self) -> List[Hashable]:
        return list(self._order)


class ClockPolicy(EvictionPolicy):
    """Second-chance (CLOCK) approximation of LRU.

    Pages are kept on a circular list with a reference bit; the clock hand
    skips (and clears) referenced pages and evicts the first unreferenced one.
    """

    def __init__(self) -> None:
        self._ref: Dict[Hashable, bool] = {}
        self._ring: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_insert(self, key: Hashable) -> None:
        self._ref[key] = False
        self._ring[key] = None

    def select_victim(self) -> Hashable:
        # Sweep the hand: give referenced pages a second chance by moving them
        # to the back with the bit cleared.
        while True:
            key = next(iter(self._ring))
            if self._ref.get(key, False):
                self._ref[key] = False
                self._ring.move_to_end(key)
            else:
                del self._ring[key]
                self._ref.pop(key, None)
                return key

    def discard(self, key: Hashable) -> None:
        self._ref.pop(key, None)
        self._ring.pop(key, None)

    def clear(self) -> None:
        self._ref.clear()
        self._ring.clear()

    def resident_order(self) -> List[Hashable]:
        return list(self._ring)


class ARCPolicy(EvictionPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha).

    Maintains two resident lists (T1: recently seen once, T2: seen at least
    twice) and two ghost lists (B1, B2) of recently evicted keys.  The target
    size of T1 (``p``) adapts based on which ghost list gets hit.
    """

    def __init__(self, capacity_hint: int = 1024) -> None:
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        self.capacity = capacity_hint
        self.p = 0.0
        self.t1: "OrderedDict[Hashable, None]" = OrderedDict()
        self.t2: "OrderedDict[Hashable, None]" = OrderedDict()
        self.b1: "OrderedDict[Hashable, None]" = OrderedDict()
        self.b2: "OrderedDict[Hashable, None]" = OrderedDict()

    # -- helpers -------------------------------------------------------------
    def _trim_ghosts(self) -> None:
        while len(self.b1) > self.capacity:
            self.b1.popitem(last=False)
        while len(self.b2) > self.capacity:
            self.b2.popitem(last=False)

    def on_hit(self, key: Hashable) -> None:
        if key in self.t1:
            del self.t1[key]
            self.t2[key] = None
        elif key in self.t2:
            self.t2.move_to_end(key)

    def on_insert(self, key: Hashable) -> None:
        if key in self.b1:
            # A miss that hits the "recency" ghost list: grow T1's target.
            delta = 1.0 if len(self.b1) >= len(self.b2) else len(self.b2) / max(1, len(self.b1))
            self.p = min(float(self.capacity), self.p + delta)
            del self.b1[key]
            self.t2[key] = None
        elif key in self.b2:
            # A miss that hits the "frequency" ghost list: shrink T1's target.
            delta = 1.0 if len(self.b2) >= len(self.b1) else len(self.b1) / max(1, len(self.b2))
            self.p = max(0.0, self.p - delta)
            del self.b2[key]
            self.t2[key] = None
        else:
            self.t1[key] = None
        self._trim_ghosts()

    def select_victim(self) -> Hashable:
        prefer_t1 = len(self.t1) > 0 and (len(self.t1) > self.p or len(self.t2) == 0)
        if prefer_t1:
            key = next(iter(self.t1))
            del self.t1[key]
            self.b1[key] = None
        else:
            key = next(iter(self.t2))
            del self.t2[key]
            self.b2[key] = None
        self._trim_ghosts()
        return key

    def discard(self, key: Hashable) -> None:
        self.t1.pop(key, None)
        self.t2.pop(key, None)
        self.b1.pop(key, None)
        self.b2.pop(key, None)

    def clear(self) -> None:
        self.p = 0.0
        self.t1.clear()
        self.t2.clear()
        self.b1.clear()
        self.b2.clear()

    def resident_order(self) -> List[Hashable]:
        return list(self.t1) + list(self.t2)


class TwoQPolicy(EvictionPolicy):
    """The 2Q algorithm: a FIFO probation queue, a ghost queue and an LRU main queue."""

    def __init__(self, capacity_hint: int = 1024, kin_fraction: float = 0.25, kout_fraction: float = 0.5) -> None:
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        if not (0.0 < kin_fraction < 1.0):
            raise ValueError("kin_fraction must be in (0, 1)")
        self.capacity = capacity_hint
        self.kin = max(1, int(capacity_hint * kin_fraction))
        self.kout = max(1, int(capacity_hint * kout_fraction))
        self.a1in: "OrderedDict[Hashable, None]" = OrderedDict()
        self.a1out: "OrderedDict[Hashable, None]" = OrderedDict()
        self.am: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        if key in self.am:
            self.am.move_to_end(key)
        # A hit in A1in does not promote: 2Q only promotes on re-reference
        # after leaving A1in (tracked via the ghost queue at insert time).

    def on_insert(self, key: Hashable) -> None:
        if key in self.a1out:
            del self.a1out[key]
            self.am[key] = None
        else:
            self.a1in[key] = None

    def select_victim(self) -> Hashable:
        if len(self.a1in) > self.kin or not self.am:
            key = next(iter(self.a1in))
            del self.a1in[key]
            self.a1out[key] = None
            while len(self.a1out) > self.kout:
                self.a1out.popitem(last=False)
        else:
            key = next(iter(self.am))
            del self.am[key]
        return key

    def discard(self, key: Hashable) -> None:
        self.a1in.pop(key, None)
        self.a1out.pop(key, None)
        self.am.pop(key, None)

    def clear(self) -> None:
        self.a1in.clear()
        self.a1out.clear()
        self.am.clear()

    def resident_order(self) -> List[Hashable]:
        return list(self.a1in) + list(self.am)


def _make_policy(policy: CachePolicy, capacity_pages: int) -> EvictionPolicy:
    if policy == CachePolicy.LRU:
        return LRUPolicy()
    if policy == CachePolicy.CLOCK:
        return ClockPolicy()
    if policy == CachePolicy.ARC:
        return ARCPolicy(capacity_hint=capacity_pages)
    if policy == CachePolicy.TWO_Q:
        return TwoQPolicy(capacity_hint=capacity_pages)
    if policy == CachePolicy.FIFO:
        return FIFOPolicy()
    raise ValueError(f"unknown cache policy: {policy!r}")


class PageCache:
    """A page-granular cache of file data with dirty-page tracking.

    Parameters
    ----------
    capacity_pages:
        Number of pages the cache can hold.  ``0`` disables caching entirely
        (every lookup misses), which is occasionally useful for isolating the
        on-disk dimension.
    policy:
        Eviction policy name or :class:`CachePolicy` value.
    page_size:
        Page size in bytes (informational; the cache itself is page-indexed).
    """

    def __init__(
        self,
        capacity_pages: int,
        policy: CachePolicy = CachePolicy.LRU,
        page_size: int = 4096,
    ) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        # lint: ephemeral -- geometry, rebuilt from the testbed on restore
        self.capacity_pages = int(capacity_pages)
        self.page_size = int(page_size)
        self.policy_name = CachePolicy(policy)
        self._policy = _make_policy(self.policy_name, max(1, capacity_pages))
        self._resident: Set[PageKey] = set()
        self._dirty: Set[PageKey] = set()
        self.stats = CacheStats()

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._resident

    @property
    def dirty_pages(self) -> int:
        """Number of dirty (modified, not yet written back) pages."""
        return len(self._dirty)

    @property
    def capacity_bytes(self) -> int:
        """Cache capacity expressed in bytes."""
        return self.capacity_pages * self.page_size

    def resident_pages_of(self, inode_number: int) -> int:
        """Count resident pages belonging to ``inode_number`` (O(n); diagnostic use)."""
        return sum(1 for ino, _ in self._resident if ino == inode_number)

    # --------------------------------------------------------------- actions
    def lookup(self, key: PageKey) -> bool:
        """Return True on a cache hit and record the access."""
        if key in self._resident:
            self.stats.hits += 1
            self._policy.on_hit(key)
            return True
        self.stats.misses += 1
        return False

    def peek(self, key: PageKey) -> bool:
        """Return residency without recording an access (no stats, no promotion)."""
        return key in self._resident

    def insert(self, key: PageKey, dirty: bool = False) -> List[Tuple[PageKey, bool]]:
        """Insert a page, evicting as needed.

        Returns the list of ``(key, was_dirty)`` pairs evicted to make room.
        Dirty evictions must be written back by the caller (the VFS charges
        device time for them).
        """
        if self.capacity_pages == 0:
            return []
        evicted: List[Tuple[PageKey, bool]] = []
        if key in self._resident:
            self._policy.on_hit(key)
            if dirty:
                self._dirty.add(key)
            return evicted

        while len(self._resident) >= self.capacity_pages:
            victim = self._policy.select_victim()
            # The policy must only return resident pages; a desync here is a bug.
            self._resident.remove(victim)
            was_dirty = victim in self._dirty
            if was_dirty:
                self._dirty.remove(victim)
                self.stats.dirty_evictions += 1
            self.stats.evictions += 1
            evicted.append((victim, was_dirty))

        self._resident.add(key)
        if dirty:
            self._dirty.add(key)
        self._policy.on_insert(key)
        self.stats.insertions += 1
        return evicted

    def mark_dirty(self, key: PageKey) -> None:
        """Mark a resident page dirty (no-op if the page is not resident)."""
        if key in self._resident:
            self._dirty.add(key)

    def clean(self, key: PageKey) -> None:
        """Mark a page clean after it has been written back."""
        self._dirty.discard(key)

    def dirty_keys(self) -> List[PageKey]:
        """Snapshot of the currently dirty page keys, in (inode, page) order.

        Sorted, not set order: callers write these pages back, so the order
        reaches the device request stream and must not depend on hash-table
        layout.
        """
        return sorted(self._dirty)

    def invalidate(self, key: PageKey) -> bool:
        """Drop a single page; returns True if it was resident."""
        if key not in self._resident:
            return False
        self._resident.remove(key)
        self._dirty.discard(key)
        self._policy.discard(key)
        self.stats.invalidations += 1
        return True

    def invalidate_inode(self, inode_number: int) -> int:
        """Drop every page of one file; returns the number of pages dropped."""
        victims = sorted(key for key in self._resident if key[0] == inode_number)
        for key in victims:
            self._resident.remove(key)
            self._dirty.discard(key)
            self._policy.discard(key)
        self.stats.invalidations += len(victims)
        return len(victims)

    def drop_caches(self) -> int:
        """Drop all clean *and* dirty pages (like ``echo 3 > drop_caches`` plus sync loss).

        Returns the number of pages dropped.  Benchmark runners call this
        between repetitions to restore a cold cache.
        """
        dropped = len(self._resident)
        self._resident.clear()
        self._dirty.clear()
        self._policy.clear()
        return dropped

    # ------------------------------------------------------- snapshot support
    def export_state(self) -> Tuple[List[PageKey], List[PageKey]]:
        """``(resident, dirty)`` where ``resident`` is in restore order.

        Replaying ``insert`` over the resident list (dirty bits applied)
        deterministically reconstructs the cache, including the eviction
        policy's bookkeeping (see :meth:`EvictionPolicy.resident_order`).
        """
        order = self._policy.resident_order()
        resident = [key for key in order if key in self._resident]
        # Residency is the cache's source of truth; anything a policy failed
        # to report is appended in sorted (still deterministic) order.
        resident += sorted(self._resident.difference(resident))
        return resident, sorted(self._dirty)

    def restore_state(self, resident: List[PageKey], dirty: List[PageKey]) -> None:
        """Rebuild cache contents exported by :meth:`export_state`.

        Existing contents are dropped; statistics are reset afterwards so
        the replayed inserts leave no trace in the counters.  A smaller
        capacity than at export time simply evicts during the replay.
        """
        self.drop_caches()
        dirty_set = set(dirty)
        for key in resident:
            self.insert(key, dirty=key in dirty_set)
        self.stats.reset()

    def resize(self, capacity_pages: int) -> List[Tuple[PageKey, bool]]:
        """Change the capacity; shrinking evicts pages and returns them."""
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self.capacity_pages = int(capacity_pages)
        evicted: List[Tuple[PageKey, bool]] = []
        while len(self._resident) > self.capacity_pages:
            victim = self._policy.select_victim()
            self._resident.remove(victim)
            was_dirty = victim in self._dirty
            self._dirty.discard(victim)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_evictions += 1
            evicted.append((victim, was_dirty))
        return evicted

    def __repr__(self) -> str:
        mb = self.capacity_bytes / (1024 * 1024)
        return (
            f"PageCache({self.policy_name.value}, {mb:.0f}MiB, "
            f"{len(self._resident)}/{self.capacity_pages} pages)"
        )


def make_cache(
    capacity_bytes: int,
    page_size: int = 4096,
    policy: CachePolicy = CachePolicy.LRU,
) -> PageCache:
    """Convenience constructor taking a byte capacity instead of a page count."""
    if capacity_bytes < 0:
        raise ValueError("capacity_bytes must be non-negative")
    return PageCache(capacity_bytes // page_size, policy=policy, page_size=page_size)
