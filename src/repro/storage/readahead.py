"""Readahead (prefetch) policies.

The paper points out that on-disk benchmarks silently become caching
benchmarks because "applications can rarely control how a file system caches
and prefetches data".  This module makes the prefetch behaviour an explicit,
swappable policy so that benchmarks can isolate it (or sweep it, as the
readahead ablation benchmark does).

Two mechanisms are modelled, mirroring real kernels:

* **Sequential-stream readahead** (:class:`ReadaheadState`): per-open-file
  detection of sequential access with an exponentially growing window, like
  the Linux ondemand readahead algorithm.  Random access never triggers it.
* **Cluster reads** (``cluster_pages`` on a file system): on a cache miss the
  file system reads a naturally aligned cluster of pages around the missing
  page in one device request.  This is the mechanism by which the simulated
  Ext2/Ext3/XFS differ during cache warm-up (Figure 2): a file system that
  brings in more pages per miss warms the cache faster even under a purely
  random workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ReadaheadPolicy:
    """Parameters of the sequential readahead algorithm.

    Attributes
    ----------
    enabled:
        Master switch; when false no readahead is ever issued.
    initial_window_pages:
        Window used when a new sequential stream is detected.
    max_window_pages:
        Upper bound on the window (Linux default is 128 KiB = 32 pages).
    sequential_threshold:
        Number of consecutive sequential accesses required before the
        window starts growing.
    """

    enabled: bool = True
    initial_window_pages: int = 4
    max_window_pages: int = 32
    sequential_threshold: int = 2

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.initial_window_pages <= 0:
            raise ValueError("initial_window_pages must be positive")
        if self.max_window_pages < self.initial_window_pages:
            raise ValueError("max_window_pages must be >= initial_window_pages")
        if self.sequential_threshold < 1:
            raise ValueError("sequential_threshold must be >= 1")


#: Readahead disabled entirely (used by the readahead ablation).
NO_READAHEAD = ReadaheadPolicy(enabled=False)

#: Linux-like defaults: up to 128 KiB windows on sequential streams.
DEFAULT_READAHEAD = ReadaheadPolicy()

#: An aggressive policy resembling server-tuned settings (512 KiB windows).
AGGRESSIVE_READAHEAD = ReadaheadPolicy(
    enabled=True, initial_window_pages=8, max_window_pages=128, sequential_threshold=1
)


class ReadaheadState:
    """Per-open-file readahead state machine.

    The VFS calls :meth:`advise` with each read's page range; the state
    machine returns the extra pages (beyond the requested ones) that should be
    brought into the cache asynchronously.
    """

    __slots__ = ("policy", "_next_expected_page", "_streak", "_window_pages")

    def __init__(self, policy: ReadaheadPolicy = DEFAULT_READAHEAD) -> None:
        policy.validate()
        self.policy = policy
        self._next_expected_page = -1
        self._streak = 0
        self._window_pages = 0

    @property
    def window_pages(self) -> int:
        """Current readahead window size in pages (0 while not sequential)."""
        return self._window_pages

    @property
    def sequential_streak(self) -> int:
        """Number of consecutive sequential accesses observed."""
        return self._streak

    def reset(self) -> None:
        """Forget stream history (e.g. after a seek via ``lseek``)."""
        self._next_expected_page = -1
        self._streak = 0
        self._window_pages = 0

    def advise(self, first_page: int, page_count: int, file_pages: int) -> Tuple[int, int]:
        """Update stream detection and return the readahead range.

        Parameters
        ----------
        first_page:
            Index of the first page touched by this read.
        page_count:
            Number of pages touched by this read.
        file_pages:
            Total number of pages in the file, used to clamp the window.

        Returns
        -------
        (start_page, count):
            Pages to prefetch *after* the requested range; ``count`` is zero
            when no readahead should happen (policy disabled, random access,
            or end of file).
        """
        if page_count <= 0:
            raise ValueError("page_count must be positive")
        if not self.policy.enabled:
            return (0, 0)

        sequential = first_page == self._next_expected_page
        self._next_expected_page = first_page + page_count

        if sequential:
            self._streak += 1
        else:
            self._streak = 1 if first_page == 0 else 0
            self._window_pages = 0

        if self._streak < self.policy.sequential_threshold:
            return (0, 0)

        if self._window_pages == 0:
            self._window_pages = self.policy.initial_window_pages
        else:
            self._window_pages = min(self.policy.max_window_pages, self._window_pages * 2)

        start = first_page + page_count
        if start >= file_pages:
            return (0, 0)
        count = min(self._window_pages, file_pages - start)
        return (start, count)


def cluster_range(page_index: int, cluster_pages: int, file_pages: int) -> Tuple[int, int]:
    """Return the naturally aligned cluster covering ``page_index``.

    File systems use this to turn a single-page miss into a cluster-sized
    device read.  The cluster is aligned to ``cluster_pages`` and clamped to
    the end of the file.

    Returns ``(start_page, count)``.
    """
    if cluster_pages <= 0:
        raise ValueError("cluster_pages must be positive")
    if page_index < 0 or file_pages <= 0 or page_index >= file_pages:
        raise ValueError("page_index must lie inside the file")
    start = (page_index // cluster_pages) * cluster_pages
    count = min(cluster_pages, file_pages - start)
    return (start, count)
