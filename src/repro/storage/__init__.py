"""Simulated storage substrate.

This subpackage provides the layers *below* the file system that the paper
identifies as dominating benchmark results:

* :mod:`repro.storage.clock` -- the virtual (simulated) clock that every
  latency in the framework is charged against.
* :mod:`repro.storage.disk` -- mechanical disk and SSD device models that turn
  a block request into nanoseconds of simulated time.
* :mod:`repro.storage.flash` -- the stateful NAND model: a page-mapped flash
  translation layer with garbage collection, wear counters, discard (TRIM)
  support and deterministic steady-state preconditioning.
* :mod:`repro.storage.device` -- the block layer: request queues and I/O
  schedulers in front of a device model.
* :mod:`repro.storage.cache` -- the page cache with pluggable eviction
  policies (LRU, CLOCK, ARC, 2Q) and dirty-page writeback.
* :mod:`repro.storage.readahead` -- sequential-stream detection and readahead
  window management.
* :mod:`repro.storage.latency` -- small latency/noise distributions used by
  the device and cache models.
* :mod:`repro.storage.config` -- testbed descriptions, including the paper's
  512 MB / single-SATA-disk machine.

Everything here operates purely in simulated time; no real I/O is performed.
"""

from repro.storage.clock import VirtualClock
from repro.storage.config import (
    DEFAULT_DEVICE_KINDS,
    DEVICE_REGISTRY,
    TestbedConfig,
    paper_testbed,
    scaled_testbed,
    ssd_ftl_testbed,
    ssd_testbed,
)
from repro.storage.flash import (
    FlashGeometry,
    FlashTranslationLayer,
    PreconditionReport,
    default_flash_geometry,
    precondition_ssd,
)
from repro.storage.cache import (
    CachePolicy,
    CacheStats,
    PageCache,
    make_cache,
)
from repro.storage.device import (
    SCHEDULER_REGISTRY,
    BlockDevice,
    IORequest,
    IOScheduler,
    NoopScheduler,
    ElevatorScheduler,
    DeadlineScheduler,
)
from repro.storage.disk import (
    DeviceModel,
    DiskGeometry,
    MechanicalDisk,
    SolidStateDisk,
    RamDisk,
)
from repro.storage.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    NormalLatency,
    UniformLatency,
)
from repro.storage.readahead import ReadaheadPolicy, ReadaheadState

__all__ = [
    "VirtualClock",
    "DEFAULT_DEVICE_KINDS",
    "DEVICE_REGISTRY",
    "SCHEDULER_REGISTRY",
    "TestbedConfig",
    "paper_testbed",
    "scaled_testbed",
    "ssd_ftl_testbed",
    "ssd_testbed",
    "FlashGeometry",
    "FlashTranslationLayer",
    "PreconditionReport",
    "default_flash_geometry",
    "precondition_ssd",
    "CachePolicy",
    "CacheStats",
    "PageCache",
    "make_cache",
    "BlockDevice",
    "IORequest",
    "IOScheduler",
    "NoopScheduler",
    "ElevatorScheduler",
    "DeadlineScheduler",
    "DeviceModel",
    "DiskGeometry",
    "MechanicalDisk",
    "SolidStateDisk",
    "RamDisk",
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "NormalLatency",
    "UniformLatency",
    "ReadaheadPolicy",
    "ReadaheadState",
]
