"""Latency and noise models.

The device and cache models compose their service times from small, reusable
latency distributions.  Each distribution draws from a caller-supplied
``random.Random`` so that whole benchmark runs are reproducible from a single
seed (a prerequisite for the statistical analyses in :mod:`repro.core.stats`).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """A distribution over non-negative latencies, in nanoseconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one latency sample (ns)."""

    @abstractmethod
    def mean(self) -> float:
        """Expected latency (ns)."""

    def __call__(self, rng: random.Random) -> float:
        return self.sample(rng)


class ConstantLatency(LatencyModel):
    """A fixed latency with no variance."""

    __slots__ = ("value_ns",)

    def __init__(self, value_ns: float) -> None:
        if value_ns < 0:
            raise ValueError("latency must be non-negative")
        self.value_ns = float(value_ns)

    def sample(self, rng: random.Random) -> float:
        return self.value_ns

    def mean(self) -> float:
        return self.value_ns

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value_ns:.0f}ns)"


class UniformLatency(LatencyModel):
    """Uniformly distributed latency over ``[low_ns, high_ns]``.

    Used, for instance, for rotational delay: the head arrives at a uniformly
    random angular position relative to the target sector.
    """

    __slots__ = ("low_ns", "high_ns")

    def __init__(self, low_ns: float, high_ns: float) -> None:
        if low_ns < 0 or high_ns < low_ns:
            raise ValueError("require 0 <= low_ns <= high_ns")
        self.low_ns = float(low_ns)
        self.high_ns = float(high_ns)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low_ns, self.high_ns)

    def mean(self) -> float:
        return (self.low_ns + self.high_ns) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low_ns:.0f}, {self.high_ns:.0f}]ns)"


class NormalLatency(LatencyModel):
    """Normally distributed latency, truncated at a non-negative floor."""

    __slots__ = ("mean_ns", "stddev_ns", "floor_ns")

    def __init__(self, mean_ns: float, stddev_ns: float, floor_ns: float = 0.0) -> None:
        if mean_ns < 0 or stddev_ns < 0 or floor_ns < 0:
            raise ValueError("parameters must be non-negative")
        self.mean_ns = float(mean_ns)
        self.stddev_ns = float(stddev_ns)
        self.floor_ns = float(floor_ns)

    def sample(self, rng: random.Random) -> float:
        value = rng.gauss(self.mean_ns, self.stddev_ns)
        return value if value > self.floor_ns else self.floor_ns

    def mean(self) -> float:
        return self.mean_ns

    def __repr__(self) -> str:
        return f"NormalLatency(mean={self.mean_ns:.0f}ns, sd={self.stddev_ns:.0f}ns)"


class LogNormalLatency(LatencyModel):
    """Log-normally distributed latency.

    Log-normal is the conventional model for software-path latencies (system
    call overhead, page-cache copy costs): most samples cluster near the mode
    with a long right tail from scheduling and cache effects.

    Parameters are given as the desired *median* and a multiplicative spread
    ``sigma`` (the standard deviation of the underlying normal in log space).
    """

    __slots__ = ("median_ns", "sigma", "_mu")

    def __init__(self, median_ns: float, sigma: float = 0.25) -> None:
        if median_ns <= 0:
            raise ValueError("median_ns must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median_ns = float(median_ns)
        self.sigma = float(sigma)
        self._mu = math.log(median_ns)

    def sample(self, rng: random.Random) -> float:
        if self.sigma == 0.0:
            return self.median_ns
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return self.median_ns * math.exp(self.sigma ** 2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median_ns:.0f}ns, sigma={self.sigma})"


class MixtureLatency(LatencyModel):
    """A weighted mixture of latency models.

    Useful for injecting rare slow events (e.g. a device firmware hiccup or a
    recalibration) into an otherwise well-behaved distribution, which is one
    of the sources of benchmark fragility discussed in the paper.
    """

    __slots__ = ("components", "weights", "_cumulative")

    def __init__(self, components: list, weights: list) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must be equal-length, non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.components = list(components)
        self.weights = [w / total for w in weights]
        self._cumulative = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        for cum, comp in zip(self._cumulative, self.components):
            if u <= cum:
                return comp.sample(rng)
        return self.components[-1].sample(rng)

    def mean(self) -> float:
        return sum(w * c.mean() for w, c in zip(self.weights, self.components))

    def __repr__(self) -> str:
        return f"MixtureLatency({len(self.components)} components)"
