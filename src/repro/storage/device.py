"""Block layer: I/O requests, schedulers and the block device facade.

The block device sits between the file systems and a :class:`DeviceModel`.
It accepts single requests or batches, lets an I/O scheduler reorder batches
(NOOP, elevator/C-SCAN, or deadline), and charges the resulting service time
to the shared virtual clock via its return value.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs.metrics import MetricSource
from repro.storage.disk import DeviceModel


@dataclass(frozen=True)
class IORequest:
    """A single block-level request.

    Attributes
    ----------
    offset_bytes:
        Byte offset on the device.
    nbytes:
        Request length in bytes.
    is_write:
        Write when true, read otherwise.
    is_discard:
        Discard/TRIM when true: tells the device the range no longer holds
        live data.  Mutually exclusive with ``is_write`` (a discard is its
        own operation, not a kind of write).  Only devices whose model
        advertises ``supports_discard`` ever see these; the VFS drops them
        for everything else, exactly like the real block layer.
    priority:
        Smaller numbers are more urgent; only the deadline scheduler uses it
        (e.g. journal commits over background writeback).
    """

    offset_bytes: int
    nbytes: int
    is_write: bool = False
    is_discard: bool = False
    priority: int = 0

    def __post_init__(self) -> None:
        if self.offset_bytes < 0:
            raise ValueError("offset_bytes must be non-negative")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.is_discard and self.is_write:
            raise ValueError("a request is either a write or a discard, not both")

    @property
    def end_bytes(self) -> int:
        """One past the last byte touched by the request."""
        return self.offset_bytes + self.nbytes


class IOScheduler(ABC):
    """Reorders (and possibly merges) a batch of requests before dispatch."""

    name: str = "abstract"

    @abstractmethod
    def order(self, requests: Sequence[IORequest], head_offset: int) -> List[IORequest]:
        """Return the dispatch order for ``requests``.

        ``head_offset`` is the device's current head position in bytes, which
        position-aware schedulers use as the sweep origin.
        """

    @staticmethod
    def merge_adjacent(requests: Sequence[IORequest]) -> List[IORequest]:
        """Merge physically adjacent same-direction requests into larger ones.

        Merging only applies to *consecutive* requests that are exactly
        contiguous: coalescing must not reorder the batch, because ordering is
        the scheduler's job (and the NOOP scheduler's whole contract is that
        dispatch happens in arrival order).  Unmerged requests therefore come
        back in arrival order, with runs of adjacent requests collapsed.
        """
        merged: List[IORequest] = []
        for req in requests:
            last = merged[-1] if merged else None
            if (
                last is not None
                and req.is_write == last.is_write
                and req.is_discard == last.is_discard
                and req.offset_bytes == last.end_bytes
            ):
                merged[-1] = IORequest(
                    offset_bytes=last.offset_bytes,
                    nbytes=last.nbytes + req.nbytes,
                    is_write=last.is_write,
                    is_discard=last.is_discard,
                    priority=min(last.priority, req.priority),
                )
            else:
                merged.append(req)
        return merged


class NoopScheduler(IOScheduler):
    """Dispatch in arrival order, merging adjacent requests only."""

    name = "noop"

    def order(self, requests: Sequence[IORequest], head_offset: int) -> List[IORequest]:
        return list(requests)


class ElevatorScheduler(IOScheduler):
    """C-SCAN elevator: sweep upward from the head position, then wrap."""

    name = "elevator"

    def order(self, requests: Sequence[IORequest], head_offset: int) -> List[IORequest]:
        ahead = sorted((r for r in requests if r.offset_bytes >= head_offset), key=lambda r: r.offset_bytes)
        behind = sorted((r for r in requests if r.offset_bytes < head_offset), key=lambda r: r.offset_bytes)
        return ahead + behind


class DeadlineScheduler(IOScheduler):
    """Priority buckets dispatched elevator-style within each bucket."""

    name = "deadline"

    def order(self, requests: Sequence[IORequest], head_offset: int) -> List[IORequest]:
        result: List[IORequest] = []
        for priority in sorted({r.priority for r in requests}):
            bucket = [r for r in requests if r.priority == priority]
            result.extend(ElevatorScheduler().order(bucket, head_offset))
        return result


#: Registry of I/O scheduler constructors by name -- the name->factory
#: resolver behind ``TestbedConfig.io_scheduler`` and the experiment grid's
#: ``scheduler`` axis (mirrors ``FS_REGISTRY``).
SCHEDULER_REGISTRY = {
    "noop": NoopScheduler,
    "elevator": ElevatorScheduler,
    "deadline": DeadlineScheduler,
}


def make_scheduler(name: str) -> IOScheduler:
    """Instantiate a scheduler by name (any key of :data:`SCHEDULER_REGISTRY`)."""
    try:
        return SCHEDULER_REGISTRY[name]()
    except KeyError:
        raise ValueError(f"unknown I/O scheduler: {name!r}") from None


@dataclass
class BlockDeviceStats(MetricSource):
    """Aggregate counters for a block device."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    discard_requests: int = 0
    merged_requests: int = 0
    batches: int = 0
    total_service_ns: float = 0.0


class BlockDevice:
    """Facade over a device model: scheduling, merging and accounting.

    Parameters
    ----------
    model:
        The underlying :class:`DeviceModel` producing service times.
    scheduler:
        The I/O scheduler used for batched submissions.
    merge:
        Whether adjacent requests in a batch may be coalesced.
    """

    def __init__(
        self,
        model: DeviceModel,
        scheduler: Optional[IOScheduler] = None,
        merge: bool = True,
    ) -> None:
        self.model = model
        self.scheduler = scheduler if scheduler is not None else NoopScheduler()
        self.merge = merge
        self.stats = BlockDeviceStats()
        #: Optional :class:`repro.obs.Tracer` observing per-request service.
        self.tracer = None

    # ------------------------------------------------------------ single ops
    def read(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Synchronously read one extent; returns service time in ns."""
        latency = self.model.read(offset_bytes, nbytes, rng)
        self.stats.requests += 1
        self.stats.read_requests += 1
        self.stats.total_service_ns += latency
        return latency

    def write(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Synchronously write one extent; returns service time in ns."""
        latency = self.model.write(offset_bytes, nbytes, rng)
        self.stats.requests += 1
        self.stats.write_requests += 1
        self.stats.total_service_ns += latency
        return latency

    def discard(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        """Discard (TRIM) one extent; returns service time in ns.

        A no-op (and unaccounted) when the model does not support discards,
        so issuing discards unconditionally never changes the behaviour of
        devices that cannot use them.
        """
        if not self.supports_discard:
            return 0.0
        latency = self.model.discard(offset_bytes, nbytes, rng)
        self.stats.requests += 1
        self.stats.discard_requests += 1
        self.stats.total_service_ns += latency
        return latency

    @property
    def supports_discard(self) -> bool:
        """True when the underlying device model honours discard/TRIM."""
        return bool(getattr(self.model, "supports_discard", False))

    def flush(self, rng: random.Random) -> float:
        """Issue a cache-flush/barrier if the model supports one."""
        flush = getattr(self.model, "flush_latency_ns", None)
        if flush is None:
            return 0.0
        latency = flush(rng)
        self.stats.total_service_ns += latency
        return latency

    # --------------------------------------------------------------- batches
    def submit(self, requests: Sequence[IORequest], rng: random.Random) -> float:
        """Dispatch a batch through the scheduler; returns total service time in ns.

        The batch is served back-to-back (queue depth 1 at the device), which
        is the right model for the synchronous read paths exercised by the
        paper's case study.  Parallel submitters are modelled at the workload
        layer (see :mod:`repro.workloads.spec`).
        """
        if not requests:
            return 0.0
        head = getattr(self.model, "_head_offset", 0)
        # Order first, merge second: coalescing only collapses *consecutive*
        # contiguous requests, so the scheduler decides adjacency.  Under
        # NOOP the dispatch order stays the arrival order; under elevator/
        # deadline, sorting brings contiguous requests together and they
        # merge exactly as a real block layer's sorted queue would.
        ordered = self.scheduler.order(list(requests), head)
        if self.merge:
            before = len(ordered)
            ordered = IOScheduler.merge_adjacent(ordered)
            self.stats.merged_requests += before - len(ordered)

        total = 0.0
        tracer = self.tracer
        for req in ordered:
            # `lat = ...; total += lat` is float-identical to the former
            # `total += ...`; the tracer only observes the computed value.
            if req.is_discard:
                lat = self.model.discard(req.offset_bytes, req.nbytes, rng)
                self.stats.discard_requests += 1
            elif req.is_write:
                lat = self.model.write(req.offset_bytes, req.nbytes, rng)
                self.stats.write_requests += 1
            else:
                lat = self.model.read(req.offset_bytes, req.nbytes, rng)
                self.stats.read_requests += 1
            total += lat
            self.stats.requests += 1
            if tracer is not None:
                tracer.device_request(req, lat, self.model.last_components)
        self.stats.batches += 1
        self.stats.total_service_ns += total
        return total

    # ------------------------------------------------------------------ misc
    @property
    def capacity_bytes(self) -> int:
        """Capacity of the underlying device."""
        return self.model.capacity_bytes

    def reset_state(self) -> None:
        """Reset device and block-layer statistics and dynamic device state."""
        self.model.reset_state()
        self.stats.reset()

    def __repr__(self) -> str:
        return f"BlockDevice({self.model!r}, scheduler={self.scheduler.name})"
