"""Stateful NAND flash: a page-mapped FTL with garbage collection and wear.

The legacy :class:`~repro.storage.disk.SolidStateDisk` is stateless -- its
garbage collection is a per-write coin flip -- so an SSD benchmark's cost
depends on how many operations it issued, never on what *state* the device is
in.  That is exactly the hidden variable the paper says evaluations must
control: a fresh-out-of-box SSD and the same SSD preconditioned to steady
state can differ by integer factors on the same workload.

:class:`FlashTranslationLayer` models the state that causes the difference:

* **Geometry** -- the device exports ``capacity_bytes`` of logical space but
  owns ``(1 + over_provisioning)`` times as much physical NAND, organised as
  erase blocks of ``pages_per_block`` pages.  Pages are programmed once per
  erase cycle; rewriting a logical page programs a *new* physical page and
  invalidates the old one (out-of-place writes).
* **Mapping** -- a page-granularity logical-to-physical map plus the reverse
  map and per-block validity counters (the invalid-page map).
* **Garbage collection** -- when the free-block pool drops below a watermark,
  a victim block is chosen (``greedy``: fewest valid pages, or
  ``cost-benefit``: the classic :math:`(1-u)/(1+u) \\cdot age` score), its
  valid pages are relocated to the write frontier, and the block is erased.
  The pause is charged to the triggering write and recorded in
  ``stats.gc_time_ns`` -- GC pauses are *visible* latency, not a coin flip.
* **Telemetry** -- page programs split into host writes and GC moves (their
  ratio is write amplification), erases, discards and per-block wear, all
  surfaced through the shared :class:`~repro.storage.disk.DeviceStats`.
* **Discard** -- TRIM support: the file system's free paths tell the FTL
  which logical pages are dead, so GC stops relocating data the namespace
  already forgot.  Without discards a mounted file system silently turns the
  whole device into "valid" data and steady-state GC cost explodes.

Determinism: the FTL uses **no randomness at all** -- victim selection,
frontier allocation and the free-block queue are all deterministic functions
of the request sequence -- so its service times depend only on its own call
order.  This is the property the legacy model lacks (see the ``rng_seed``
note on :class:`~repro.storage.disk.SolidStateDisk`) and what makes FTL state
snapshot/restore bit-identical.

:func:`precondition_ssd` manufactures the steady state deliberately: fill to
a target utilisation, overwrite until garbage collection is active, then
churn in rounds until the observed write amplification is statistically
steady (reusing :class:`~repro.core.steady_state.SteadyStateDetector`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.storage.clock import NS_PER_MS, NS_PER_SEC
from repro.storage.disk import DeviceModel

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: GC victim-selection policies understood by :class:`FlashTranslationLayer`.
GC_POLICIES = ("greedy", "cost-benefit")


@dataclass(frozen=True)
class FlashGeometry:
    """Physical description of a NAND device behind a page-mapped FTL.

    Attributes
    ----------
    capacity_bytes:
        Logical (host-visible) capacity.  The physical capacity is larger by
        ``over_provisioning``.
    page_bytes:
        NAND page size: the program/read unit and the FTL mapping
        granularity.  Deliberately coarse (32 KiB) by default so that
        whole-device preconditioning stays cheap in simulation; sub-page host
        writes program (and account) one full page, which stands in for the
        read-modify-write a real controller performs.
    pages_per_block:
        Pages per erase block (the erase unit).
    over_provisioning:
        Fraction of extra physical capacity hidden from the host; this is
        the GC's working headroom.
    channels:
        Independent flash channels; page operations proceed in waves of
        ``channels``.
    read_latency_us, program_latency_us, erase_latency_ms:
        Per-page read/program and per-block erase times.
    channel_mb_s:
        Interface transfer rate per channel.
    discard_latency_us:
        Cost of one discard (TRIM) command, independent of range size.
    gc_low_watermark_blocks, gc_high_watermark_blocks:
        Garbage collection starts when the free pool drops below the low
        watermark and runs until it is back at the high watermark.
    """

    capacity_bytes: int = 4 * GiB
    page_bytes: int = 32 * KiB
    pages_per_block: int = 128
    over_provisioning: float = 0.15
    channels: int = 8
    read_latency_us: float = 60.0
    program_latency_us: float = 350.0
    erase_latency_ms: float = 2.0
    channel_mb_s: float = 400.0
    discard_latency_us: float = 25.0
    gc_low_watermark_blocks: int = 6
    gc_high_watermark_blocks: int = 12

    # ------------------------------------------------------------- derived
    @property
    def logical_pages(self) -> int:
        """Host-visible pages (the FTL maps at page granularity)."""
        return self.capacity_bytes // self.page_bytes

    @property
    def block_bytes(self) -> int:
        """Size of one erase block."""
        return self.page_bytes * self.pages_per_block

    @property
    def physical_blocks(self) -> int:
        """Total erase blocks, over-provisioning included."""
        return math.ceil(
            self.logical_pages * (1.0 + self.over_provisioning) / self.pages_per_block
        )

    @property
    def physical_pages(self) -> int:
        """Total physical pages across all erase blocks."""
        return self.physical_blocks * self.pages_per_block

    @property
    def spare_blocks(self) -> int:
        """Blocks beyond what the logical capacity strictly needs."""
        return self.physical_blocks - math.ceil(self.logical_pages / self.pages_per_block)

    def validate(self) -> None:
        """Raise ``ValueError`` if the geometry cannot support a working FTL."""
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page_bytes must be a positive power of two")
        if self.pages_per_block <= 1:
            raise ValueError("pages_per_block must be at least 2")
        if self.capacity_bytes % self.page_bytes:
            raise ValueError("capacity_bytes must be a multiple of page_bytes")
        if self.over_provisioning <= 0.0:
            raise ValueError(
                "over_provisioning must be positive: a page-mapped FTL with no "
                "spare blocks deadlocks as soon as the device fills"
            )
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if min(self.read_latency_us, self.program_latency_us, self.erase_latency_ms) < 0:
            raise ValueError("latencies must be non-negative")
        if self.channel_mb_s <= 0:
            raise ValueError("channel_mb_s must be positive")
        if not (0 < self.gc_low_watermark_blocks < self.gc_high_watermark_blocks):
            raise ValueError("require 0 < gc_low_watermark < gc_high_watermark")
        if self.spare_blocks <= self.gc_high_watermark_blocks:
            raise ValueError(
                f"over-provisioning yields {self.spare_blocks} spare blocks, "
                f"need more than the GC high watermark "
                f"({self.gc_high_watermark_blocks}) for GC to make progress"
            )


def default_flash_geometry(capacity_bytes: int = 4 * GiB) -> FlashGeometry:
    """The standard ``ssd-ftl`` geometry at a given logical capacity.

    Watermarks scale gently with the block count so tiny test devices keep a
    few blocks of headroom while large ones do not over-reserve.
    """
    geometry = FlashGeometry(capacity_bytes=capacity_bytes)
    blocks = capacity_bytes // geometry.block_bytes
    low = max(2, min(6, blocks // 64))
    geometry = FlashGeometry(
        capacity_bytes=capacity_bytes,
        gc_low_watermark_blocks=low,
        gc_high_watermark_blocks=2 * low,
    )
    geometry.validate()
    return geometry


class FlashTranslationLayer(DeviceModel):
    """A page-mapped FTL over the NAND described by a :class:`FlashGeometry`.

    See the module docstring for the model; the public surface is the
    standard :class:`~repro.storage.disk.DeviceModel` one plus
    :meth:`export_state`/:meth:`restore_state` (used by state snapshots),
    :meth:`utilization` and :meth:`wear_summary`.

    Parameters
    ----------
    geometry:
        Physical parameters; ``capacity_bytes`` is what the host sees.
    gc_policy:
        ``"greedy"`` (fewest valid pages) or ``"cost-benefit"``
        (:math:`(1-u)/(1+u) \\cdot age`, favouring cold blocks).
    """

    supports_discard = True

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        gc_policy: str = "greedy",
    ) -> None:
        geometry = geometry if geometry is not None else default_flash_geometry()
        geometry.validate()
        if gc_policy not in GC_POLICIES:
            raise ValueError(f"unknown gc_policy {gc_policy!r} (known: {', '.join(GC_POLICIES)})")
        super().__init__(geometry.capacity_bytes, sector_bytes=geometry.page_bytes)
        self.geometry = geometry
        self.gc_policy = gc_policy
        self._read_ns = geometry.read_latency_us * 1_000.0
        self._program_ns = geometry.program_latency_us * 1_000.0
        self._erase_ns = geometry.erase_latency_ms * NS_PER_MS
        self._discard_ns = geometry.discard_latency_us * 1_000.0
        self._channel_bytes_per_ns = geometry.channel_mb_s * MiB / NS_PER_SEC
        self._init_mapping()

    # --------------------------------------------------------------- set-up
    def _init_mapping(self) -> None:
        geometry = self.geometry
        blocks = geometry.physical_blocks
        #: logical page -> physical page (only mapped pages present).
        self._l2p: Dict[int, int] = {}
        #: physical page -> logical page (only valid pages present).
        self._p2l: Dict[int, int] = {}
        self._block_valid = [0] * blocks
        self._block_write_ptr = [0] * blocks
        self._erase_count = [0] * blocks
        #: Sequence number of the most recent program into each block
        #: (cost-benefit GC uses it as the block's age).
        self._block_seq = [0] * blocks
        #: FIFO of erased blocks; deterministic order is part of the state.
        self._free_blocks: List[int] = list(range(1, blocks))
        self._is_free = [False] + [True] * (blocks - 1)
        self._active_block = 0
        self._seq = 0
        self._in_gc = False
        self._pending_gc_ns = 0.0

    def reset_state(self) -> None:
        super().reset_state()
        self._init_mapping()

    # ------------------------------------------------------------- mapping
    def _invalidate_physical(self, physical_page: int) -> None:
        del self._p2l[physical_page]
        self._block_valid[physical_page // self.geometry.pages_per_block] -= 1

    def _frontier_slot(self) -> int:
        """The next physical page at the write frontier, opening blocks as needed."""
        pages_per_block = self.geometry.pages_per_block
        if self._block_write_ptr[self._active_block] >= pages_per_block:
            if not self._in_gc and len(self._free_blocks) <= self.geometry.gc_low_watermark_blocks:
                self._pending_gc_ns += self._collect()
            # GC relocations advance the frontier themselves, so the active
            # block may already be a fresh one with room; only a still-full
            # frontier opens another free block (popping unconditionally
            # would strand the GC's half-written frontier block outside both
            # the free pool and the victim candidate set -- a space leak).
            if self._block_write_ptr[self._active_block] >= pages_per_block:
                if not self._free_blocks:
                    raise RuntimeError(
                        "FTL out of free blocks: garbage collection could not "
                        "reclaim space (device full of valid data)"
                    )
                self._active_block = self._free_blocks.pop(0)
                self._is_free[self._active_block] = False
        slot = self._active_block * pages_per_block + self._block_write_ptr[self._active_block]
        self._block_write_ptr[self._active_block] += 1
        return slot

    def _program(self, logical_page: int, moved: bool) -> None:
        old = self._l2p.get(logical_page)
        if old is not None:
            self._invalidate_physical(old)
        slot = self._frontier_slot()
        self._l2p[logical_page] = slot
        self._p2l[slot] = logical_page
        block = slot // self.geometry.pages_per_block
        self._block_valid[block] += 1
        self._seq += 1
        self._block_seq[block] = self._seq
        self.stats.pages_programmed += 1
        if moved:
            self.stats.pages_moved += 1

    # ---------------------------------------------------- garbage collection
    def _select_victim(self) -> Optional[int]:
        """The next GC victim: a fully-written, non-free, non-active block."""
        pages_per_block = self.geometry.pages_per_block
        best = None
        best_score = None
        for block in range(self.geometry.physical_blocks):
            if self._is_free[block] or block == self._active_block:
                continue
            if self._block_write_ptr[block] < pages_per_block:
                continue
            valid = self._block_valid[block]
            if self.gc_policy == "greedy":
                score = (valid, block)
                better = best_score is None or score < best_score
            else:
                utilisation = valid / pages_per_block
                age = self._seq - self._block_seq[block] + 1
                benefit = (1.0 - utilisation) / (1.0 + utilisation) * age
                # Maximise benefit; tie-break deterministically by index.
                score = (-benefit, block)
                better = best_score is None or score < best_score
            if better:
                best = block
                best_score = score
        if best is not None and self._block_valid[best] >= pages_per_block:
            # Every candidate is fully valid: erasing gains nothing.
            return None
        return best

    def _evacuate(self, victim: int) -> float:
        """Relocate a victim's valid pages, erase it, return the time spent."""
        geometry = self.geometry
        pages_per_block = geometry.pages_per_block
        first = victim * pages_per_block
        survivors = sorted(
            self._p2l[page]
            for page in range(first, first + pages_per_block)
            if page in self._p2l
        )
        for logical_page in survivors:
            self._program(logical_page, moved=True)
        waves = math.ceil(len(survivors) / geometry.channels) if survivors else 0
        elapsed = waves * (self._read_ns + self._program_ns) + self._erase_ns

        self._block_valid[victim] = 0
        self._block_write_ptr[victim] = 0
        self._erase_count[victim] += 1
        self._block_seq[victim] = self._seq
        self._free_blocks.append(victim)
        self._is_free[victim] = True
        self.stats.erases += 1
        return elapsed

    def _collect(self) -> float:
        """Run GC until the free pool reaches the high watermark; returns the pause."""
        self._in_gc = True
        pause = 0.0
        victims = 0
        try:
            while (
                len(self._free_blocks) < self.geometry.gc_high_watermark_blocks
                and victims < self.geometry.physical_blocks
            ):
                victim = self._select_victim()
                if victim is None:
                    break
                pause += self._evacuate(victim)
                victims += 1
        finally:
            self._in_gc = False
        if victims:
            self.stats.gc_runs += 1
            self.stats.gc_time_ns += pause
        return pause

    # -------------------------------------------------------------- service
    def _page_range(self, offset_bytes: int, nbytes: int) -> range:
        page = self.geometry.page_bytes
        return range(offset_bytes // page, (offset_bytes + nbytes - 1) // page + 1)

    def _transfer_ns(self, nbytes: int) -> float:
        return nbytes / (self._channel_bytes_per_ns * self.geometry.channels)

    def read_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        pages = len(self._page_range(offset_bytes, nbytes))
        waves = math.ceil(pages / self.geometry.channels)
        return waves * self._read_ns + self._transfer_ns(nbytes)

    def write_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        pages = self._page_range(offset_bytes, nbytes)
        self._pending_gc_ns = 0.0
        for logical_page in pages:
            self._program(logical_page, moved=False)
        waves = math.ceil(len(pages) / self.geometry.channels)
        latency = waves * self._program_ns + self._transfer_ns(nbytes)
        if self.component_trace_enabled:
            # The exact addends of the returned sum: program/transfer time vs
            # the garbage-collection pause this write absorbed.
            self.last_components = {"transfer": latency, "gc-pause": self._pending_gc_ns}
        return latency + self._pending_gc_ns

    def discard_latency_ns(self, offset_bytes: int, nbytes: int, rng: random.Random) -> float:
        page = self.geometry.page_bytes
        # Only whole pages can be unmapped (TRIM granularity); partial head
        # and tail pages keep their mapping.
        first = -(-offset_bytes // page)
        last = (offset_bytes + nbytes) // page - 1
        for logical_page in range(first, last + 1):
            old = self._l2p.pop(logical_page, None)
            if old is not None:
                self._invalidate_physical(old)
        return self._discard_ns

    def flush_latency_ns(self, rng: random.Random) -> float:
        """Barrier cost: mapping-table persistence, no mechanical destage."""
        return self._discard_ns

    # ------------------------------------------------------------ inspection
    def utilization(self) -> float:
        """Fraction of logical pages currently mapped to live data."""
        return len(self._l2p) / max(1, self.geometry.logical_pages)

    def free_physical_blocks(self) -> int:
        """Erased blocks available to the write frontier."""
        return len(self._free_blocks)

    def wear_summary(self) -> Dict[str, float]:
        """Per-block erase-count statistics (the wear-levelling picture)."""
        counts = self._erase_count
        total = sum(counts)
        return {
            "total_erases": float(total),
            "min_erases": float(min(counts)),
            "max_erases": float(max(counts)),
            "mean_erases": total / len(counts),
        }

    # ------------------------------------------------------------- snapshot
    def export_state(self) -> Dict:
        """The FTL's complete dynamic state as a JSON-serialisable document.

        Everything that influences future service times is here: the
        logical-to-physical map, per-block write pointers / wear / age, the
        free-block queue *order* and the program sequence counter.  Telemetry
        (``stats``) is deliberately excluded -- counters describe the past,
        not the state.  ``restore_state(export_state())`` round-trips
        bit-identically.
        """
        return {
            "geometry": {
                "capacity_bytes": self.geometry.capacity_bytes,
                "page_bytes": self.geometry.page_bytes,
                "pages_per_block": self.geometry.pages_per_block,
                "physical_blocks": self.geometry.physical_blocks,
            },
            # The victim-selection policy shapes every future GC decision, so
            # it is state, not configuration: restore adopts it.
            "gc_policy": self.gc_policy,
            "l2p": sorted([lp, pp] for lp, pp in self._l2p.items()),
            "write_ptr": list(self._block_write_ptr),
            "erase_count": list(self._erase_count),
            "block_seq": list(self._block_seq),
            "free_blocks": list(self._free_blocks),
            "active_block": self._active_block,
            "seq": self._seq,
        }

    def restore_state(self, state: Dict) -> None:
        """Overwrite the FTL state with a previously exported document."""
        recorded = state["geometry"]
        mine = self.geometry
        if (
            int(recorded["capacity_bytes"]) != mine.capacity_bytes
            or int(recorded["page_bytes"]) != mine.page_bytes
            or int(recorded["pages_per_block"]) != mine.pages_per_block
            or int(recorded["physical_blocks"]) != mine.physical_blocks
        ):
            raise ValueError(
                "FTL snapshot geometry mismatch: snapshot is "
                f"{recorded}, device is {mine.physical_blocks} blocks of "
                f"{mine.pages_per_block} x {mine.page_bytes}B pages"
            )
        blocks = mine.physical_blocks
        for name in ("write_ptr", "erase_count", "block_seq"):
            if len(state[name]) != blocks:
                raise ValueError(f"FTL snapshot field {name!r} has wrong length")
        # Adopt the recorded GC policy: without it a cost-benefit device
        # restored onto a registry-built (greedy) instance would silently
        # pick different victims and diverge from the captured behaviour.
        policy = state.get("gc_policy", self.gc_policy)
        if policy not in GC_POLICIES:
            raise ValueError(f"FTL snapshot has unknown gc_policy {policy!r}")
        self.gc_policy = policy
        self._l2p = {int(lp): int(pp) for lp, pp in state["l2p"]}
        self._p2l = {pp: lp for lp, pp in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise ValueError("FTL snapshot maps two logical pages to one physical page")
        self._block_valid = [0] * blocks
        for pp in self._p2l:
            self._block_valid[pp // mine.pages_per_block] += 1
        self._block_write_ptr = [int(v) for v in state["write_ptr"]]
        self._erase_count = [int(v) for v in state["erase_count"]]
        self._block_seq = [int(v) for v in state["block_seq"]]
        self._free_blocks = [int(v) for v in state["free_blocks"]]
        self._is_free = [False] * blocks
        for block in self._free_blocks:
            self._is_free[block] = True
        self._active_block = int(state["active_block"])
        self._seq = int(state["seq"])
        self._in_gc = False
        self._pending_gc_ns = 0.0

    def __repr__(self) -> str:
        gb = self.capacity_bytes / 10 ** 9
        return (
            f"FlashTranslationLayer({gb:.1f}GB logical, "
            f"{self.geometry.physical_blocks} blocks, gc={self.gc_policy})"
        )


# ------------------------------------------------------------ preconditioning
@dataclass
class PreconditionReport:
    """What :func:`precondition_ssd` did to reach steady state."""

    target_utilization: float
    utilization: float
    fill_pages: int
    burn_in_pages: int
    churn_rounds: int
    reached_steady: bool
    write_amplification_series: List[float] = field(default_factory=list)
    final_write_amplification: float = 0.0
    total_erases: int = 0

    def render(self) -> str:
        """One-line human-readable summary."""
        wa = ", ".join(f"{value:.2f}" for value in self.write_amplification_series)
        steady = "steady" if self.reached_steady else "NOT steady"
        return (
            f"Preconditioned to {100 * self.utilization:.0f}% utilisation in "
            f"{self.churn_rounds} churn rounds ({steady}); write amplification "
            f"[{wa}], {self.total_erases} erases"
        )


def precondition_ssd(
    model: FlashTranslationLayer,
    target_utilization: float = 0.85,
    churn_pages_per_round: int = 4096,
    max_rounds: int = 48,
    seed: int = 2011,
) -> PreconditionReport:
    """Fill and churn an FTL device until its write amplification is steady.

    The standard SSD preconditioning recipe, made explicit and deterministic:

    1. **Fill** the logical space sequentially to ``target_utilization``.
    2. **Burn in**: overwrite uniformly random pages until garbage
       collection has run at least twice, so the fresh-out-of-box free pool
       is gone and block validity is randomly mixed (sequential burn-in
       would leave fully-invalid blocks that GC reclaims for free, making
       the device look steady long before it is).
    3. **Churn**: keep overwriting random pages in rounds of
       ``churn_pages_per_round``, observing each round's write amplification
       with a :class:`~repro.core.steady_state.SteadyStateDetector`; stop at
       the first statistically steady window (or after ``max_rounds``).

    The device's *telemetry* is reset on return (a subsequent measurement
    starts from clean counters) while its *state* -- mapping, wear, free-pool
    level -- is the manufactured steady state.  Preconditioning is a pure
    function of ``(geometry, arguments)``: the churn uses a private seeded
    random source and the FTL itself is deterministic, so two devices
    preconditioned with the same arguments are bit-identical.
    """
    # Imported lazily: repro.core packages import repro.storage at module
    # scope, so the reverse import must not run at ours.
    from repro.core.steady_state import SteadyStateDetector

    if not isinstance(model, FlashTranslationLayer):
        raise TypeError(
            f"precondition_ssd needs a FlashTranslationLayer, got {type(model).__name__}"
        )
    if not (0.0 < target_utilization <= 1.0):
        raise ValueError("target_utilization must be in (0, 1]")
    if churn_pages_per_round <= 0 or max_rounds <= 0:
        raise ValueError("churn_pages_per_round and max_rounds must be positive")

    geometry = model.geometry
    rng = random.Random(seed)
    page = geometry.page_bytes
    fill_pages = max(1, int(target_utilization * geometry.logical_pages))
    chunk_pages = geometry.pages_per_block

    # Phase 1: sequential fill.
    cursor = 0
    while cursor < fill_pages:
        count = min(chunk_pages, fill_pages - cursor)
        model.write(cursor * page, count * page, rng)
        cursor += count

    # Phase 2: burn through the fresh free pool until GC is live.
    burn_in_pages = 0
    burn_in_limit = 2 * geometry.physical_pages
    while model.stats.gc_runs < 2 and burn_in_pages < burn_in_limit:
        model.write(rng.randrange(fill_pages) * page, page, rng)
        burn_in_pages += 1

    # Phase 3: random churn until write amplification is steady.
    detector = SteadyStateDetector(window=4, cov_threshold=0.05, slope_threshold=0.05)
    series: List[float] = []
    reached_steady = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        programmed_before = model.stats.pages_programmed
        moved_before = model.stats.pages_moved
        for _ in range(churn_pages_per_round):
            model.write(rng.randrange(fill_pages) * page, page, rng)
        programmed = model.stats.pages_programmed - programmed_before
        host = programmed - (model.stats.pages_moved - moved_before)
        series.append(programmed / host if host > 0 else 0.0)
        if detector.observe(series[-1]):
            reached_steady = True
            break

    report = PreconditionReport(
        target_utilization=target_utilization,
        utilization=model.utilization(),
        fill_pages=fill_pages,
        burn_in_pages=burn_in_pages,
        churn_rounds=rounds,
        reached_steady=reached_steady,
        write_amplification_series=series,
        final_write_amplification=series[-1] if series else 0.0,
        total_erases=model.stats.erases,
    )
    model.stats.reset()
    return report
